"""Packaging entry point.

The pure-Python install needs nothing beyond ``pyproject.toml``; this file
exists for the *optional* compiled core build (see
:mod:`repro.perf.compiled`). When ``REPRO_COMPILED`` is set and a compiler
backend is importable, the hot modules are compiled to C extensions::

    REPRO_COMPILED=1 python setup.py build_ext --inplace

Without the flag, or without a toolchain, the extension list is empty and
the build degrades to the plain pure-Python package — never an error.
"""

import os

from setuptools import setup

#: Source files of the modules the compiled build covers. Kept in sync with
#: ``repro.perf.compiled.COMPILED_MODULES``.
COMPILED_SOURCES = [
    "src/repro/sim/event.py",
    "src/repro/sim/kernel.py",
    "src/repro/can/bitstream.py",
]


def _compiled_ext_modules():
    if os.environ.get("REPRO_COMPILED", "").strip().lower() not in (
        "1",
        "true",
        "yes",
        "on",
    ):
        return []
    backend = (
        os.environ.get("REPRO_COMPILED_BACKEND", "cython").strip().lower()
    )
    if backend == "mypyc":
        try:
            from mypyc.build import mypycify
        except ImportError:
            print("repro: REPRO_COMPILED set but mypyc unavailable; "
                  "building pure Python")
            return []
        return mypycify(COMPILED_SOURCES)
    try:
        from Cython.Build import cythonize
    except ImportError:
        print("repro: REPRO_COMPILED set but Cython unavailable; "
              "building pure Python")
        return []
    return cythonize(
        COMPILED_SOURCES,
        language_level=3,
        # The compiled modules must stay drop-in: writable module dicts so
        # the A/B toggles and the legacy reference core keep patching.
        compiler_directives={"binding": True},
    )


setup(ext_modules=_compiled_ext_modules())
