"""SWIM-style membership over the CAN standard layer.

The rival backend: periodic **heartbeat counters**, **incarnation
numbers** and a **suspicion sub-protocol** in the style of SWIM ("SWIM:
Scalable Weakly-consistent Infection-style Process Group Membership",
PAPERS.md), adapted to a broadcast bus — on CAN every message reaches
every node, so the gossip/piggyback machinery degenerates into plain
broadcasts and what remains is the failure-detection core:

* every ``probe_period`` a member broadcasts a heartbeat carrying its
  incarnation and a monotonically increasing counter;
* a member silent for ``fail_after`` is *suspected*; the suspicion is
  broadcast, and the suspect — hearing its own suspicion — refutes it by
  bumping its incarnation and broadcasting the new one;
* a suspicion not refuted (or cleared by direct activity) within
  ``suspicion_timeout`` is *confirmed*: the member is removed from the
  view and the removal broadcast, keyed by the dead incarnation so stale
  heartbeats cannot resurrect it. A live node hearing itself confirmed
  failed rejoins with a higher incarnation (``auto_rejoin``) — the flap
  is the protocol's documented weak-consistency cost.

Contrasts with CANELy worth measuring (the ``repro compare`` report):
heartbeats are unconditional data frames (CANELy suppresses life-signs
under application traffic, and its control messages are clusterable
remote frames), view changes install immediately and independently at
every node (CANELy aligns them on agreed cycle boundaries), and nothing
here serializes a view onto the wire — which is why SWIM populations may
exceed the 64-node CAN-data-field bound that binds CANELy.

All state transitions are driven by received frames and deterministic
timers; like the CANELy stack, the protocol draws no randomness, so
same-seed runs are bit-identical.

Trace/metric surface shared with CANELy: ``msh.view`` / ``msh.change``
records and the ``msh.change_notifications`` counter (analysis reads
these backend-neutrally), plus ``swim.*`` records and counters for the
protocol's own events.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.views import MembershipChange, MembershipView
from repro.sim.kernel import Simulator
from repro.sim.timers import Alarm, TimerService
from repro.swim.config import SwimConfig
from repro.util.sets import NodeSet

ChangeCallback = Callable[[MembershipChange], None]

# Message kinds, packed into bits 8-15 of the MID ref (bits 0-7 carry the
# subject node id). Payload: 2 bytes little-endian incarnation; heartbeats
# append 2 bytes of counter.
HEARTBEAT = 0
JOIN = 1
LEAVE = 2
SUSPECT = 3
REFUTE = 4
CONFIRM = 5

ALIVE = "alive"
SUSPECTED = "suspect"


class _Member:
    """Surveillance state for one remote member."""

    __slots__ = ("incarnation", "counter", "status", "suspected_inc",
                 "fail_alarm", "susp_alarm")

    def __init__(self, incarnation: int = 0) -> None:
        self.incarnation = incarnation
        self.counter = -1
        self.status = ALIVE
        self.suspected_inc = -1
        self.fail_alarm: Optional[Alarm] = None
        self.susp_alarm: Optional[Alarm] = None


class SwimProtocol:
    """Per-node SWIM membership entity behind the ``msh-can`` contract."""

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        config: SwimConfig,
    ) -> None:
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self._config = config
        self._local = layer.node_id
        self._joined = False
        self._incarnation = 0
        self._counter = 0
        self._round_index = 0
        self._view = NodeSet.empty(config.capacity)
        self._members: Dict[int, _Member] = {}
        #: node id -> incarnation it was confirmed failed with; only a
        #: strictly higher incarnation readmits it.
        self._dead: Dict[int, int] = {}
        self._hb_alarm: Optional[Alarm] = None
        self._listeners: List[ChangeCallback] = []
        self._spans = sim.spans
        metrics = sim.metrics
        self._inc_heartbeats = metrics.counter("swim.heartbeats").inc
        self._inc_suspects = metrics.counter("swim.suspects").inc
        self._inc_refutes = metrics.counter("swim.refutes").inc
        self._inc_removals = metrics.counter("swim.removals").inc
        self._inc_change_notifications = metrics.counter(
            "msh.change_notifications"
        ).inc
        self.heartbeats_sent = 0
        self.suspicions = 0
        self.refutes = 0
        self.removals = 0
        layer.add_data_ind(self._on_swim, mtype=MessageType.SWIM)

    # -- msh-can.req / .nty service surface ------------------------------------

    def on_change(self, callback: ChangeCallback) -> None:
        """Register a ``msh-can.nty`` membership change listener."""
        self._listeners.append(callback)

    def view(self) -> MembershipView:
        """The current membership view at this node."""
        return MembershipView(
            members=self._view, round_index=self._round_index, time=self._sim.now
        )

    @property
    def is_member(self) -> bool:
        """True while the local node is in its own view."""
        return self._local in self._view

    def join(self) -> None:
        """Enter the membership: announce and start heartbeating.

        Every join bumps the incarnation, so a rejoining node always
        outranks whatever incarnation it was last confirmed failed with.
        """
        if self._joined and self._local in self._view:
            return
        self._joined = True
        self._incarnation += 1
        if self._local not in self._view:
            self._view = self._view.add(self._local)
            self._install_view()
            self._notify(self._view, NodeSet.empty(self._config.capacity))
        self._broadcast(JOIN, self._local, self._incarnation)
        self._arm_heartbeat()

    def leave(self) -> None:
        """Withdraw: announce the departure; the echo retires the node."""
        if self._local not in self._view:
            return
        self._broadcast(LEAVE, self._local, self._incarnation)

    def halt(self) -> None:
        """Cancel every timer without touching state (node crash)."""
        timers = self._timers
        timers.cancel_alarm(self._hb_alarm)
        self._hb_alarm = None
        for member in self._members.values():
            timers.cancel_alarm(member.fail_alarm)
            timers.cancel_alarm(member.susp_alarm)
            member.fail_alarm = None
            member.susp_alarm = None

    def reset(self) -> None:
        """Forget all membership state (reboot); idempotent.

        The incarnation survives — a rebooted node must be able to
        outrank the incarnation its peers confirmed it failed with.
        """
        self.halt()
        self._joined = False
        self._view = NodeSet.empty(self._config.capacity)
        self._members.clear()
        self._dead.clear()
        self._counter = 0

    # -- wire encoding ----------------------------------------------------------

    def _broadcast(self, kind: int, subject: int, incarnation: int,
                   counter: Optional[int] = None) -> None:
        payload = (incarnation & 0xFFFF).to_bytes(2, "little")
        if counter is not None:
            payload += (counter & 0xFFFF).to_bytes(2, "little")
        mid = MessageId(
            MessageType.SWIM, node=self._local, ref=(kind << 8) | subject
        )
        self._layer.data_req(mid, payload)

    # -- timers ------------------------------------------------------------------

    def _arm_heartbeat(self) -> None:
        self._timers.cancel_alarm(self._hb_alarm)
        self._hb_alarm = self._timers.start_alarm(
            self._config.probe_period, self._on_heartbeat, name="swim.probe"
        )

    def _on_heartbeat(self) -> None:
        if not self._joined:
            return
        self._counter += 1
        self.heartbeats_sent += 1
        self._inc_heartbeats()
        self._broadcast(
            HEARTBEAT, self._local, self._incarnation, self._counter
        )
        self._hb_alarm = self._timers.start_alarm(
            self._config.probe_period, self._on_heartbeat, name="swim.probe"
        )

    def _arm_fail(self, node_id: int, member: _Member) -> None:
        timers = self._timers
        alarm = member.fail_alarm
        if alarm is not None and timers.restart_alarm(
            alarm, self._config.fail_after
        ):
            return
        timers.cancel_alarm(alarm)
        member.fail_alarm = timers.start_alarm(
            self._config.fail_after,
            lambda: self._on_fail_expire(node_id),
            name="swim.fail",
            tag=node_id,
        )

    def _on_fail_expire(self, node_id: int) -> None:
        member = self._members.get(node_id)
        if member is None or member.status is not ALIVE:
            return
        member.status = SUSPECTED
        member.suspected_inc = member.incarnation
        member.fail_alarm = None
        self.suspicions += 1
        self._inc_suspects()
        if self._sim.trace.wants("swim.suspect"):
            self._sim.trace.record(
                self._sim.now, "swim.suspect", node=self._local, suspect=node_id
            )
        if self._spans.enabled:
            self._spans.instant(
                "swim.suspect", "swim", node=self._local, suspect=node_id
            )
        self._broadcast(SUSPECT, node_id, member.incarnation)
        member.susp_alarm = self._timers.start_alarm(
            self._config.suspicion_timeout,
            lambda: self._on_suspicion_expire(node_id),
            name="swim.suspicion",
            tag=node_id,
        )

    def _on_suspicion_expire(self, node_id: int) -> None:
        member = self._members.get(node_id)
        if member is None or member.status is not SUSPECTED:
            return
        member.susp_alarm = None
        self._broadcast(CONFIRM, node_id, member.suspected_inc)
        self._remove(node_id, member.suspected_inc, failed=True)

    # -- receive path -------------------------------------------------------------

    def _on_swim(self, mid: MessageId, data: bytes) -> None:
        if not self._joined:
            return
        sender = mid.node
        kind = (mid.ref >> 8) & 0xFF
        subject = mid.ref & 0xFF
        incarnation = int.from_bytes(data[:2], "little")
        # Any SWIM frame from a live member is direct evidence of life:
        # restart its silence clock and clear a pending suspicion.
        if sender != self._local:
            member = self._members.get(sender)
            if member is not None:
                if incarnation > member.incarnation:
                    member.incarnation = incarnation
                self._revive(sender, member)

        if kind == HEARTBEAT or kind == JOIN or kind == REFUTE:
            if kind == HEARTBEAT and len(data) >= 4:
                counter = int.from_bytes(data[2:4], "little")
                member = self._members.get(sender)
                if member is not None and counter > member.counter:
                    member.counter = counter
            self._consider_admission(sender, incarnation)
        elif kind == LEAVE:
            self._on_leave(subject)
        elif kind == SUSPECT:
            self._on_suspect(subject, incarnation)
        elif kind == CONFIRM:
            self._on_confirm(subject, incarnation)

    def _consider_admission(self, node_id: int, incarnation: int) -> None:
        if node_id == self._local or node_id in self._view:
            return
        if node_id >= self._config.capacity:
            return
        dead_inc = self._dead.get(node_id)
        if dead_inc is not None and incarnation <= dead_inc:
            return  # stale traffic from a confirmed-dead incarnation
        self._dead.pop(node_id, None)
        member = _Member(incarnation)
        self._members[node_id] = member
        self._view = self._view.add(node_id)
        self._arm_fail(node_id, member)
        self._install_view()
        self._notify(self._view, NodeSet.empty(self._config.capacity))

    def _revive(self, node_id: int, member: _Member) -> None:
        if member.status is SUSPECTED:
            member.status = ALIVE
            member.suspected_inc = -1
            self._timers.cancel_alarm(member.susp_alarm)
            member.susp_alarm = None
        self._arm_fail(node_id, member)

    def _on_leave(self, subject: int) -> None:
        if subject == self._local:
            # Own departure (or the echo of it) completes the leave: the
            # node stops participating entirely.
            if self._local in self._view:
                view = self._view.remove(self._local)
                self._view = view
                self._install_view()
                self._notify(
                    view, NodeSet.single(self._local, self._config.capacity)
                )
            self.halt()
            self._joined = False
            return
        member = self._members.get(subject)
        if member is not None:
            self._remove(subject, member.incarnation, failed=False)

    def _on_suspect(self, subject: int, incarnation: int) -> None:
        if subject == self._local:
            # Somebody suspects us: refute with a fresh incarnation.
            self._incarnation = max(self._incarnation, incarnation) + 1
            self.refutes += 1
            self._inc_refutes()
            if self._sim.trace.wants("swim.refute"):
                self._sim.trace.record(
                    self._sim.now, "swim.refute", node=self._local,
                    incarnation=self._incarnation,
                )
            self._broadcast(REFUTE, self._local, self._incarnation)
            return
        member = self._members.get(subject)
        if (
            member is not None
            and member.status is ALIVE
            and incarnation >= member.incarnation
        ):
            member.status = SUSPECTED
            member.suspected_inc = incarnation
            self._timers.cancel_alarm(member.fail_alarm)
            member.fail_alarm = None
            member.susp_alarm = self._timers.start_alarm(
                self._config.suspicion_timeout,
                lambda: self._on_suspicion_expire(subject),
                name="swim.suspicion",
                tag=subject,
            )

    def _on_confirm(self, subject: int, incarnation: int) -> None:
        if subject == self._local:
            # Confirmed failed while alive — the classic SWIM mistake.
            self._incarnation = max(self._incarnation, incarnation) + 1
            if self._local in self._view:
                view = self._view.remove(self._local)
                self._view = view
                self._install_view()
                self._notify(
                    view, NodeSet.single(self._local, self._config.capacity)
                )
            if self._config.auto_rejoin:
                self._view = self._view.add(self._local)
                self._install_view()
                self._notify(
                    self._view, NodeSet.empty(self._config.capacity)
                )
                self._broadcast(JOIN, self._local, self._incarnation)
            else:
                self.halt()
                self._joined = False
            return
        member = self._members.get(subject)
        if member is not None and incarnation >= member.incarnation:
            self._remove(subject, incarnation, failed=True)

    # -- view maintenance -----------------------------------------------------------

    def _remove(self, node_id: int, incarnation: int, failed: bool) -> None:
        member = self._members.pop(node_id, None)
        if member is not None:
            self._timers.cancel_alarm(member.fail_alarm)
            self._timers.cancel_alarm(member.susp_alarm)
        if failed:
            prior = self._dead.get(node_id)
            if prior is None or incarnation > prior:
                self._dead[node_id] = incarnation
            self.removals += 1
            self._inc_removals()
            if self._sim.trace.wants("swim.confirm"):
                self._sim.trace.record(
                    self._sim.now, "swim.confirm", node=self._local,
                    failed=node_id,
                )
            if self._spans.enabled:
                self._spans.instant(
                    "swim.confirm", "swim", node=self._local, failed=node_id
                )
        if node_id not in self._view:
            return
        self._view = self._view.remove(node_id)
        self._install_view()
        if failed:
            failed_set = NodeSet.single(node_id, self._config.capacity)
        else:
            failed_set = NodeSet.empty(self._config.capacity)
        self._notify(self._view, failed_set)

    def _install_view(self) -> None:
        self._round_index += 1
        if self._sim.trace.wants("msh.view"):
            self._sim.trace.record(
                self._sim.now,
                "msh.view",
                node=self._local,
                members=self._view,
                round_index=self._round_index,
            )
        if self._spans.enabled:
            self._spans.instant(
                "msh.view",
                "msh",
                node=self._local,
                members=len(self._view),
                round_index=self._round_index,
            )

    def _notify(self, active: NodeSet, failed: NodeSet) -> None:
        change = MembershipChange(
            active=active, failed=failed, time=self._sim.now,
            local_node=self._local,
        )
        self._inc_change_notifications()
        self._sim.trace.record(
            change.time,
            "msh.change",
            node=self._local,
            active=active,
            failed=failed,
        )
        if self._spans.enabled:
            self._spans.instant(
                "msh.change",
                "msh",
                node=self._local,
                active=len(active),
                failed=sorted(failed),
            )
        for listener in list(self._listeners):
            listener(change)
