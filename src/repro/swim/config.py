"""SWIM backend configuration.

Mirrors :class:`repro.core.config.CanelyConfig` in style and error
behaviour: a frozen dataclass, durations in kernel ticks (nanoseconds),
cross-field validation raising :class:`~repro.errors.ConfigurationError`
at construction. The defaults line up with the CANELy defaults (10 ms
heartbeats on a 1 Mbps bus) so out-of-the-box comparisons measure the
protocols, not their tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.util.sets import WIDE_MAX_CAPACITY


@dataclass(frozen=True)
class SwimConfig:
    """Protocol parameters for one SWIM membership network.

    Attributes:
        capacity: maximum node population. SWIM messages carry single
            node identifiers (never a serialized view), so the cap is the
            MID node-identifier space (256), not the CAN data field's
            64-node limit that binds CANELy.
        probe_period: interval between a node's periodic heartbeat
            broadcasts (the SWIM protocol period ``T``).
        fail_after: silence tolerated from a member before it is
            *suspected* — must cover at least one full probe period plus
            delivery, or every heartbeat gap raises a false suspicion.
        suspicion_timeout: how long a suspected member has to refute
            (bump its incarnation) before the suspicion is confirmed and
            the member is removed from the view.
        join_wait: bootstrap settle allowance a joining node budgets for
            the membership to converge (the analogue of CANELy's
            ``tjoin_wait``; scenario bootstrap reads it).
        auto_rejoin: when True, a live node that hears itself confirmed
            failed bumps its incarnation and immediately rejoins — the
            resulting leave/join flap is exactly what the view-stability
            comparison counts against the backend.
    """

    capacity: int = 64
    probe_period: int = ms(10)
    fail_after: int = ms(30)
    suspicion_timeout: int = ms(20)
    join_wait: int = ms(150)
    auto_rejoin: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.capacity <= WIDE_MAX_CAPACITY:
            raise ConfigurationError(
                f"capacity must be in 1..{WIDE_MAX_CAPACITY}, "
                f"got {self.capacity}"
            )
        for name in ("probe_period", "fail_after", "suspicion_timeout", "join_wait"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.fail_after <= self.probe_period:
            raise ConfigurationError(
                "a member must survive at least one heartbeat gap: "
                f"fail_after={self.fail_after} <= "
                f"probe_period={self.probe_period}"
            )
        if self.suspicion_timeout <= self.probe_period:
            raise ConfigurationError(
                "a suspect needs at least one probe period to refute: "
                f"suspicion_timeout={self.suspicion_timeout} <= "
                f"probe_period={self.probe_period}"
            )
        if self.join_wait <= self.probe_period:
            raise ConfigurationError(
                "join_wait must exceed the probe period "
                f"(got join_wait={self.join_wait}, "
                f"probe_period={self.probe_period})"
            )

    @classmethod
    def from_canely(cls, config, **overrides) -> "SwimConfig":
        """Map a :class:`~repro.core.config.CanelyConfig` onto SWIM knobs.

        Heartbeats take over the life-sign period (``thb``); the silence
        bound before suspicion matches CANELy's surveillance timeout
        (``thb + ttd``), so both backends start their detection clock
        from comparable evidence.
        """
        defaults = dict(
            capacity=config.capacity,
            probe_period=config.thb,
            fail_after=config.thb + config.ttd,
            suspicion_timeout=config.thb + config.ttd,
            join_wait=config.tjoin_wait,
        )
        defaults.update(overrides)
        return cls(**defaults)

    # -- scenario-layer compatibility ----------------------------------------

    @property
    def tm(self) -> int:
        """The backend's natural cycle period (scenario helpers measure
        runs in cycles); for SWIM that is the probe period."""
        return self.probe_period

    @property
    def tjoin_wait(self) -> int:
        """Bootstrap settle allowance, under CANELy's name (the scenario
        bootstrap reads ``config.tjoin_wait`` backend-neutrally)."""
        return self.join_wait

    @property
    def detection_latency_bound(self) -> int:
        """Worst-case crash-to-removal latency at a detecting node: the
        full silence bound plus the suspicion window, plus one probe
        period of broadcast slack."""
        return self.fail_after + self.suspicion_timeout + self.probe_period
