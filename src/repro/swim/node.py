"""SWIM stack assembly: one node and the backend factory.

:class:`SwimNode` mirrors :class:`~repro.core.stack.CanelyNode`'s public
surface — the same CAN controller and standard layer underneath, the same
application-traffic and fault-scripting API on top — with the CANELy
protocol suite swapped for :class:`~repro.swim.protocol.SwimProtocol`.
:class:`SwimBackend` is the :class:`~repro.core.backend.MembershipBackend`
implementation that lets :class:`~repro.core.stack.CanelyNetwork` build
SWIM populations with ``backend="swim"``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.backend import MembershipBackend
from repro.core.views import MembershipChange, MembershipView
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.swim.config import SwimConfig
from repro.swim.protocol import SwimProtocol

MessageCallback = Callable[[int, int, bytes], None]


class SwimNode:
    """One SWIM node: controller + standard layer + SWIM protocol."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        bus: Optional[CanBus],
        config: SwimConfig,
        layer=None,
        timer_drift: float = 0.0,
    ) -> None:
        if not 0 <= node_id < config.capacity:
            raise ConfigurationError(
                f"node id {node_id} outside 0..{config.capacity - 1}"
            )
        self.node_id = node_id
        self.config = config
        self._sim = sim
        if layer is None:
            if bus is None:
                raise ConfigurationError("either a bus or a layer is required")
            self.controller = CanController(node_id)
            bus.attach(self.controller)
            self.layer = CanStandardLayer(self.controller)
        else:
            self.layer = layer
            self.controller = layer.controller
        self.timers = TimerService(sim, drift=timer_drift, node=node_id)
        self.protocol = SwimProtocol(self.layer, self.timers, sim, config)
        self._message_listeners: List[MessageCallback] = []
        self._next_ref = 0
        self.layer.add_data_ind(self._on_app_data, mtype=MessageType.DATA)
        self.backend = SwimBackend(self)

    # -- membership API (via the backend contract) -----------------------------

    def join(self) -> None:
        """Enter the membership."""
        self.backend.join()

    def leave(self) -> None:
        """Withdraw from the membership."""
        self.backend.leave()

    def view(self) -> MembershipView:
        """The current membership view at this node."""
        return self.backend.view()

    def on_membership_change(
        self, callback: Callable[[MembershipChange], None]
    ) -> None:
        """Subscribe to membership change notifications."""
        self.backend.on_change(callback)

    @property
    def is_member(self) -> bool:
        """True while this node is a full member."""
        return self.backend.is_member

    # -- application traffic ----------------------------------------------------

    def send(self, data: bytes) -> int:
        """Broadcast application data (SWIM ignores it as evidence —
        unlike CANELy, only protocol messages count as life-signs)."""
        ref = self._next_ref
        self._next_ref = (self._next_ref + 1) % 65536
        mid = MessageId(MessageType.DATA, node=self.node_id, ref=ref)
        self.layer.data_req(mid, data)
        return ref

    def on_message(self, callback: MessageCallback) -> None:
        """Subscribe to application data ``(sender, ref, data)``."""
        self._message_listeners.append(callback)

    def _on_app_data(self, mid: MessageId, data: bytes) -> None:
        for listener in list(self._message_listeners):
            listener(mid.node, mid.ref, data)

    # -- fault scripting ----------------------------------------------------------

    def crash(self) -> None:
        """Crash the node (fail-silent), recording the event in the trace."""
        self.controller.crash()
        self.backend.halt()
        if self._sim.spans.enabled:
            self._sim.spans.instant("node.crash", "node", node=self.node_id)
        self._sim.trace.record(self._sim.now, "node.crash", node=self.node_id)

    @property
    def crashed(self) -> bool:
        """True once the node has crashed."""
        return self.controller.crashed

    def recover(self) -> None:
        """Reboot a crashed node with fresh protocol state."""
        if not self.crashed:
            raise ProtocolError(f"node {self.node_id} has not crashed")
        self.controller.crashed = False
        self.controller.tec = 0
        self.controller.rec = 0
        self.backend.reset()
        if self._sim.spans.enabled:
            self._sim.spans.instant("node.recover", "node", node=self.node_id)
        self._sim.trace.record(self._sim.now, "node.recover", node=self.node_id)

    def stats(self) -> Dict[str, int]:
        """Protocol counters for diagnostics and benchmarks."""
        protocol = self.protocol
        return {
            "heartbeats_sent": protocol.heartbeats_sent,
            "suspicions": protocol.suspicions,
            "refutes": protocol.refutes,
            "removals": protocol.removals,
            "tx_queue_depth": self.controller.queue_depth,
            "view_round": protocol.view().round_index,
        }


class SwimBackend(MembershipBackend):
    """The SWIM stack behind the backend contract."""

    name = "swim"
    critical_path = False

    def __init__(self, node: SwimNode) -> None:
        self._node = node

    @classmethod
    def default_config(cls) -> SwimConfig:
        return SwimConfig()

    @classmethod
    def coerce_config(cls, config):
        if config is None:
            return SwimConfig()
        if isinstance(config, SwimConfig):
            return config
        if hasattr(config, "thb") and hasattr(config, "ttd"):
            return SwimConfig.from_canely(config)
        raise ConfigurationError(
            f"cannot derive a SwimConfig from {type(config).__name__}"
        )

    @classmethod
    def build_node(cls, node_id, sim, bus, config, *, layer=None,
                   timer_drift=0.0) -> SwimNode:
        return SwimNode(
            node_id, sim, bus, config, layer=layer, timer_drift=timer_drift
        )

    def join(self) -> None:
        self._node.protocol.join()

    def leave(self) -> None:
        self._node.protocol.leave()

    def view(self) -> MembershipView:
        return self._node.protocol.view()

    @property
    def is_member(self) -> bool:
        return self._node.protocol.is_member

    def on_change(self, callback) -> None:
        self._node.protocol.on_change(callback)

    def halt(self) -> None:
        self._node.protocol.halt()

    def reset(self) -> None:
        self._node.protocol.reset()

    def metrics(self) -> Dict[str, int]:
        protocol = self._node.protocol
        return {
            "view_round": protocol.view().round_index,
            "heartbeats_sent": protocol.heartbeats_sent,
            "suspicions": protocol.suspicions,
            "refutes": protocol.refutes,
            "removals": protocol.removals,
        }
