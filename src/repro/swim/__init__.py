"""The SWIM membership backend.

A rival failure-detection/membership stack behind the
:class:`~repro.core.backend.MembershipBackend` contract: SWIM-style
heartbeat counters, incarnation numbers and a suspicion sub-protocol over
the same CAN controller and standard layer the CANELy suite uses. Built
for head-to-head comparison (``repro compare``); see
:mod:`repro.swim.protocol` for the protocol and its documented departures
from the paper's bounded-delay detector.
"""

from repro.swim.config import SwimConfig
from repro.swim.node import SwimBackend, SwimNode
from repro.swim.protocol import SwimProtocol

__all__ = ["SwimBackend", "SwimConfig", "SwimNode", "SwimProtocol"]
