"""Exception hierarchy for the CANELy reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """Invalid protocol or network configuration."""


class FrameError(ReproError):
    """Malformed CAN frame or identifier."""


class BusError(ReproError):
    """Illegal bus usage (e.g. two data frames with the same identifier)."""


class ProtocolError(ReproError):
    """A CANELy protocol was driven outside its specified state machine."""


class MembershipError(ProtocolError):
    """Invalid membership operation (e.g. joining twice)."""
