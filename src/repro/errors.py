"""Exception hierarchy for the CANELy reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """Invalid protocol or network configuration."""


class FrameError(ReproError):
    """Malformed CAN frame or identifier."""


class BusError(ReproError):
    """Illegal bus usage (e.g. two data frames with the same identifier)."""


class ProtocolError(ReproError):
    """A CANELy protocol was driven outside its specified state machine."""


class MembershipError(ProtocolError):
    """Invalid membership operation (e.g. joining twice)."""


class ScenarioError(ReproError):
    """A scripted scenario could not be executed as specified.

    Raised, for example, when a cold-start bootstrap does not converge.
    Campaign workers catch this to classify a scenario as
    ``bootstrap_failed`` instead of pattern-matching assertion text.
    """


class CampaignError(ReproError):
    """The campaign engine was driven with an invalid configuration."""


class CheckError(ReproError):
    """The systematic checker was driven with an invalid configuration,
    or a counterexample artifact is malformed/stale."""
