"""CAN worst-case response-time analysis (Tindell & Burns [20]).

MCAN4 states that any queued frame is transmitted within a bounded delay
``Ttd = Ttx + Tina``. ``Ttx`` is the classic fixed-priority non-preemptive
response-time bound over the traffic set; ``Tina`` the worst-case
inaccessibility of the network. The CANELy failure detector adds ``Ttd`` to
remote-node surveillance timers (Fig. 8, line a04), so this analysis is what
parameterizes a deployment.

The recurrence for message ``m``::

    w(0)   = B_m
    w(i+1) = B_m + sum_{j in hp(m)} ceil((w(i) + J_j + tau) / T_j) * C_j
    R_m    = J_m + w + C_m

with ``B_m`` the longest lower-priority frame (non-preemptive blocking),
``J_j`` queuing jitter, ``tau`` one bit-time, ``C_j`` the worst-case frame
transmission time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.can.bitstream import worst_case_frame_bits
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MessageSpec:
    """A periodic message stream for the schedulability analysis.

    Attributes:
        identifier: arbitration identifier (lower = higher priority).
        period: minimum interarrival time, in bit-times.
        dlc: payload size in bytes (0-8).
        jitter: queuing jitter, in bit-times.
        extended: frame format (CANELy uses the extended format).
    """

    identifier: int
    period: int
    dlc: int = 8
    jitter: int = 0
    extended: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be positive: {self.period}")
        if not 0 <= self.dlc <= 8:
            raise ConfigurationError(f"DLC out of range: {self.dlc}")
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative: {self.jitter}")

    @property
    def transmission_bits(self) -> int:
        """Worst-case frame transmission time ``C_m`` in bit-times."""
        return worst_case_frame_bits(self.dlc, extended=self.extended)


def _blocking_bits(message: MessageSpec, others: Sequence[MessageSpec]) -> int:
    lower = [
        other.transmission_bits
        for other in others
        if other.identifier > message.identifier
    ]
    return max(lower, default=0)


def response_time(
    message: MessageSpec,
    traffic: Iterable[MessageSpec],
    max_iterations: int = 1000,
) -> Optional[int]:
    """Worst-case queue-to-delivery response time of ``message`` (bit-times).

    Returns ``None`` when the recurrence exceeds the message period
    (unschedulable at this priority under the classic model).
    """
    others = [spec for spec in traffic if spec is not message]
    higher = [o for o in others if o.identifier < message.identifier]
    blocking = _blocking_bits(message, others)

    w = blocking
    for _ in range(max_iterations):
        interference = sum(
            -(-(w + h.jitter + 1) // h.period) * h.transmission_bits
            for h in higher
        )
        w_next = blocking + interference
        if w_next == w:
            response = message.jitter + w + message.transmission_bits
            if response > message.period + message.jitter:
                return None
            return response
        w = w_next
    return None


def transmission_delay_bound(
    traffic: Sequence[MessageSpec],
    inaccessibility_bits: int = 0,
) -> Optional[int]:
    """The MCAN4 bound ``Ttd = max_m R_m + Tina``, in bit-times.

    Returns ``None`` when any stream is unschedulable.
    """
    worst = 0
    for message in traffic:
        response = response_time(message, traffic)
        if response is None:
            return None
        worst = max(worst, response)
    return worst + inaccessibility_bits


def utilization(traffic: Sequence[MessageSpec]) -> float:
    """Long-run bus utilization of the traffic set (must be < 1)."""
    return sum(m.transmission_bits / m.period for m in traffic)
