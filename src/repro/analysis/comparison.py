"""Comparison tables and head-to-head backend QoS measurement.

The first half reproduces the qualitative comparison tables of the paper
(Figs. 1 and 11): Fig. 1 contrasts TTP with standard CAN to motivate the
work; Fig. 11 adds the CANELy column to show the gap has been closed. The
rows are reproduced verbatim; the quantitative cells (inaccessibility,
membership latency, clock precision) can be overridden with values
measured/derived by this reproduction, which is what the Fig. 11 benchmark
does.

The second half is quantitative and runs live simulations:
:func:`probe_backend` executes one seeded crash scenario on one membership
backend (:mod:`repro.core.backend`) and distils it into a
:class:`BackendQoS` record — detection latency, view-stability mistakes
and flaps, bandwidth per node — and :func:`compare_backends` runs the
*same* scenario under rival backends so ``repro compare`` can print them
side by side. Both are fully deterministic: the same seed yields a
byte-identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.inaccessibility import (
    can_inaccessibility_range,
    canely_inaccessibility_range,
)

Fig1Row = List[str]


def fig1_rows() -> List[Fig1Row]:
    """Fig. 1 — TTP vs standard CAN: [parameter, TTP, CAN]."""
    return [
        ["Error detection domains", "value and time", "value domain"],
        [
            "Omission handling",
            "masking / frame diffusion",
            "detection-recovery / frame retransmission",
        ],
        ["Media redundancy", "no", "no"],
        ["Channel redundancy", "yes", "no"],
        ["Babbling idiot avoidance", "bus guardian", "not provided"],
        ["Communications", "broadcast", "broadcast"],
        ["Membership service", "provided", "not provided"],
        ["Clock synchronization", "in us range", "not provided"],
    ]


def fig11_rows(
    measured: Optional[Dict[str, str]] = None,
) -> List[List[str]]:
    """Fig. 11 — TTP vs CAN vs CANELy: [parameter, TTP, CAN, CANELy].

    ``measured`` may override the CANELy cells for the keys
    ``"inaccessibility"``, ``"membership"`` and ``"clock"`` with values
    produced by this reproduction (the benchmark prints both).
    """
    measured = measured or {}
    can_lo, can_hi = can_inaccessibility_range()
    ely_lo, ely_hi = canely_inaccessibility_range()
    return [
        [
            "Omission handling",
            "masking / diffusion",
            "detection-recovery / retransmission",
            "both algorithms",
        ],
        [
            "Inaccessibility duration",
            "unknown",
            f"{can_lo} - {can_hi} bit-times",
            measured.get("inaccessibility", f"{ely_lo} - {ely_hi} bit-times"),
        ],
        ["Inaccessibility control", "not completely addressed", "no", "yes"],
        ["Media redundancy", "no", "no", "yes"],
        ["Channel redundancy", "yes", "no", "yes (optional)"],
        ["Babbling idiot avoidance", "bus guardian", "not provided", "not provided"],
        ["Communications", "broadcast", "broadcast", "broadcast/multicast"],
        [
            "Membership",
            "provided",
            "not provided",
            measured.get("membership", "tens of ms latency"),
        ],
        [
            "Clock synchronization",
            "in us range",
            "not provided",
            measured.get("clock", "tens of us precision"),
        ],
    ]


# ---------------------------------------------------------------------------
# Head-to-head backend QoS (``repro compare``)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendQoS:
    """One backend's quality-of-service record for one seeded scenario.

    Latencies are crash-to-``msh.change`` notification times in
    milliseconds: ``detection_first_ms`` at the earliest survivor,
    ``detection_last_ms`` when the *last* survivor learned (``None`` when
    some survivor never did — ``notified`` counts how many were).
    ``mistakes`` counts removals of nodes that never crashed (false
    suspicions that went through); ``flaps`` counts re-additions of
    previously removed nodes. ``bandwidth_bits_per_node_ms`` is total bus
    occupancy across all segments divided by population and simulated
    time — the per-node cost of running the protocol suite.
    """

    backend: str
    nodes: int
    segments: int
    seed: int
    converged: bool
    victim: int
    crash_at_ms: float
    detection_first_ms: Optional[float]
    detection_last_ms: Optional[float]
    notified: int
    survivors: int
    mistakes: int
    flaps: int
    final_view_ok: bool
    bus_utilization: float
    bandwidth_bits_per_node_ms: float
    physical_frames: int
    gateway_forwarded: int
    gateway_dropped: int
    metrics: Dict[str, int] = field(default_factory=dict)
    #: Flat QoS summary from :func:`repro.obs.qos.compute_qos` —
    #: detection quantiles, λ_M, T_M, P_A, completeness (plain data,
    #: already rounded, deterministic).
    qos: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form with stable key order and fixed precision."""

        def _round(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value, 3)

        return {
            "backend": self.backend,
            "nodes": self.nodes,
            "segments": self.segments,
            "seed": self.seed,
            "converged": self.converged,
            "victim": self.victim,
            "crash_at_ms": _round(self.crash_at_ms),
            "detection_first_ms": _round(self.detection_first_ms),
            "detection_last_ms": _round(self.detection_last_ms),
            "notified": self.notified,
            "survivors": self.survivors,
            "mistakes": self.mistakes,
            "flaps": self.flaps,
            "final_view_ok": self.final_view_ok,
            "bus_utilization": round(self.bus_utilization, 6),
            "bandwidth_bits_per_node_ms": round(
                self.bandwidth_bits_per_node_ms, 3
            ),
            "physical_frames": self.physical_frames,
            "gateway_forwarded": self.gateway_forwarded,
            "gateway_dropped": self.gateway_dropped,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "qos": {k: self.qos[k] for k in sorted(self.qos)},
        }


def probe_backend(
    backend: str,
    *,
    nodes: int = 12,
    segments: int = 1,
    seed: int = 0,
    config=None,
    crash_window_ms: float = 40.0,
    run_ms: float = 500.0,
) -> BackendQoS:
    """Run one seeded crash scenario on ``backend`` and measure its QoS.

    The scenario — victim and crash offset drawn from ``seed`` — depends
    only on the seed, never on the backend, so rival backends face exactly
    the same fault and the comparison is fair. The whole run is
    deterministic: same arguments, same :class:`BackendQoS`.
    """
    from repro.core.stack import CanelyNetwork
    from repro.sim.clock import ms
    from repro.sim.rng import RngStreams

    rng = RngStreams(seed).stream("compare")
    victim = rng.randint(0, nodes - 1)
    crash_offset = ms(rng.randint(0, max(0, int(crash_window_ms))))

    net = CanelyNetwork(
        node_count=nodes, config=config, backend=backend, segments=segments
    )
    net.join_all()
    net.run_for(net.config.tjoin_wait + round(6 * net.config.tm))
    converged = (
        len(net.member_views()) == nodes and net.views_agree()
    )
    settled_at = net.sim.now

    net.run_for(crash_offset)
    crash_time = net.sim.now
    net.node(victim).crash()
    net.run_for(ms(run_ms))

    survivors = sorted(set(range(nodes)) - {victim})
    # Per-survivor notification latency: first msh.change at that node
    # whose failed set names the victim, at or after the crash.
    latencies: Dict[int, Optional[int]] = {n: None for n in survivors}
    pending = set(survivors)
    ever_removed: set = set()
    prev_active: Dict[int, Any] = {}
    mistakes = 0
    flaps = 0
    for record in net.sim.trace.select(category="msh.change"):
        observer = record.node
        failed = record.data["failed"]
        active = record.data["active"]
        if (
            observer in pending
            and record.time >= crash_time
            and victim in failed
        ):
            latencies[observer] = record.time - crash_time
            pending.discard(observer)
        # View stability, judged at one observer (the lowest surviving id)
        # so a single mistake is not multiplied by the population.
        if observer == survivors[0]:
            for node_id in failed:
                if node_id != victim:
                    mistakes += 1
            previous = prev_active.get(observer)
            if previous is not None:
                for node_id in active:
                    if node_id not in previous and node_id in ever_removed:
                        flaps += 1
            ever_removed.update(failed)
            prev_active[observer] = set(active)

    notified = [v for v in latencies.values() if v is not None]
    qos_summary = _qos_summary(net, settled_at)
    elapsed_ms = net.sim.now / ms(1)
    busy_bits = sum(bus.stats.busy_bits for bus in net.buses)
    frames = sum(bus.stats.physical_frames for bus in net.buses)
    utilization = sum(bus.utilization() for bus in net.buses) / len(net.buses)
    final_views = net.member_views()
    final_view_ok = (
        net.views_agree()
        and bool(final_views)
        and set(next(iter(final_views.values()))) == set(survivors)
    )
    gateway = net.gateway
    return BackendQoS(
        backend=net.backend_name,
        nodes=nodes,
        segments=segments,
        seed=seed,
        converged=converged,
        victim=victim,
        crash_at_ms=crash_time / ms(1),
        detection_first_ms=(
            min(notified) / ms(1) if notified else None
        ),
        detection_last_ms=(
            max(notified) / ms(1) if len(notified) == len(survivors) else None
        ),
        notified=len(notified),
        survivors=len(survivors),
        mistakes=mistakes,
        flaps=flaps,
        final_view_ok=final_view_ok,
        bus_utilization=utilization,
        bandwidth_bits_per_node_ms=(
            busy_bits / nodes / elapsed_ms if elapsed_ms else 0.0
        ),
        physical_frames=frames,
        gateway_forwarded=gateway.stats.forwarded if gateway else 0,
        gateway_dropped=gateway.stats.dropped if gateway else 0,
        metrics=dict(net.node(survivors[0]).backend.metrics()),
        qos=qos_summary,
    )


def _qos_summary(net, start: int) -> Dict[str, Any]:
    """The flat FD-QoS summary a :class:`BackendQoS` record carries.

    The :meth:`repro.obs.qos.QoSMetrics.summary` projection of the full
    readout — the handful of figures ``repro compare`` quotes.
    """
    from repro.obs.qos import network_qos

    return network_qos(net, start=start).summary()


def compare_backends(
    backends: Sequence[str] = ("canely", "swim"),
    *,
    nodes: int = 12,
    segments: int = 1,
    seed: int = 0,
    config=None,
    crash_window_ms: float = 40.0,
    run_ms: float = 500.0,
) -> Dict[str, Any]:
    """Run the same seeded crash scenario under every backend in
    ``backends`` and fold the :class:`BackendQoS` records into one report.

    Deterministic by construction: the report for a given argument tuple
    is byte-identical run to run (``repro compare``'s contract).
    """
    probes = [
        probe_backend(
            name,
            nodes=nodes,
            segments=segments,
            seed=seed,
            config=config,
            crash_window_ms=crash_window_ms,
            run_ms=run_ms,
        )
        for name in backends
    ]
    return {
        "scenario": {
            "nodes": nodes,
            "segments": segments,
            "seed": seed,
            "crash_window_ms": round(crash_window_ms, 3),
            "run_ms": round(run_ms, 3),
        },
        "backends": [probe.to_dict() for probe in probes],
    }


def comparison_rows(report: Dict[str, Any]) -> Tuple[List[str], List[List[str]]]:
    """``(header, rows)`` for rendering a comparison report as a table."""

    def _fmt(value: Any) -> str:
        if value is None:
            return "never"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    probes = report["backends"]
    header = ["metric"] + [probe["backend"] for probe in probes]
    metrics = [
        ("converged after bootstrap", "converged"),
        ("detection latency, first survivor (ms)", "detection_first_ms"),
        ("detection latency, last survivor (ms)", "detection_last_ms"),
        ("survivors notified", "notified"),
        ("false removals (mistakes)", "mistakes"),
        ("view flaps (re-additions)", "flaps"),
        ("final view correct", "final_view_ok"),
        ("bus utilization", "bus_utilization"),
        ("bandwidth (bits/node/ms)", "bandwidth_bits_per_node_ms"),
        ("physical frames", "physical_frames"),
        ("gateway forwarded", "gateway_forwarded"),
        ("gateway dropped", "gateway_dropped"),
    ]
    rows = [
        [label] + [_fmt(probe[key]) for probe in probes]
        for label, key in metrics
    ]
    qos_metrics = [
        ("QoS detection p50 (ms)", "detection_p50_ms"),
        ("QoS detection p90 (ms)", "detection_p90_ms"),
        ("QoS detection p99 (ms)", "detection_p99_ms"),
        ("QoS mistake rate λ_M (/node·s)", "mistake_rate_per_node_s"),
        ("QoS mistake duration T_M mean (ms)", "mistake_duration_mean_ms"),
        ("QoS query accuracy P_A", "query_accuracy"),
        ("QoS completeness", "completeness"),
    ]
    rows += [
        [label]
        + [
            "-" if value is None else _fmt(value)
            for value in (probe.get("qos", {}).get(key) for probe in probes)
        ]
        for label, key in qos_metrics
    ]
    return header, rows
