"""The qualitative comparison tables of the paper (Figs. 1 and 11).

These tables are part of the paper's evaluation narrative: Fig. 1 contrasts
TTP with standard CAN to motivate the work; Fig. 11 adds the CANELy column
to show the gap has been closed. The rows are reproduced verbatim; the
quantitative cells (inaccessibility, membership latency, clock precision)
can be overridden with values measured/derived by this reproduction, which
is what the Fig. 11 benchmark does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.inaccessibility import (
    can_inaccessibility_range,
    canely_inaccessibility_range,
)

Fig1Row = List[str]


def fig1_rows() -> List[Fig1Row]:
    """Fig. 1 — TTP vs standard CAN: [parameter, TTP, CAN]."""
    return [
        ["Error detection domains", "value and time", "value domain"],
        [
            "Omission handling",
            "masking / frame diffusion",
            "detection-recovery / frame retransmission",
        ],
        ["Media redundancy", "no", "no"],
        ["Channel redundancy", "yes", "no"],
        ["Babbling idiot avoidance", "bus guardian", "not provided"],
        ["Communications", "broadcast", "broadcast"],
        ["Membership service", "provided", "not provided"],
        ["Clock synchronization", "in us range", "not provided"],
    ]


def fig11_rows(
    measured: Optional[Dict[str, str]] = None,
) -> List[List[str]]:
    """Fig. 11 — TTP vs CAN vs CANELy: [parameter, TTP, CAN, CANELy].

    ``measured`` may override the CANELy cells for the keys
    ``"inaccessibility"``, ``"membership"`` and ``"clock"`` with values
    produced by this reproduction (the benchmark prints both).
    """
    measured = measured or {}
    can_lo, can_hi = can_inaccessibility_range()
    ely_lo, ely_hi = canely_inaccessibility_range()
    return [
        [
            "Omission handling",
            "masking / diffusion",
            "detection-recovery / retransmission",
            "both algorithms",
        ],
        [
            "Inaccessibility duration",
            "unknown",
            f"{can_lo} - {can_hi} bit-times",
            measured.get("inaccessibility", f"{ely_lo} - {ely_hi} bit-times"),
        ],
        ["Inaccessibility control", "not completely addressed", "no", "yes"],
        ["Media redundancy", "no", "no", "yes"],
        ["Channel redundancy", "yes", "no", "yes (optional)"],
        ["Babbling idiot avoidance", "bus guardian", "not provided", "not provided"],
        ["Communications", "broadcast", "broadcast", "broadcast/multicast"],
        [
            "Membership",
            "provided",
            "not provided",
            measured.get("membership", "tens of ms latency"),
        ],
        [
            "Clock synchronization",
            "in us range",
            "not provided",
            measured.get("clock", "tens of us precision"),
        ],
    ]
