"""Analytical models: timing, bandwidth, inaccessibility, comparisons.

These modules regenerate the paper's analytical artifacts — the Fig. 10
bandwidth-utilization curves, the inaccessibility rows of Fig. 11 and the
qualitative comparison tables of Figs. 1 and 11 — and provide the
Tindell-Burns response-time analysis used to parameterize the protocol's
``Ttd`` bound.
"""

from repro.analysis.bandwidth import BandwidthModel, BandwidthBreakdown
from repro.analysis.comparison import fig1_rows, fig11_rows
from repro.analysis.inaccessibility import (
    InaccessibilityScenario,
    can_inaccessibility_range,
    canely_inaccessibility_range,
    scenario_catalogue,
)
from repro.analysis.latency import LatencyBounds, latency_bounds
from repro.analysis.reliability import (
    InconsistencyEstimate,
    inconsistent_omission_rate,
)
from repro.analysis.timing import MessageSpec, response_time, transmission_delay_bound

__all__ = [
    "BandwidthBreakdown",
    "BandwidthModel",
    "InaccessibilityScenario",
    "InconsistencyEstimate",
    "LatencyBounds",
    "MessageSpec",
    "inconsistent_omission_rate",
    "can_inaccessibility_range",
    "canely_inaccessibility_range",
    "fig1_rows",
    "fig11_rows",
    "latency_bounds",
    "response_time",
    "scenario_catalogue",
    "transmission_delay_bound",
]
