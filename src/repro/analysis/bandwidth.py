"""Analytical CAN bandwidth model for the membership suite (paper Fig. 10).

Fig. 10 plots the fraction of CAN bandwidth used by the site membership
protocol suite against the membership cycle period ``Tm``, under
deliberately harsh, conservative assumptions (paper Section 6.5):

* every micro-protocol consumes its maximum bandwidth, with protocol *and*
  network overheads accounted;
* multiple events pile into the same cycle: ``b`` nodes issue explicit
  life-signs, ``f`` nodes crash, ``c`` join/leave requests are processed.

Worst-case component costs (frame lengths are worst-case stuffed lengths
from :mod:`repro.can.bitstream`; ``E`` is the error-signalling overhead a
faulty transmission adds):

* **life-signs** — ``b`` ELS remote frames per cycle.
* **FDA**, per crash — the failure-sign frame, its clustered echo, and up
  to ``j`` further copies (one per inconsistent omission hitting the
  protocol), each faulty attempt paying ``E``: ``(2 + j)*L_rtr + j*E``.
* **RHA**, per cycle with ``c`` join/leave requests — the ``c`` request
  remote frames, plus the RHV signals: inconsistent perception of requests
  produces at most ``min(c, j) + 1`` distinct vectors (LCAN4 bounds the
  divergence), and each distinct value circulates in at most ``j + 1``
  copies before the abort rule retires pending requests (Fig. 7, r08):
  ``c*L_rtr + (min(c, j) + 1)*(j + 1)*L_rhv + j*E``.

The four curves of Fig. 10 are cumulative scenarios over the same
parameters (n=32, b=8, f=4): *no membership changes* (life-signs only),
*f crash failures* (+FDA), *join/leave event* (+RHA with c=1), *multiple
join/leave* (+RHA with c=20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.can.bitstream import (
    ERROR_DELIMITER_BITS,
    SUSPEND_TRANSMISSION_BITS,
    worst_case_frame_bits,
)
from repro.analysis.inaccessibility import SUPERPOSED_FLAG_BITS
from repro.errors import ConfigurationError

#: Error-signalling overhead charged per faulty transmission attempt.
ERROR_OVERHEAD_BITS = (
    SUPERPOSED_FLAG_BITS + ERROR_DELIMITER_BITS + SUSPEND_TRANSMISSION_BITS
)


@dataclass(frozen=True)
class BandwidthBreakdown:
    """Worst-case bits consumed by each component within one cycle."""

    lifesign_bits: int
    fda_bits: int
    rha_bits: int

    @property
    def total_bits(self) -> int:
        return self.lifesign_bits + self.fda_bits + self.rha_bits

    def utilization(self, tm_bits: int) -> float:
        """Fraction of the cycle's capacity the suite consumes."""
        if tm_bits <= 0:
            raise ConfigurationError(f"tm must be positive: {tm_bits}")
        return self.total_bits / tm_bits


@dataclass(frozen=True)
class BandwidthModel:
    """The Fig. 10 analytical model.

    Attributes:
        population: node population ``n`` (sizes the RHV data field).
        lifesign_nodes: ``b``, nodes issuing explicit life-signs per cycle.
        crash_failures: ``f``, node crashes per cycle.
        inconsistent_degree: the model's ``j`` bound.
        extended: frame format — the paper's evaluation uses standard
            (11-bit) frames; this reproduction's wire format is extended.
        bit_rate: bus bit rate, bit/s (1 Mbps in the paper).
    """

    population: int = 32
    lifesign_nodes: int = 8
    crash_failures: int = 4
    inconsistent_degree: int = 2
    extended: bool = False
    bit_rate: int = 1_000_000

    def __post_init__(self) -> None:
        if not 1 <= self.population <= 64:
            raise ConfigurationError(
                f"population must be in 1..64: {self.population}"
            )
        if self.lifesign_nodes > self.population:
            raise ConfigurationError("more life-sign nodes than population")
        if self.bit_rate <= 0:
            raise ConfigurationError(f"bit rate must be positive: {self.bit_rate}")

    # -- frame costs -------------------------------------------------------------

    @property
    def remote_frame_bits(self) -> int:
        """Worst-case cost of a control message (ELS/FDA/JOIN/LEAVE)."""
        return worst_case_frame_bits(0, extended=self.extended)

    @property
    def rhv_frame_bits(self) -> int:
        """Worst-case cost of an RHV signal (data frame carrying the vector)."""
        rhv_bytes = (self.population + 7) // 8
        return worst_case_frame_bits(rhv_bytes, extended=self.extended)

    # -- component costs ------------------------------------------------------------

    def lifesign_bits(self) -> int:
        """Explicit life-sign traffic per cycle: ``b`` ELS frames."""
        return self.lifesign_nodes * self.remote_frame_bits

    def fda_bits(self, crashes: int) -> int:
        """Worst-case FDA traffic for ``crashes`` node failures."""
        j = self.inconsistent_degree
        per_failure = (2 + j) * self.remote_frame_bits + j * ERROR_OVERHEAD_BITS
        return crashes * per_failure

    def rha_bits(self, join_leaves: int) -> int:
        """Worst-case join/leave handling for ``join_leaves`` requests."""
        if join_leaves <= 0:
            return 0
        j = self.inconsistent_degree
        distinct_vectors = min(join_leaves, j) + 1
        request_bits = join_leaves * self.remote_frame_bits
        rhv_bits = distinct_vectors * (j + 1) * self.rhv_frame_bits
        return request_bits + rhv_bits + j * ERROR_OVERHEAD_BITS

    # -- the Fig. 10 quantities -----------------------------------------------------------

    def breakdown(self, crashes: int, join_leaves: int) -> BandwidthBreakdown:
        """Per-component worst-case bits for one membership cycle."""
        return BandwidthBreakdown(
            lifesign_bits=self.lifesign_bits(),
            fda_bits=self.fda_bits(crashes),
            rha_bits=self.rha_bits(join_leaves),
        )

    def utilization(self, tm_ms: float, crashes: int, join_leaves: int) -> float:
        """Suite bandwidth fraction for a cycle period of ``tm_ms``."""
        tm_bits = self.bit_rate * tm_ms / 1000.0
        return self.breakdown(crashes, join_leaves).total_bits / tm_bits

    def curve(
        self, tm_values_ms: Sequence[float], crashes: int, join_leaves: int
    ) -> List[float]:
        """Utilization at each ``Tm`` — one Fig. 10 curve."""
        return [self.utilization(tm, crashes, join_leaves) for tm in tm_values_ms]

    def figure10(
        self,
        tm_values_ms: Sequence[float] = tuple(range(30, 95, 5)),
        multiple_join_leaves: int = 20,
    ) -> Dict[str, List[float]]:
        """All four Fig. 10 curves keyed by the paper's legend labels."""
        f = self.crash_failures
        return {
            "no msh. changes": self.curve(tm_values_ms, 0, 0),
            "f crash failures": self.curve(tm_values_ms, f, 0),
            "join/leave event": self.curve(tm_values_ms, f, 1),
            "multiple join/leave": self.curve(
                tm_values_ms, f, multiple_join_leaves
            ),
        }

    def marginal_join_leave_utilization(self, tm_ms: float) -> float:
        """Section 6.5 footnote: bandwidth added by one further request.

        Beyond the ``j``-bounded divergence regime each additional request
        only contributes its own remote frame; the paper quotes ~0.4% for
        ``Tm >= 25 ms``.
        """
        j = self.inconsistent_degree
        extra = self.rha_bits(j + 2) - self.rha_bits(j + 1)
        tm_bits = self.bit_rate * tm_ms / 1000.0
        return extra / tm_bits
