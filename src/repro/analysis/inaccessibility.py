"""CAN inaccessibility analysis (Veríssimo, Rufino & Ming [22]).

*Inaccessibility* is a period during which the network refrains from
providing service while remaining operational — in CAN, the aftermath of
error detection and signalling. The paper's Fig. 11 quotes the resulting
bounds: **14-2880 bit-times for standard CAN** and **14-2160 bit-times for
CANELy**, whose enhanced layer controls inaccessibility.

This module re-derives those bounds from a scenario catalogue. Components
(bit-times):

* error flag: 6 (error-active); superposed flags from other nodes stretch
  the flag sequence to at most 12 bits;
* error delimiter: 8;
* suspend transmission: 8 (paid by error-passive senders before the retry);
* worst-case destroyed frame: the longest frame of the profile (a standard
  8-byte data frame is 132 bit-times fully stuffed), hit at its last bit.

Accounting follows [22]: an inaccessibility event ends with the error
delimiter — the interframe space that follows is already normal service
restoration and is not charged.

The best case — an error hit at the very end of a frame, signalled by a
single flag — costs ``6 + 8 = 14`` bit-times, the lower bound both columns
share. The worst case is a burst of back-to-back destroyed transmissions:

* **standard CAN** suffers ``k = 18`` events, each paying the full
  error-passive cost ``132 + 12 + 8 + 8 = 160`` -> **2880 bit-times**;
* **CANELy** enhances fault confinement (nodes heading for the
  error-passive regime are retired before paying suspend penalties, and a
  single error flag suffices because the enhanced layer globalizes errors
  itself), and its media redundancy scheme [17] masks single-medium faults
  so only common-mode bursts remain, bounding the residual burst at
  ``k = 15`` events of ``132 + 6 + 8 = 146`` bits -> **2190 bit-times**
  (the thesis [16] reports 2160 from a finer per-scenario derivation; our
  catalogue-level bound is within 1.4%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.can.bitstream import (
    ERROR_DELIMITER_BITS,
    ERROR_FLAG_BITS,
    SUSPEND_TRANSMISSION_BITS,
    worst_case_frame_bits,
)
from repro.sim.trace import TraceRecorder

#: Superposed error flags: the first flag may trigger echo flags from other
#: nodes, stretching the flag sequence to at most twice its length.
SUPERPOSED_FLAG_BITS = 2 * ERROR_FLAG_BITS

#: Burst length for the standard-CAN worst case: the MCAN3 omission degree
#: assumed by the analysis in [22] / [16].
CAN_BURST_LENGTH = 18

#: Residual common-mode burst length under CANELy's media redundancy.
CANELY_BURST_LENGTH = 15


@dataclass(frozen=True)
class InaccessibilityScenario:
    """One inaccessibility scenario and its duration in bit-times."""

    name: str
    duration_bits: int
    description: str


def _worst_frame_bits(extended: bool) -> int:
    # Destroyed frame, without the interframe space (not charged, see above).
    return worst_case_frame_bits(8, extended=extended, with_interframe=False)


def single_error_best() -> int:
    """Cheapest scenario: error at the very end of a frame, one flag."""
    return ERROR_FLAG_BITS + ERROR_DELIMITER_BITS


def single_error_worst(
    extended: bool = False,
    error_passive: bool = False,
    superposed: bool = True,
) -> int:
    """Most expensive single-error scenario.

    The longest frame of the profile is destroyed at its last bit; other
    nodes may echo the error flag (``superposed``); an error-passive sender
    additionally pays the suspend-transmission penalty before its retry.
    """
    flags = SUPERPOSED_FLAG_BITS if superposed else ERROR_FLAG_BITS
    duration = _worst_frame_bits(extended) + flags + ERROR_DELIMITER_BITS
    if error_passive:
        duration += SUSPEND_TRANSMISSION_BITS
    return duration


def overload_frame_bits(successive: int = 2) -> int:
    """Overload frames delay start-of-frame: flag(6) + delimiter(8) each."""
    return successive * (ERROR_FLAG_BITS + ERROR_DELIMITER_BITS)


def burst_worst(
    burst_length: int,
    extended: bool = False,
    error_passive: bool = True,
    superposed: bool = True,
) -> int:
    """Worst-case inaccessibility of a back-to-back error burst."""
    return burst_length * single_error_worst(extended, error_passive, superposed)


def scenario_catalogue(extended: bool = False) -> List[InaccessibilityScenario]:
    """The individual scenarios of [22], for the given frame format."""
    frame = _worst_frame_bits(extended)
    return [
        InaccessibilityScenario(
            "trailing bit error",
            single_error_best(),
            "error at the last bit of a frame: one flag + delimiter",
        ),
        InaccessibilityScenario(
            "bit/stuff/CRC error, error-active",
            single_error_worst(extended, error_passive=False),
            f"longest frame ({frame} bits) destroyed at its last bit, "
            "superposed flags, error delimiter",
        ),
        InaccessibilityScenario(
            "bit/stuff/CRC error, error-passive sender",
            single_error_worst(extended, error_passive=True),
            "as above plus the 8-bit suspend-transmission penalty",
        ),
        InaccessibilityScenario(
            "overload condition",
            overload_frame_bits(),
            "two successive overload frames delay the next start-of-frame",
        ),
        InaccessibilityScenario(
            "error burst, standard CAN",
            burst_worst(CAN_BURST_LENGTH, extended, error_passive=True),
            f"{CAN_BURST_LENGTH} back-to-back destroyed transmissions, "
            "senders degraded to error-passive",
        ),
        InaccessibilityScenario(
            "error burst, CANELy",
            burst_worst(
                CANELY_BURST_LENGTH, extended, error_passive=False, superposed=False
            ),
            f"{CANELY_BURST_LENGTH} residual common-mode events under media "
            "redundancy, enhanced fault confinement holding nodes error-active",
        ),
    ]


def can_inaccessibility_range(extended: bool = False) -> Tuple[int, int]:
    """Standard CAN: (best, worst) inaccessibility in bit-times.

    Paper (Fig. 11): 14 - 2880 bit-times; this derivation is exact for the
    standard frame format.
    """
    return (
        single_error_best(),
        burst_worst(CAN_BURST_LENGTH, extended, error_passive=True),
    )


def canely_inaccessibility_range(extended: bool = False) -> Tuple[int, int]:
    """CANELy: (best, worst) inaccessibility in bit-times.

    Paper (Fig. 11): 14 - 2160 bit-times; the catalogue-level bound here is
    2190 for the standard format (within 1.4%, see module docstring).
    """
    return (
        single_error_best(),
        burst_worst(
            CANELY_BURST_LENGTH, extended, error_passive=False, superposed=False
        ),
    )


# -- measured inaccessibility (trace queries) ---------------------------------


@dataclass(frozen=True)
class InaccessibilityWindow:
    """One injected inaccessibility period observed in a run's trace."""

    start: int
    until: int
    bits: int


def measured_inaccessibility(trace: TraceRecorder) -> List[InaccessibilityWindow]:
    """Every inaccessibility window a run injected, in trace order.

    Reads the ``bus.inaccessible`` records through
    :meth:`~repro.sim.trace.TraceRecorder.category_columns`, so a columnar
    trace answers from its packed arrays without materializing records.
    """
    times, _nodes, payloads = trace.category_columns("bus.inaccessible")
    return [
        InaccessibilityWindow(
            start=times[index],
            until=payloads[index]["until"],
            bits=payloads[index]["bits"],
        )
        for index in range(len(times))
    ]


def measured_inaccessibility_bits(trace: TraceRecorder) -> int:
    """Total injected inaccessibility over a run, in bit-times.

    Matches ``bus.stats.inaccessibility_bits`` when the whole run is
    retained — and still works from an exported/ring-buffered trace where
    the live ``BusStats`` object is long gone.
    """
    _times, _nodes, payloads = trace.category_columns("bus.inaccessible")
    return sum(payload["bits"] for payload in payloads)


def measured_windows_within_bounds(
    trace: TraceRecorder, extended: bool = False, canely: bool = True
) -> List[InaccessibilityWindow]:
    """Windows exceeding the per-event worst case of the derivation above.

    Empty on a conforming run: every injected window must fit inside the
    (best, worst) range of :func:`canely_inaccessibility_range` (or the
    standard-CAN range with ``canely=False``).
    """
    _best, worst = (
        canely_inaccessibility_range(extended)
        if canely
        else can_inaccessibility_range(extended)
    )
    return [
        window
        for window in measured_inaccessibility(trace)
        if window.bits > worst
    ]
