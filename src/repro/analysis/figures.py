"""Plain-text chart rendering for the analytical figures.

The CLI and the benchmark reports occasionally want to *see* the Fig. 10
curves, not just read the numbers. :func:`ascii_chart` renders one or more
``(x, y)`` series into a fixed-size character grid with axes and a legend —
no plotting dependency required.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Plot glyphs assigned to series in order.
GLYPHS = "*o+x#@"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    y_format: str = "{:.1%}",
    x_format: str = "{:.0f}",
    title: str = "",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Points are nearest-neighbour mapped onto a ``width x height`` grid;
    the y axis starts at zero (these are utilization curves).
    """
    if not series:
        raise ConfigurationError("at least one series is required")
    if width < 8 or height < 4:
        raise ConfigurationError(f"chart too small: {width}x{height}")
    points = [point for curve in series.values() for point in curve]
    if not points:
        raise ConfigurationError("series contain no points")
    x_values = [x for x, _ in points]
    y_values = [y for _, y in points]
    x_lo, x_hi = min(x_values), max(x_values)
    y_lo, y_hi = 0.0, max(y_values) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in curve:
            column = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][column] = glyph

    label_width = max(len(y_format.format(y_hi)), len(y_format.format(y_lo)))
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_format.format(y_hi)
        elif row_index == height - 1:
            label = y_format.format(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    x_left = x_format.format(x_lo)
    x_right = x_format.format(x_hi)
    padding = width - len(x_left) - len(x_right)
    lines.append(f"{'':>{label_width}}  {x_left}{'' :>{max(0, padding)}}{x_right}")
    for index, label in enumerate(series):
        lines.append(
            f"{'':>{label_width}}  {GLYPHS[index % len(GLYPHS)]} = {label}"
        )
    return "\n".join(lines)


def fig10_chart(model=None, tm_values=None) -> str:
    """The Fig. 10 curves as an ASCII chart."""
    from repro.analysis.bandwidth import BandwidthModel

    model = model if model is not None else BandwidthModel()
    tm_values = list(tm_values or range(30, 95, 5))
    curves = model.figure10(tm_values)
    series = {
        label: list(zip(tm_values, values)) for label, values in curves.items()
    }
    return ascii_chart(
        series,
        title=(
            "Figure 10 — membership suite bandwidth vs Tm (ms), "
            f"n={model.population}, b={model.lifesign_nodes}, "
            f"f={model.crash_failures}"
        ),
    )
