"""Plain-text chart rendering for the analytical figures.

The CLI and the benchmark reports occasionally want to *see* the Fig. 10
curves, not just read the numbers. :func:`ascii_chart` renders one or more
``(x, y)`` series into a fixed-size character grid with axes and a legend —
no plotting dependency required.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Plot glyphs assigned to series in order.
GLYPHS = "*o+x#@"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    y_format: str = "{:.1%}",
    x_format: str = "{:.0f}",
    title: str = "",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Points are nearest-neighbour mapped onto a ``width x height`` grid;
    the y axis starts at zero (these are utilization curves).
    """
    if not series:
        raise ConfigurationError("at least one series is required")
    if width < 8 or height < 4:
        raise ConfigurationError(f"chart too small: {width}x{height}")
    points = [point for curve in series.values() for point in curve]
    if not points:
        raise ConfigurationError("series contain no points")
    x_values = [x for x, _ in points]
    y_values = [y for _, y in points]
    x_lo, x_hi = min(x_values), max(x_values)
    y_lo, y_hi = 0.0, max(y_values) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in curve:
            column = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][column] = glyph

    label_width = max(len(y_format.format(y_hi)), len(y_format.format(y_lo)))
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_format.format(y_hi)
        elif row_index == height - 1:
            label = y_format.format(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    x_left = x_format.format(x_lo)
    x_right = x_format.format(x_hi)
    padding = width - len(x_left) - len(x_right)
    lines.append(f"{'':>{label_width}}  {x_left}{'' :>{max(0, padding)}}{x_right}")
    for index, label in enumerate(series):
        lines.append(
            f"{'':>{label_width}}  {GLYPHS[index % len(GLYPHS)]} = {label}"
        )
    return "\n".join(lines)


def fig10_chart(model=None, tm_values=None) -> str:
    """The Fig. 10 curves as an ASCII chart."""
    from repro.analysis.bandwidth import BandwidthModel

    model = model if model is not None else BandwidthModel()
    tm_values = list(tm_values or range(30, 95, 5))
    curves = model.figure10(tm_values)
    series = {
        label: list(zip(tm_values, values)) for label, values in curves.items()
    }
    return ascii_chart(
        series,
        title=(
            "Figure 10 — membership suite bandwidth vs Tm (ms), "
            f"n={model.population}, b={model.lifesign_nodes}, "
            f"f={model.crash_failures}"
        ),
    )


# ---------------------------------------------------------------------------
# QoS catalog figures (``repro qos --chart`` / ``--figure``)
# ---------------------------------------------------------------------------


def qos_detection_series(report):
    """``{backend: [(scenario index, detection p50 ms), ...]}`` curves.

    The data behind the QoS chart, extracted from a
    :class:`~repro.scenarios.runner.QoSReport`: x is the scenario's index
    in the report's scenario order, y the detection-time median. Cells
    without a detection sample (no crash, or nothing notified) are
    omitted. Pure data, deterministic for a deterministic report — the
    figure-determinism tests byte-compare exactly this.
    """
    series = {}
    for index, scenario in enumerate(report.scenarios):
        for backend in report.backends:
            outcome = report.outcome(scenario, backend)
            if outcome is None:
                continue
            p50 = outcome.qos.to_dict()["detection_ms"]["p50_ms"]
            if p50 is None:
                continue
            series.setdefault(backend, []).append((float(index), p50))
    return series


def qos_chart(report, width: int = 64, height: int = 16) -> str:
    """The QoS catalog's detection medians as an ASCII chart.

    One glyph per backend, x = scenario index (in report order), y =
    detection p50 in ms. Falls back to a plain message when no scenario
    produced a detection sample (an all-quiet or all-starved catalog).
    """
    series = qos_detection_series(report)
    if not any(series.values()):
        return "qos chart: no detection samples to plot"
    scenarios = ", ".join(
        f"{index}={name}" for index, name in enumerate(report.scenarios)
    )
    return ascii_chart(
        series,
        width=width,
        height=height,
        y_format="{:.1f}",
        x_format="{:.0f}",
        title=f"Detection p50 (ms) by scenario — {scenarios}",
    )


def save_qos_figure(report, path: str) -> str:
    """Render the QoS detection chart to an image file via matplotlib.

    matplotlib is an *optional* dependency: when it is not installed this
    raises :class:`~repro.errors.ConfigurationError` with a clear message
    instead of an ImportError mid-plot (the ASCII chart needs nothing).
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        from matplotlib import pyplot
    except ImportError:
        raise ConfigurationError(
            "matplotlib is not installed; use the ASCII chart "
            "(repro qos --chart) or install matplotlib for image output"
        ) from None
    series = qos_detection_series(report)
    figure, axes = pyplot.subplots(figsize=(8, 4.5))
    for backend in sorted(series):
        points = series[backend]
        axes.plot(
            [x for x, _ in points],
            [y for _, y in points],
            marker="o",
            label=backend,
        )
    axes.set_xticks(range(len(report.scenarios)))
    axes.set_xticklabels(report.scenarios, rotation=45, ha="right", fontsize=7)
    axes.set_ylabel("detection p50 (ms)")
    axes.set_title("Failure-detector QoS catalog")
    axes.legend()
    figure.tight_layout()
    figure.savefig(path)
    pyplot.close(figure)
    return path
