"""Analytical bounds for failure detection and membership latency.

Fig. 11 quotes CANELy's membership latency as "tens of ms". This module
derives the bound from the protocol structure so deployments can verify a
configuration *before* running it, and so the Fig. 11 benchmark can check
the measured latency against the bound:

* **silence bound** — a node may transmit a life-sign immediately before
  crashing; its silence is certain only ``Thb + Ttd`` later (the remote
  surveillance timeout of Fig. 8, line a04);
* **dissemination bound** — the FDA failure-sign plus its worst-case
  echoes and error recovery, at top bus priority;
* **notification** — ``fd-can.nty`` / ``msh-can.nty`` are local upcalls
  (no bus traffic).

The *view update* additionally waits for the next membership cycle
boundary (at most ``Tm``), which is the figure to compare against TTP's
slot-synchronous membership.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.can.bitstream import (
    ERROR_DELIMITER_BITS,
    SUSPEND_TRANSMISSION_BITS,
    worst_case_frame_bits,
)
from repro.analysis.inaccessibility import SUPERPOSED_FLAG_BITS
from repro.core.config import CanelyConfig
from repro.sim.clock import SEC


@dataclass(frozen=True)
class LatencyBounds:
    """Worst-case latency decomposition, all in kernel ticks.

    Attributes:
        silence: crash-to-timer-expiry bound (``Thb + Ttd``).
        dissemination: FDA worst-case dissemination time.
        notification: crash-to-``msh-can.nty`` bound (failure notification
            at every correct node).
        view_update: crash-to-consistent-view bound (adds one membership
            cycle).
    """

    silence: int
    dissemination: int
    notification: int
    view_update: int


def fda_dissemination_bound(
    config: CanelyConfig, bit_rate: int = 1_000_000
) -> int:
    """Worst-case FDA dissemination time, in kernel ticks.

    The failure-sign travels at top bus priority; it can suffer at most
    ``j`` inconsistent omissions, each costing a frame plus the error
    signalling overhead, followed by the clustered echo round.
    """
    bit_ticks = SEC // bit_rate
    frame_bits = worst_case_frame_bits(0, extended=True)
    error_bits = (
        SUPERPOSED_FLAG_BITS + ERROR_DELIMITER_BITS + SUSPEND_TRANSMISSION_BITS
    )
    j = config.inconsistent_degree
    # Blocking by one in-flight maximum-length frame, then the sign and its
    # echo, plus j faulty attempts.
    blocking_bits = worst_case_frame_bits(8, extended=True)
    total_bits = blocking_bits + 2 * frame_bits + j * (frame_bits + error_bits)
    return total_bits * bit_ticks


def latency_bounds(
    config: CanelyConfig, bit_rate: int = 1_000_000
) -> LatencyBounds:
    """The full crash-to-consequence latency decomposition."""
    silence = config.thb + config.ttd
    dissemination = fda_dissemination_bound(config, bit_rate)
    notification = silence + dissemination
    return LatencyBounds(
        silence=silence,
        dissemination=dissemination,
        notification=notification,
        view_update=notification + config.tm,
    )
