"""Analytical bounds for failure detection and membership latency.

Fig. 11 quotes CANELy's membership latency as "tens of ms". This module
derives the bound from the protocol structure so deployments can verify a
configuration *before* running it, and so the Fig. 11 benchmark can check
the measured latency against the bound:

* **silence bound** — a node may transmit a life-sign immediately before
  crashing; its silence is certain only ``Thb + Ttd`` later (the remote
  surveillance timeout of Fig. 8, line a04);
* **dissemination bound** — the FDA failure-sign plus its worst-case
  echoes and error recovery, at top bus priority;
* **notification** — ``fd-can.nty`` / ``msh-can.nty`` are local upcalls
  (no bus traffic).

The *view update* additionally waits for the next membership cycle
boundary (at most ``Tm``), which is the figure to compare against TTP's
slot-synchronous membership.

Alongside the analytic bounds, the ``measured_*`` queries read the same
latencies out of a finished run's trace. They go through
:meth:`~repro.sim.trace.TraceRecorder.category_columns`, the bulk column
accessor, so on a columnar trace (:data:`repro.sim.trace.COLUMNAR`) they
scan packed arrays without materializing one record object per entry —
the difference between a post-processing blip and a second full pass on a
200-node campaign trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.can.bitstream import (
    ERROR_DELIMITER_BITS,
    SUSPEND_TRANSMISSION_BITS,
    worst_case_frame_bits,
)
from repro.analysis.inaccessibility import SUPERPOSED_FLAG_BITS
from repro.core.config import CanelyConfig
from repro.sim.clock import SEC
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class LatencyBounds:
    """Worst-case latency decomposition, all in kernel ticks.

    Attributes:
        silence: crash-to-timer-expiry bound (``Thb + Ttd``).
        dissemination: FDA worst-case dissemination time.
        notification: crash-to-``msh-can.nty`` bound (failure notification
            at every correct node).
        view_update: crash-to-consistent-view bound (adds one membership
            cycle).
    """

    silence: int
    dissemination: int
    notification: int
    view_update: int


def fda_dissemination_bound(
    config: CanelyConfig, bit_rate: int = 1_000_000
) -> int:
    """Worst-case FDA dissemination time, in kernel ticks.

    The failure-sign travels at top bus priority; it can suffer at most
    ``j`` inconsistent omissions, each costing a frame plus the error
    signalling overhead, followed by the clustered echo round.
    """
    bit_ticks = SEC // bit_rate
    frame_bits = worst_case_frame_bits(0, extended=True)
    error_bits = (
        SUPERPOSED_FLAG_BITS + ERROR_DELIMITER_BITS + SUSPEND_TRANSMISSION_BITS
    )
    j = config.inconsistent_degree
    # Blocking by one in-flight maximum-length frame, then the sign and its
    # echo, plus j faulty attempts.
    blocking_bits = worst_case_frame_bits(8, extended=True)
    total_bits = blocking_bits + 2 * frame_bits + j * (frame_bits + error_bits)
    return total_bits * bit_ticks


def latency_bounds(
    config: CanelyConfig, bit_rate: int = 1_000_000
) -> LatencyBounds:
    """The full crash-to-consequence latency decomposition."""
    silence = config.thb + config.ttd
    dissemination = fda_dissemination_bound(config, bit_rate)
    notification = silence + dissemination
    return LatencyBounds(
        silence=silence,
        dissemination=dissemination,
        notification=notification,
        view_update=notification + config.tm,
    )


# -- measured latencies (trace queries) ---------------------------------------


def measured_crash_times(trace: TraceRecorder) -> Dict[int, int]:
    """First crash instant per node, from the ``node.crash`` records."""
    times, nodes, _payloads = trace.category_columns("node.crash")
    crash_times: Dict[int, int] = {}
    for index in range(len(times)):
        node = nodes[index]
        if node not in crash_times:
            crash_times[node] = times[index]
    return crash_times


def crash_notification_times(
    trace: TraceRecorder,
    crash_times: Optional[Dict[int, int]] = None,
) -> Dict[int, Dict[int, int]]:
    """First ``msh.change`` naming each crash, per observing node.

    Maps crashed node -> {observer -> time that observer's view first
    reported the crash}, in one pass over the ``msh.change`` columns
    (:meth:`~repro.sim.trace.TraceRecorder.category_columns`, so columnar
    traces answer from their backing arrays). A single change record
    whose ``failed`` set names several crashed nodes feeds every one of
    them — two crashes folded into the same membership cycle are both
    attributed to that one view change.

    This is the one crash-event extraction shared by
    :func:`measured_detection_latencies` and the QoS engine
    (:mod:`repro.obs.qos`); notifications predating the crash (a stale
    view change about an earlier incarnation) are ignored.
    """
    if crash_times is None:
        crash_times = measured_crash_times(trace)
    if not crash_times:
        return {}
    notifications: Dict[int, Dict[int, int]] = {
        node: {} for node in crash_times
    }
    times, observers, payloads = trace.category_columns("msh.change")
    crashed = list(crash_times.items())
    for index in range(len(times)):
        failed = payloads[index]["failed"]
        time = times[index]
        observer = observers[index]
        for node, crashed_at in crashed:
            if node in failed and time >= crashed_at:
                seen = notifications[node]
                if observer not in seen:
                    seen[observer] = time
    return notifications


def measured_detection_latencies(
    trace: TraceRecorder,
    crash_times: Optional[Dict[int, int]] = None,
) -> Dict[int, Optional[int]]:
    """Measured crash-to-view-change latency per crashed node, in ticks.

    ``crash_times`` maps node id -> crash instant; when omitted it is
    read from the trace's ``node.crash`` records. The result maps node
    id -> time from the crash to the first ``msh.change`` reporting the
    node failed, or ``None`` when the run ended unnotified. Built on
    :func:`crash_notification_times`, the shared one-pass extraction.
    """
    if crash_times is None:
        crash_times = measured_crash_times(trace)
    notifications = crash_notification_times(trace, crash_times)
    return {
        node: (
            min(notifications[node].values()) - crash_times[node]
            if notifications[node]
            else None
        )
        for node in crash_times
    }


def latency_bound_violations(
    trace: TraceRecorder,
    config: CanelyConfig,
    crash_times: Optional[Dict[int, int]] = None,
    bit_rate: int = 1_000_000,
) -> Dict[int, int]:
    """Crashed nodes whose measured view-update latency beats the bound.

    Maps node id -> measured latency for every node notified *later* than
    :func:`latency_bounds` allows. Empty on a conforming run — the check
    the Fig. 11 benchmark and the campaign acceptance gate both apply.
    Nodes never notified are not violations here (a run may simply end
    before its membership cycle closes); callers that require
    notification check for ``None`` latencies themselves.
    """
    bound = latency_bounds(config, bit_rate).view_update
    return {
        node: latency
        for node, latency in measured_detection_latencies(
            trace, crash_times
        ).items()
        if latency is not None and latency > bound
    }
