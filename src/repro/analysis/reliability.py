"""How often do inconsistent omissions actually happen?

Section 3 of the paper: "However infrequent they may be, the probability of
its occurrence is high enough to be taken into account for highly
fault-tolerant applications of CAN." The quantitative backing is in the
companion FTCS-28 paper [18], which estimates the rate of inconsistent
message omissions from the bit error rate. This module re-derives that
estimate so deployments can size the ``j`` bound:

* a frame suffers an *inconsistency-prone* fault when a bit error hits its
  critical trailing window (the last two bits of the end-of-frame field)
  at a proper subset of the receivers;
* with bit error probability ``ber`` per bit and independent per-receiver
  corruption, the per-frame probability is
  ``P = P(hit window) * P(subset split)``;
* at ``load`` frames per second, the expected rate follows.

For the classic example (1 Mbps, 90% load, ber 1e-6 — an aggressive
environment), the estimate lands in the "a few per hour" band that [18]
reports — infrequent, but *orders of magnitude* too frequent to ignore for
safety-critical systems targeting 1e-9/h failure rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.can.bitstream import worst_case_frame_bits
from repro.errors import ConfigurationError

#: Width of the inconsistency-critical trailing window (last two bits).
CRITICAL_WINDOW_BITS = 2


@dataclass(frozen=True)
class InconsistencyEstimate:
    """Expected inconsistent-omission exposure of one deployment.

    Attributes:
        per_frame_probability: chance one transmission turns inconsistent.
        per_hour: expected inconsistent omissions per hour.
        expected_j: suggested LCAN4 bound for a reference interval — the
            expected count over ``reference_seconds``, with a unit floor.
    """

    per_frame_probability: float
    per_hour: float
    expected_j: int


def subset_split_probability(receivers: int) -> float:
    """Probability that a window hit splits the receiver set.

    A hit produces an inconsistency only when *some but not all* receivers
    perceive the error. Modelling each receiver's perception of a marginal
    bus level as an independent coin flip, the split probability is
    ``1 - 2 * (1/2)^n`` for ``n`` receivers.
    """
    if receivers < 2:
        return 0.0
    return 1.0 - 2.0 * (0.5**receivers)


def inconsistent_omission_rate(
    ber: float,
    receivers: int,
    frames_per_second: float,
    frame_bits: int = None,
    reference_seconds: float = 1.0,
) -> InconsistencyEstimate:
    """Estimate the inconsistent-omission exposure of a deployment.

    Args:
        ber: bit error probability per transmitted bit.
        receivers: number of receiving nodes.
        frames_per_second: offered frame rate on the bus.
        frame_bits: frame length (defaults to the worst-case 8-byte
            standard frame — conservative for the window-hit term).
        reference_seconds: the interval the suggested ``j`` bound covers.
    """
    if not 0.0 <= ber < 1.0:
        raise ConfigurationError(f"ber must be a probability: {ber}")
    if frames_per_second < 0:
        raise ConfigurationError(
            f"frame rate must be non-negative: {frames_per_second}"
        )
    if reference_seconds <= 0:
        raise ConfigurationError(
            f"reference interval must be positive: {reference_seconds}"
        )
    if frame_bits is None:
        frame_bits = worst_case_frame_bits(8, extended=False)
    if frame_bits < CRITICAL_WINDOW_BITS:
        raise ConfigurationError(f"frame too short: {frame_bits}")

    window_hit = 1.0 - (1.0 - ber) ** CRITICAL_WINDOW_BITS
    per_frame = window_hit * subset_split_probability(receivers)
    per_second = per_frame * frames_per_second
    expected = per_second * reference_seconds
    return InconsistencyEstimate(
        per_frame_probability=per_frame,
        per_hour=per_second * 3600.0,
        expected_j=max(1, round(expected + 0.5)),
    )


def bus_frame_rate(
    bit_rate: int = 1_000_000, utilization: float = 0.9, frame_bits: int = None
) -> float:
    """Frames per second on a bus at the given utilization."""
    if not 0.0 <= utilization <= 1.0:
        raise ConfigurationError(f"utilization must be in [0, 1]: {utilization}")
    if bit_rate <= 0:
        raise ConfigurationError(f"bit rate must be positive: {bit_rate}")
    if frame_bits is None:
        frame_bits = worst_case_frame_bits(8, extended=False)
    return bit_rate * utilization / frame_bits
