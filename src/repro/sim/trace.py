"""Simulation trace recording.

Every layer appends typed records (category + payload dict) to a shared
:class:`TraceRecorder`. Tests and the MCAN/LCAN property monitors query the
trace after a run; benchmarks use it to account bandwidth; the online
invariant monitors of :mod:`repro.obs.monitors` subscribe as streaming
sinks and check properties *while* the run is in progress.

The recorder keeps per-category and per-node indexes alongside the record
list, so :meth:`TraceRecorder.select` and :meth:`TraceRecorder.count` cost
O(matches) and O(1) instead of a scan over the whole trace — the difference
between interactive and unusable on the 100k-record traces a long
membership campaign produces (see ``benchmarks/bench_trace_queries.py``).

Long campaigns that only need live monitoring can cap memory with
``TraceRecorder(capacity=...)``: the recorder becomes a ring buffer that
evicts the oldest records (indexes included) while sinks still observe
every record as it happens. Finished traces stream to disk with
:meth:`TraceRecorder.export_jsonl` or live through a :class:`JsonlSink`.
"""

from __future__ import annotations

import heapq
import json
from array import array
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)
from collections import deque

TraceSink = Callable[["TraceRecord"], None]

#: Compact the backing list once this much dead space accumulates in ring
#: mode (and the dead space dominates), keeping eviction amortized O(1).
_COMPACT_THRESHOLD = 1024

#: When True, ``TraceRecorder(...)`` constructs a
#: :class:`ColumnarTraceRecorder`: times / categories / nodes live in
#: packed ``array`` columns (category names interned to small ints) and a
#: :class:`TraceRecord` object only materializes when a record is actually
#: observed — by a query, an iteration or a sink. Recording skips the
#: per-record object allocation entirely, which is the dominant cost of a
#: fully traced large-membership run, and the retained trace is a fraction
#: of the row-mode footprint. Queries return identical records in
#: identical order, so fingerprint-style comparisons cannot tell the two
#: modes apart. Ring-buffer mode (``capacity=...``) keeps the row
#: recorder: columnar storage is append-only. Read at construction — like
#: :data:`repro.sim.timers.TIMER_WHEEL`, toggle before building a network.
COLUMNAR = False

#: Lines buffered per write by the columnar bulk export.
_EXPORT_BATCH = 512


class TraceRecord:
    """One trace entry. Treat as immutable once recorded.

    A slotted plain class rather than a frozen dataclass: recorders append
    thousands of these per simulated second, and the frozen-dataclass
    ``__init__`` (one ``object.__setattr__`` per field) is measurable at
    that rate.

    Attributes:
        time: simulation time of the event, in kernel ticks.
        category: dotted event kind, e.g. ``"bus.tx"`` or ``"msh.view"``.
        node: node identifier the record concerns (-1 for bus-global events).
        data: free-form payload.
    """

    __slots__ = ("time", "category", "node", "data")

    def __init__(
        self,
        time: int,
        category: str,
        node: int = -1,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.category = category
        self.node = node
        self.data = {} if data is None else data

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.node == other.node
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time}, category={self.category!r}, "
            f"node={self.node}, data={self.data!r})"
        )


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of a trace payload value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    try:
        # NodeSet and friends: iterable containers serialize as lists.
        return [_jsonable(item) for item in value]
    except TypeError:
        return repr(value)


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """A JSON-serializable projection of ``record``."""
    return {
        "time": record.time,
        "category": record.category,
        "node": record.node,
        "data": {key: _jsonable(value) for key, value in record.data.items()},
    }


class JsonlSink:
    """A streaming sink writing each record as one JSON line.

    Register with :meth:`TraceRecorder.add_sink`; pairs with ring-buffer
    mode for long campaigns: the in-memory trace stays bounded while the
    full history lands on disk.

    ``batch`` buffers that many encoded lines per file write: the default
    of 1 preserves the seed's record-at-a-time behaviour (each record is
    durable as soon as the sink returns), while bulk exports batch a few
    hundred lines per ``write`` and cut the syscall count by that factor.
    Buffered lines are flushed by :meth:`close` (and counted in
    ``records_written`` as soon as they are encoded).
    """

    def __init__(self, target: Union[str, IO[str]], batch: int = 1) -> None:
        if batch <= 0:
            raise ValueError(f"batch must be positive: {batch}")
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._batch = batch
        self._buffer: List[str] = []
        self.records_written = 0

    def __call__(self, record: TraceRecord) -> None:
        if self._batch == 1:
            self._handle.write(json.dumps(record_to_dict(record)) + "\n")
            self.records_written += 1
            return
        self._buffer.append(json.dumps(record_to_dict(record)))
        self.records_written += 1
        if len(self._buffer) >= self._batch:
            self._drain_buffer()

    def _drain_buffer(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def close(self) -> None:
        """Flush and close the underlying file (if this sink opened it)."""
        self._drain_buffer()
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TraceRecorder:
    """Append-only sequence of :class:`TraceRecord` with indexed queries."""

    def __new__(
        cls, enabled: bool = True, capacity: Optional[int] = None
    ) -> "TraceRecorder":
        # Storage-mode dispatch: with COLUMNAR set, a plain
        # ``TraceRecorder(...)`` builds the columnar recorder instead —
        # call sites (the kernel included) need no knowledge of the mode.
        # Ring-buffer traces stay on row storage (columns are append-only),
        # and explicit subclass constructions are honoured as written.
        if cls is TraceRecorder and COLUMNAR and capacity is None:
            return object.__new__(ColumnarTraceRecorder)
        return object.__new__(cls)

    def __init__(
        self, enabled: bool = True, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.enabled = enabled
        self._capacity = capacity
        self._disabled: set = set()
        # Records live in ``_records[_offset:]``; each carries an absolute,
        # ever-increasing sequence number so index entries stay valid across
        # ring-buffer evictions. Record seq -> list slot translation is
        # ``seq - _first_seq + _offset``.
        self._records: List[TraceRecord] = []
        self._offset = 0
        self._first_seq = 0
        self._next_seq = 0
        self._by_category: Dict[str, Deque[int]] = {}
        self._by_node: Dict[int, Deque[int]] = {}
        self._sinks: List[TraceSink] = []
        self._max_time = 0

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records) - self._offset

    def __iter__(self) -> Iterator[TraceRecord]:
        for slot in range(self._offset, len(self._records)):
            yield self._records[slot]

    @property
    def capacity(self) -> Optional[int]:
        """Ring-buffer size, or ``None`` for an unbounded trace."""
        return self._capacity

    @property
    def evicted(self) -> int:
        """Records dropped so far by the ring buffer."""
        return self._first_seq

    @property
    def last_time(self) -> int:
        """Largest record time seen so far (0 on an empty trace)."""
        return self._max_time

    # -- recording ---------------------------------------------------------------

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Stream every future record to ``sink`` (returns it for removal)."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Stop streaming to ``sink`` (missing sinks are ignored)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def wants(self, category: str) -> bool:
        """Cheap pre-check: would a record of ``category`` be retained?

        Hot paths guard their ``record(...)`` calls with this so a disabled
        recorder (or a disabled category) skips building the payload dict
        entirely — the kwargs dict is the dominant cost of a dropped record.
        """
        return self.enabled and category not in self._disabled

    def disable_categories(self, *categories: str) -> None:
        """Drop future records of the given exact categories."""
        self._disabled.update(categories)

    def enable_categories(self, *categories: str) -> None:
        """Re-enable categories previously disabled (missing ones ignored)."""
        self._disabled.difference_update(categories)

    @property
    def disabled_categories(self) -> frozenset:
        """The categories currently filtered out."""
        return frozenset(self._disabled)

    def record(
        self,
        time: int,
        category: str,
        node: int = -1,
        **data: Any,
    ) -> None:
        """Append a record (no-op while the recorder or category is off)."""
        if not self.enabled or category in self._disabled:
            return
        # Bypasses TraceRecord.__init__: this is the single hottest
        # allocation site in a traced run (one record per delivery per
        # node), and the extra constructor frame is measurable there.
        entry = TraceRecord.__new__(TraceRecord)
        entry.time = time
        entry.category = category
        entry.node = node
        entry.data = data
        seq = self._next_seq
        self._next_seq = seq + 1
        if time > self._max_time:
            self._max_time = time
        self._records.append(entry)
        by_category = self._by_category.get(category)
        if by_category is None:
            by_category = self._by_category[category] = deque()
        by_category.append(seq)
        by_node = self._by_node.get(node)
        if by_node is None:
            by_node = self._by_node[node] = deque()
        by_node.append(seq)
        if self._capacity is not None and len(self) > self._capacity:
            self._evict_oldest()
        if self._sinks:
            for sink in self._sinks:
                sink(entry)

    def record_row(
        self, time: int, category: str, node: int, data: Dict[str, Any]
    ) -> None:
        """Positional fast lane of :meth:`record` for prebuilt payloads.

        Semantics are identical to ``record(time, category, node,
        **data)`` except the payload dict is stored as given — no kwargs
        repack. The hottest sites (bus delivery fan-out) build one
        payload per frame and share it across that frame's records;
        recorded payloads are therefore treated as immutable, exactly as
        :meth:`record`'s kwargs dicts already are.
        """
        if not self.enabled or category in self._disabled:
            return
        entry = TraceRecord.__new__(TraceRecord)
        entry.time = time
        entry.category = category
        entry.node = node
        entry.data = data
        seq = self._next_seq
        self._next_seq = seq + 1
        if time > self._max_time:
            self._max_time = time
        self._records.append(entry)
        by_category = self._by_category.get(category)
        if by_category is None:
            by_category = self._by_category[category] = deque()
        by_category.append(seq)
        by_node = self._by_node.get(node)
        if by_node is None:
            by_node = self._by_node[node] = deque()
        by_node.append(seq)
        if self._capacity is not None and len(self) > self._capacity:
            self._evict_oldest()
        if self._sinks:
            for sink in self._sinks:
                sink(entry)

    def _evict_oldest(self) -> None:
        oldest = self._records[self._offset]
        seq = self._first_seq
        for index in (
            self._by_category[oldest.category],
            self._by_node[oldest.node],
        ):
            if index and index[0] == seq:
                index.popleft()
        self._offset += 1
        self._first_seq += 1
        if (
            self._offset > _COMPACT_THRESHOLD
            and self._offset * 2 > len(self._records)
        ):
            del self._records[: self._offset]
            self._offset = 0

    # -- queries -----------------------------------------------------------------

    def _get(self, seq: int) -> TraceRecord:
        return self._records[seq - self._first_seq + self._offset]

    def _candidate_seqs(
        self, category: Optional[str], node: Optional[int]
    ) -> Iterator[int]:
        """Sequence numbers to inspect, narrowed by the cheapest index."""
        if category is not None and not category.endswith("."):
            exact = self._by_category.get(category)
            if exact is None:
                return iter(())
            if node is not None:
                by_node = self._by_node.get(node)
                if by_node is None:
                    return iter(())
                return iter(exact if len(exact) <= len(by_node) else by_node)
            return iter(exact)
        if category is not None:
            # Prefix query: merge the per-category runs back into insertion
            # order. Distinct categories are few, so this stays O(matches).
            runs = [
                index
                for key, index in self._by_category.items()
                if key.startswith(category)
            ]
            if not runs:
                return iter(())
            if len(runs) == 1:
                return iter(runs[0])
            return heapq.merge(*runs)
        if node is not None:
            index = self._by_node.get(node)
            return iter(index) if index is not None else iter(())
        return iter(range(self._first_seq, self._next_seq))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Return records matching every given filter, in insertion order.

        ``category`` matches exactly, or as a prefix when it ends with
        ``"."`` (so ``select(category="bus.")`` returns all bus events).
        ``start``/``end`` bound the record time (inclusive). The category
        and node filters are answered from indexes, so the cost is
        proportional to the candidate matches, not the trace length.
        """
        prefix = category is not None and category.endswith(".")
        result = []
        for seq in self._candidate_seqs(category, node):
            record = self._get(seq)
            if prefix and not record.category.startswith(category):
                continue
            if not prefix and category is not None:
                if record.category != category:
                    continue
            if node is not None and record.node != node:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time > end:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(self, category: str) -> int:
        """Number of records with the given category (index lookup).

        A trailing ``"."`` counts the whole prefix, summing over the
        distinct matching categories.
        """
        if category.endswith("."):
            return sum(
                len(index)
                for key, index in self._by_category.items()
                if key.startswith(category)
            )
        index = self._by_category.get(category)
        return len(index) if index is not None else 0

    def categories(self) -> Dict[str, int]:
        """Record count per category, sorted by category name."""
        return {
            key: len(index)
            for key, index in sorted(self._by_category.items())
            if index
        }

    def window(self, start: int, end: int) -> List[TraceRecord]:
        """All records with ``start <= time <= end``, in insertion order.

        The slice the invariant monitors attach to a violation report.
        """
        return self.select(start=start, end=end)

    def category_columns(
        self, category: str
    ) -> Tuple["array", "array", List[Dict[str, Any]]]:
        """``(times, nodes, payloads)`` columns for one exact category.

        The storage-agnostic bulk accessor the analysis queries build on:
        times as an ``array('q')``, nodes as an ``array('i')``, payloads as
        a list of dicts, all in insertion order. On the row recorder the
        columns are gathered from the records; the columnar recorder
        answers straight from its backing arrays without materializing a
        single :class:`TraceRecord`.
        """
        records = self.select(category=category)
        return (
            array("q", (record.time for record in records)),
            array("i", (record.node for record in records)),
            [record.data for record in records],
        )

    # -- export ------------------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the retained records as JSON lines; returns the count."""
        sink = JsonlSink(target)
        try:
            for record in self:
                sink(record)
        finally:
            sink.close()
        return sink.records_written

    def clear(self) -> None:
        """Drop all records and indexes (sinks stay registered)."""
        self._records.clear()
        self._offset = 0
        self._first_seq = self._next_seq
        self._by_category.clear()
        self._by_node.clear()
        self._max_time = 0


class ColumnarTraceRecorder(TraceRecorder):
    """Array-backed trace storage: columns instead of record objects.

    Times, interned category ids and node ids live in packed ``array``
    columns; only the free-form payload dicts stay as Python objects.
    Recording is four C-level appends plus one dict lookup — no
    :class:`TraceRecord` allocation — and records materialize lazily,
    only when something actually looks at them (a query, an iteration,
    a registered sink). Row indexes for category/node queries are built
    lazily on the first query and extended incrementally, so a run that
    never queries its trace pays nothing for them.

    Selected by the module-level :data:`COLUMNAR` toggle (see there for
    the equivalence contract); behaviour-identical to the row recorder
    for every query, in record values and order alike.
    """

    def __init__(
        self, enabled: bool = True, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None:
            raise ValueError(
                "columnar storage is append-only: ring-buffer capacity "
                "requires the row recorder"
            )
        super().__init__(enabled=enabled, capacity=None)
        self._times = array("q")
        self._cats = array("i")
        self._nodes = array("i")
        self._payloads: List[Dict[str, Any]] = []
        #: Category interning: name -> small int and back.
        self._cat_of: Dict[str, int] = {}
        self._cat_names: List[str] = []
        # Bound appends: the record() below runs once per trace record,
        # which at full tracing is once per delivery per node.
        self._t_append = self._times.append
        self._c_append = self._cats.append
        self._n_append = self._nodes.append
        self._p_append = self._payloads.append
        #: Lazy row indexes (category id / node -> array of row numbers),
        #: valid for rows ``< _indexed_rows``.
        self._cat_rows: Dict[int, "array"] = {}
        self._node_rows: Dict[int, "array"] = {}
        self._indexed_rows = 0

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[TraceRecord]:
        for row in range(len(self._times)):
            yield self._materialize(row)

    def _materialize(self, row: int) -> TraceRecord:
        entry = TraceRecord.__new__(TraceRecord)
        entry.time = self._times[row]
        entry.category = self._cat_names[self._cats[row]]
        entry.node = self._nodes[row]
        entry.data = self._payloads[row]
        return entry

    # -- recording ------------------------------------------------------------

    def record(
        self,
        time: int,
        category: str,
        node: int = -1,
        **data: Any,
    ) -> None:
        """Append a record (no-op while the recorder or category is off)."""
        if not self.enabled or category in self._disabled:
            return
        cat_id = self._cat_of.get(category)
        if cat_id is None:
            cat_id = self._cat_of[category] = len(self._cat_names)
            self._cat_names.append(category)
        self._t_append(time)
        self._c_append(cat_id)
        self._n_append(node)
        self._p_append(data)
        if time > self._max_time:
            self._max_time = time
        if self._sinks:
            # Sinks observe real records: materialize once, share the
            # payload dict exactly as the row recorder does.
            entry = TraceRecord.__new__(TraceRecord)
            entry.time = time
            entry.category = category
            entry.node = node
            entry.data = data
            for sink in self._sinks:
                sink(entry)

    def record_row(
        self, time: int, category: str, node: int, data: Dict[str, Any]
    ) -> None:
        """Positional fast lane of :meth:`record` (see the row recorder)."""
        if not self.enabled or category in self._disabled:
            return
        cat_id = self._cat_of.get(category)
        if cat_id is None:
            cat_id = self._cat_of[category] = len(self._cat_names)
            self._cat_names.append(category)
        self._t_append(time)
        self._c_append(cat_id)
        self._n_append(node)
        self._p_append(data)
        if time > self._max_time:
            self._max_time = time
        if self._sinks:
            entry = TraceRecord.__new__(TraceRecord)
            entry.time = time
            entry.category = category
            entry.node = node
            entry.data = data
            for sink in self._sinks:
                sink(entry)

    # -- queries --------------------------------------------------------------

    def _ensure_indexes(self) -> None:
        start = self._indexed_rows
        total = len(self._times)
        if start == total:
            return
        cats = self._cats
        nodes = self._nodes
        cat_rows = self._cat_rows
        node_rows = self._node_rows
        for row in range(start, total):
            cid = cats[row]
            bucket = cat_rows.get(cid)
            if bucket is None:
                bucket = cat_rows[cid] = array("q")
            bucket.append(row)
            nid = nodes[row]
            bucket = node_rows.get(nid)
            if bucket is None:
                bucket = node_rows[nid] = array("q")
            bucket.append(row)
        self._indexed_rows = total

    def _candidate_rows(
        self, category: Optional[str], node: Optional[int]
    ) -> Iterator[int]:
        """Row numbers to inspect, narrowed by the cheapest index."""
        self._ensure_indexes()
        if category is not None and not category.endswith("."):
            cid = self._cat_of.get(category)
            exact = self._cat_rows.get(cid) if cid is not None else None
            if exact is None:
                return iter(())
            if node is not None:
                by_node = self._node_rows.get(node)
                if by_node is None:
                    return iter(())
                return iter(exact if len(exact) <= len(by_node) else by_node)
            return iter(exact)
        if category is not None:
            runs = [
                self._cat_rows[cid]
                for name, cid in self._cat_of.items()
                if name.startswith(category) and cid in self._cat_rows
            ]
            if not runs:
                return iter(())
            if len(runs) == 1:
                return iter(runs[0])
            return heapq.merge(*runs)
        if node is not None:
            index = self._node_rows.get(node)
            return iter(index) if index is not None else iter(())
        return iter(range(len(self._times)))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Column-native filtering; records materialize only on a match."""
        prefix = category is not None and category.endswith(".")
        want_cid: Optional[int] = None
        if category is not None and not prefix:
            want_cid = self._cat_of.get(category)
            if want_cid is None:
                return []
        times = self._times
        cats = self._cats
        nodes = self._nodes
        names = self._cat_names
        result = []
        for row in self._candidate_rows(category, node):
            if want_cid is not None and cats[row] != want_cid:
                continue
            if prefix and not names[cats[row]].startswith(category):
                continue
            if node is not None and nodes[row] != node:
                continue
            time = times[row]
            if start is not None and time < start:
                continue
            if end is not None and time > end:
                continue
            record = self._materialize(row)
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(self, category: str) -> int:
        """C-speed column scan — no index required."""
        if category.endswith("."):
            return sum(
                self._cats.count(cid)
                for name, cid in self._cat_of.items()
                if name.startswith(category)
            )
        cid = self._cat_of.get(category)
        return 0 if cid is None else self._cats.count(cid)

    def categories(self) -> Dict[str, int]:
        """Record count per category, sorted by category name."""
        self._ensure_indexes()
        counts = {
            name: len(self._cat_rows[cid])
            for name, cid in sorted(self._cat_of.items())
            if cid in self._cat_rows
        }
        return {name: count for name, count in counts.items() if count}

    def category_columns(
        self, category: str
    ) -> Tuple["array", "array", List[Dict[str, Any]]]:
        """``(times, nodes, payloads)`` straight off the backing arrays."""
        self._ensure_indexes()
        cid = self._cat_of.get(category)
        rows = self._cat_rows.get(cid) if cid is not None else None
        if not rows:
            return array("q"), array("i"), []
        times = self._times
        nodes = self._nodes
        payloads = self._payloads
        return (
            array("q", (times[row] for row in rows)),
            array("i", (nodes[row] for row in rows)),
            [payloads[row] for row in rows],
        )

    # -- export ---------------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Batched bulk export: a few hundred lines per file write."""
        sink = JsonlSink(target, batch=_EXPORT_BATCH)
        try:
            for record in self:
                sink(record)
        finally:
            sink.close()
        return sink.records_written

    def clear(self) -> None:
        """Drop all records and indexes (sinks and interning stay)."""
        del self._times[:]
        del self._cats[:]
        del self._nodes[:]
        self._payloads.clear()
        self._cat_rows.clear()
        self._node_rows.clear()
        self._indexed_rows = 0
        self._max_time = 0
