"""Simulation trace recording.

Every layer appends typed records (category + payload dict) to a shared
:class:`TraceRecorder`. Tests and the MCAN/LCAN property monitors query the
trace after a run; benchmarks use it to account bandwidth; the online
invariant monitors of :mod:`repro.obs.monitors` subscribe as streaming
sinks and check properties *while* the run is in progress.

The recorder keeps per-category and per-node indexes alongside the record
list, so :meth:`TraceRecorder.select` and :meth:`TraceRecorder.count` cost
O(matches) and O(1) instead of a scan over the whole trace — the difference
between interactive and unusable on the 100k-record traces a long
membership campaign produces (see ``benchmarks/bench_trace_queries.py``).

Long campaigns that only need live monitoring can cap memory with
``TraceRecorder(capacity=...)``: the recorder becomes a ring buffer that
evicts the oldest records (indexes included) while sinks still observe
every record as it happens. Finished traces stream to disk with
:meth:`TraceRecorder.export_jsonl` or live through a :class:`JsonlSink`.
"""

from __future__ import annotations

import heapq
import json
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Union,
)
from collections import deque

TraceSink = Callable[["TraceRecord"], None]

#: Compact the backing list once this much dead space accumulates in ring
#: mode (and the dead space dominates), keeping eviction amortized O(1).
_COMPACT_THRESHOLD = 1024


class TraceRecord:
    """One trace entry. Treat as immutable once recorded.

    A slotted plain class rather than a frozen dataclass: recorders append
    thousands of these per simulated second, and the frozen-dataclass
    ``__init__`` (one ``object.__setattr__`` per field) is measurable at
    that rate.

    Attributes:
        time: simulation time of the event, in kernel ticks.
        category: dotted event kind, e.g. ``"bus.tx"`` or ``"msh.view"``.
        node: node identifier the record concerns (-1 for bus-global events).
        data: free-form payload.
    """

    __slots__ = ("time", "category", "node", "data")

    def __init__(
        self,
        time: int,
        category: str,
        node: int = -1,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.category = category
        self.node = node
        self.data = {} if data is None else data

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.node == other.node
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time}, category={self.category!r}, "
            f"node={self.node}, data={self.data!r})"
        )


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of a trace payload value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    try:
        # NodeSet and friends: iterable containers serialize as lists.
        return [_jsonable(item) for item in value]
    except TypeError:
        return repr(value)


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """A JSON-serializable projection of ``record``."""
    return {
        "time": record.time,
        "category": record.category,
        "node": record.node,
        "data": {key: _jsonable(value) for key, value in record.data.items()},
    }


class JsonlSink:
    """A streaming sink writing each record as one JSON line.

    Register with :meth:`TraceRecorder.add_sink`; pairs with ring-buffer
    mode for long campaigns: the in-memory trace stays bounded while the
    full history lands on disk.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.records_written = 0

    def __call__(self, record: TraceRecord) -> None:
        self._handle.write(json.dumps(record_to_dict(record)) + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (if this sink opened it)."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TraceRecorder:
    """Append-only sequence of :class:`TraceRecord` with indexed queries."""

    def __init__(
        self, enabled: bool = True, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.enabled = enabled
        self._capacity = capacity
        self._disabled: set = set()
        # Records live in ``_records[_offset:]``; each carries an absolute,
        # ever-increasing sequence number so index entries stay valid across
        # ring-buffer evictions. Record seq -> list slot translation is
        # ``seq - _first_seq + _offset``.
        self._records: List[TraceRecord] = []
        self._offset = 0
        self._first_seq = 0
        self._next_seq = 0
        self._by_category: Dict[str, Deque[int]] = {}
        self._by_node: Dict[int, Deque[int]] = {}
        self._sinks: List[TraceSink] = []
        self._max_time = 0

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records) - self._offset

    def __iter__(self) -> Iterator[TraceRecord]:
        for slot in range(self._offset, len(self._records)):
            yield self._records[slot]

    @property
    def capacity(self) -> Optional[int]:
        """Ring-buffer size, or ``None`` for an unbounded trace."""
        return self._capacity

    @property
    def evicted(self) -> int:
        """Records dropped so far by the ring buffer."""
        return self._first_seq

    @property
    def last_time(self) -> int:
        """Largest record time seen so far (0 on an empty trace)."""
        return self._max_time

    # -- recording ---------------------------------------------------------------

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Stream every future record to ``sink`` (returns it for removal)."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Stop streaming to ``sink`` (missing sinks are ignored)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def wants(self, category: str) -> bool:
        """Cheap pre-check: would a record of ``category`` be retained?

        Hot paths guard their ``record(...)`` calls with this so a disabled
        recorder (or a disabled category) skips building the payload dict
        entirely — the kwargs dict is the dominant cost of a dropped record.
        """
        return self.enabled and category not in self._disabled

    def disable_categories(self, *categories: str) -> None:
        """Drop future records of the given exact categories."""
        self._disabled.update(categories)

    def enable_categories(self, *categories: str) -> None:
        """Re-enable categories previously disabled (missing ones ignored)."""
        self._disabled.difference_update(categories)

    @property
    def disabled_categories(self) -> frozenset:
        """The categories currently filtered out."""
        return frozenset(self._disabled)

    def record(
        self,
        time: int,
        category: str,
        node: int = -1,
        **data: Any,
    ) -> None:
        """Append a record (no-op while the recorder or category is off)."""
        if not self.enabled or category in self._disabled:
            return
        # Bypasses TraceRecord.__init__: this is the single hottest
        # allocation site in a traced run (one record per delivery per
        # node), and the extra constructor frame is measurable there.
        entry = TraceRecord.__new__(TraceRecord)
        entry.time = time
        entry.category = category
        entry.node = node
        entry.data = data
        seq = self._next_seq
        self._next_seq = seq + 1
        if time > self._max_time:
            self._max_time = time
        self._records.append(entry)
        by_category = self._by_category.get(category)
        if by_category is None:
            by_category = self._by_category[category] = deque()
        by_category.append(seq)
        by_node = self._by_node.get(node)
        if by_node is None:
            by_node = self._by_node[node] = deque()
        by_node.append(seq)
        if self._capacity is not None and len(self) > self._capacity:
            self._evict_oldest()
        if self._sinks:
            for sink in self._sinks:
                sink(entry)

    def _evict_oldest(self) -> None:
        oldest = self._records[self._offset]
        seq = self._first_seq
        for index in (
            self._by_category[oldest.category],
            self._by_node[oldest.node],
        ):
            if index and index[0] == seq:
                index.popleft()
        self._offset += 1
        self._first_seq += 1
        if (
            self._offset > _COMPACT_THRESHOLD
            and self._offset * 2 > len(self._records)
        ):
            del self._records[: self._offset]
            self._offset = 0

    # -- queries -----------------------------------------------------------------

    def _get(self, seq: int) -> TraceRecord:
        return self._records[seq - self._first_seq + self._offset]

    def _candidate_seqs(
        self, category: Optional[str], node: Optional[int]
    ) -> Iterator[int]:
        """Sequence numbers to inspect, narrowed by the cheapest index."""
        if category is not None and not category.endswith("."):
            exact = self._by_category.get(category)
            if exact is None:
                return iter(())
            if node is not None:
                by_node = self._by_node.get(node)
                if by_node is None:
                    return iter(())
                return iter(exact if len(exact) <= len(by_node) else by_node)
            return iter(exact)
        if category is not None:
            # Prefix query: merge the per-category runs back into insertion
            # order. Distinct categories are few, so this stays O(matches).
            runs = [
                index
                for key, index in self._by_category.items()
                if key.startswith(category)
            ]
            if not runs:
                return iter(())
            if len(runs) == 1:
                return iter(runs[0])
            return heapq.merge(*runs)
        if node is not None:
            index = self._by_node.get(node)
            return iter(index) if index is not None else iter(())
        return iter(range(self._first_seq, self._next_seq))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Return records matching every given filter, in insertion order.

        ``category`` matches exactly, or as a prefix when it ends with
        ``"."`` (so ``select(category="bus.")`` returns all bus events).
        ``start``/``end`` bound the record time (inclusive). The category
        and node filters are answered from indexes, so the cost is
        proportional to the candidate matches, not the trace length.
        """
        prefix = category is not None and category.endswith(".")
        result = []
        for seq in self._candidate_seqs(category, node):
            record = self._get(seq)
            if prefix and not record.category.startswith(category):
                continue
            if not prefix and category is not None:
                if record.category != category:
                    continue
            if node is not None and record.node != node:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time > end:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(self, category: str) -> int:
        """Number of records with the given category (index lookup).

        A trailing ``"."`` counts the whole prefix, summing over the
        distinct matching categories.
        """
        if category.endswith("."):
            return sum(
                len(index)
                for key, index in self._by_category.items()
                if key.startswith(category)
            )
        index = self._by_category.get(category)
        return len(index) if index is not None else 0

    def categories(self) -> Dict[str, int]:
        """Record count per category, sorted by category name."""
        return {
            key: len(index)
            for key, index in sorted(self._by_category.items())
            if index
        }

    def window(self, start: int, end: int) -> List[TraceRecord]:
        """All records with ``start <= time <= end``, in insertion order.

        The slice the invariant monitors attach to a violation report.
        """
        return self.select(start=start, end=end)

    # -- export ------------------------------------------------------------------

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the retained records as JSON lines; returns the count."""
        sink = JsonlSink(target)
        try:
            for record in self:
                sink(record)
        finally:
            sink.close()
        return sink.records_written

    def clear(self) -> None:
        """Drop all records and indexes (sinks stay registered)."""
        self._records.clear()
        self._offset = 0
        self._first_seq = self._next_seq
        self._by_category.clear()
        self._by_node.clear()
        self._max_time = 0
