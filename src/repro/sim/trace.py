"""Simulation trace recording.

Every layer appends typed records (category + payload dict) to a shared
:class:`TraceRecorder`. Tests and the MCAN/LCAN property monitors query the
trace after a run; benchmarks use it to account bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: simulation time of the event, in kernel ticks.
        category: dotted event kind, e.g. ``"bus.tx"`` or ``"msh.view"``.
        node: node identifier the record concerns (-1 for bus-global events).
        data: free-form payload.
    """

    time: int
    category: str
    node: int
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only list of :class:`TraceRecord` with query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(
        self,
        time: int,
        category: str,
        node: int = -1,
        **data: Any,
    ) -> None:
        """Append a record (no-op while the recorder is disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, category, node, data))

    def select(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching every given filter.

        ``category`` matches exactly, or as a prefix when it ends with
        ``"."`` (so ``select(category="bus.")`` returns all bus events).
        """
        result = []
        for record in self._records:
            if category is not None:
                if category.endswith("."):
                    if not record.category.startswith(category):
                        continue
                elif record.category != category:
                    continue
            if node is not None and record.node != node:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(self, category: str) -> int:
        """Number of records with the exact given category."""
        return len(self.select(category=category))

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
