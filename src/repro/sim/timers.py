"""Timer service exposing the ``start_alarm`` / ``cancel_alarm`` idiom.

The CANELy pseudocode (Figs. 7-9 of the paper) manipulates timers through
``tid := start_alarm(duration)`` and ``cancel_alarm(tid)``; expiry fires a
``when alarm(tid) expires`` clause. :class:`TimerService` reproduces exactly
that interface on top of the simulator.

:meth:`TimerService.restart_alarm` is the hot-path companion: surveillance
timers are cancelled and re-armed on *every* observed frame, and the
restart defers the alarm's kernel event in place (O(1) field updates, no
cancel/allocate/heappush churn) whenever the queue supports it — ordering
stays bit-identical to cancel-and-start because the kernel allocates a
fresh sequence number either way. Toggle :data:`FAST_REARM` off to force
the seed-faithful cancel-and-start path for A/B equivalence runs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.sim.event import Event
from repro.sim.kernel import Simulator

#: Default for the in-place alarm restart fast path; read at every restart
#: so tests can toggle it on a live module.
FAST_REARM = True

#: When True, new :class:`TimerService` instances file their alarms on the
#: simulator's shared hierarchical timer wheel (:mod:`repro.sim.wheel`)
#: instead of scheduling one kernel event per alarm: start, cancel and
#: restart become O(1) regardless of how many alarms are live, and the
#: kernel heap holds a single wheel cursor instead of one entry per alarm.
#: Off by default — the heap path is the seed-faithful reference, pinned
#: bit-identical by the golden-trace equivalence tests; the wheel is
#: outcome-equivalent (same alarms fire at the same simulated instants)
#: but interleaves kernel bookkeeping differently. Read at service
#: construction, so toggle it *before* building a network.
TIMER_WHEEL = False


class Alarm:
    """Handle for a pending alarm (the ``tid`` of the pseudocode).

    The handle itself carries the armed/fired state and the expiry
    callback: arming an alarm costs one object and one scheduled event,
    with no per-alarm closure and no registry bookkeeping. Surveillance
    timers restart on every observed frame, so this path is one of the
    hottest in the whole simulation.
    """

    __slots__ = (
        "alarm_id",
        "deadline",
        "_event",
        "_on_expire",
        "_service",
        "_active",
        "_span",
        # Wheel-backed alarms: intrusive bucket links + arm-order seq
        # (initialized only when the owning service uses the wheel).
        "_wbucket",
        "_wprev",
        "_wnext",
        "_wseq",
    )

    def __init__(
        self,
        alarm_id: int,
        deadline: int,
        on_expire: Callable[[], None],
        service: "TimerService",
    ) -> None:
        self.alarm_id = alarm_id
        self.deadline = deadline
        self._event: Optional[Event] = None
        self._on_expire = on_expire
        self._service = service
        self._active = True
        self._span: Optional[int] = None

    def _fire(self) -> None:
        # Cancelled events never reach here; just retire and deliver.
        self._active = False
        self._service._pending -= 1
        if self._span is None:
            self._on_expire()
            return
        # The timer span ends at expiry; everything the callback triggers
        # (failure-sign requests, membership cycles, ...) is causally *its*
        # consequence, so the span stays pushed as context around the call.
        spans = self._service._spans
        spans.end(self._span, outcome="fired")
        spans.push(self._span)
        try:
            self._on_expire()
        finally:
            spans.pop()

    def __repr__(self) -> str:
        return f"Alarm(id={self.alarm_id}, deadline={self.deadline})"


class TimerService:
    """Per-node alarm manager backed by a :class:`Simulator`.

    ``drift`` models the node's oscillator deviation: every armed duration
    is stretched by ``(1 + drift)`` — e.g. ``drift=1e-4`` (100 ppm) makes a
    10 ms alarm fire 1 µs late. Protocol timers in real CANELy nodes run on
    exactly such imperfect clocks; the integration tests assert the suite
    tolerates realistic drifts.
    """

    def __init__(self, sim: Simulator, drift: float = 0.0, node: int = -1) -> None:
        if drift <= -1.0:
            raise ValueError(f"drift must exceed -1: {drift}")
        self._sim = sim
        self._drift = drift
        self._ids = itertools.count(1)
        self._pending = 0
        self._node = node
        self._spans = sim.spans
        # The queue's reschedule capability is fixed for the simulator's
        # lifetime; resolving it here keeps the per-frame restart below
        # free of getattr probes.
        self._can_reschedule = getattr(
            sim._queue, "SUPPORTS_RESCHEDULE", False
        )
        #: The simulator-wide hierarchical wheel, or ``None`` on the
        #: seed-faithful per-alarm-event heap path. Resolved once at
        #: construction (module toggle), like the reschedule capability.
        self._wheel = sim.timer_wheel() if TIMER_WHEEL else None
        #: True when :meth:`restart_alarm`'s heap fast path needs no
        #: duration stretch: reschedulable queue, no wheel, zero drift.
        #: Hot callers (the failure detector's activity clause) use this
        #: to inline the rearm down to the queue's in-place reschedule.
        self._rearm_plain = (
            self._can_reschedule and self._wheel is None and drift == 0.0
        )

    @property
    def drift(self) -> float:
        """The oscillator deviation applied to every duration."""
        return self._drift

    @property
    def sim(self) -> Simulator:
        """The simulator this service schedules on."""
        return self._sim

    def start_alarm(
        self,
        duration: int,
        on_expire: Callable[[], None],
        name: str = "timer",
        tag: Optional[int] = None,
    ) -> Alarm:
        """Arm an alarm ``duration`` ticks from now; returns its handle.

        A zero-duration alarm fires at the current instant regardless of
        drift — drift stretches a *duration*, and a zero duration has
        nothing to stretch. Negative durations are a caller bug.

        ``name``/``tag`` label the alarm's causal span (e.g. the
        ``"fd.surveillance"`` span of the timer watching node ``tag``);
        they are ignored while span tracing is disabled.
        """
        duration = self._stretch(duration)
        alarm = Alarm(next(self._ids), self._sim.now + duration, on_expire, self)
        wheel = self._wheel
        if wheel is None:
            alarm._event = self._sim.schedule(duration, alarm._fire)
        else:
            alarm._wbucket = None
            alarm._wprev = None
            alarm._wnext = None
            alarm._wseq = 0
            wheel.insert(alarm, alarm.deadline)
        self._pending += 1
        if self._spans.enabled:
            if tag is None:
                alarm._span = self._spans.begin(name, "timers", node=self._node)
            else:
                alarm._span = self._spans.begin(
                    name, "timers", node=self._node, tag=tag
                )
        return alarm

    def _stretch(self, duration: int) -> int:
        if duration < 0:
            raise ValueError(f"alarm duration must be non-negative: {duration}")
        if self._drift and duration:
            # A nonzero duration never rounds below one tick: an alarm that
            # was armed to fire strictly later must not fire immediately
            # just because the oscillator runs fast.
            duration = max(1, round(duration * (1.0 + self._drift)))
        return duration

    def restart_alarm(self, alarm: Optional[Alarm], duration: int) -> bool:
        """Re-arm ``alarm`` to expire ``duration`` ticks from now, in place.

        The cancel-and-start idiom collapsed into O(1) field updates: the
        alarm keeps its handle, callback and span-free identity, and its
        kernel event is deferred without leaving a dead heap entry behind.
        Returns False — and touches nothing — when the fast path cannot
        apply (alarm inactive or ``None``, span tracing active, the
        seed-faithful legacy queue, or a deadline that would move
        *earlier*); the caller then falls back to
        :meth:`cancel_alarm` + :meth:`start_alarm`, which is exactly
        equivalent. Either path consumes one event sequence number, so
        simulated outcomes are bit-identical.
        """
        wheel = self._wheel
        if wheel is not None:
            # Wheel-backed restart: unlink + relink, O(1) in the number of
            # live alarms. Span-traced alarms fall back to cancel-and-start
            # so every arming keeps its own causal span, as on the heap
            # path.
            if (
                alarm is None
                or not alarm._active
                or alarm._span is not None
                or self._spans.enabled
            ):
                return False
            if duration < 0:
                raise ValueError(
                    f"alarm duration must be non-negative: {duration}"
                )
            if self._drift and duration:
                duration = max(1, round(duration * (1.0 + self._drift)))
            wheel.restart(alarm, self._sim._now + duration)
            return True
        if (
            not self._can_reschedule
            or not FAST_REARM
            or alarm is None
            or not alarm._active
            or alarm._span is not None
            or self._spans.enabled
        ):
            return False
        # Inlined ``_stretch`` + ``Simulator.try_reschedule``: this runs
        # once per observed frame per monitored node, and the call layers
        # are measurable at that rate. Semantics match the kernel method
        # exactly (``duration >= 0`` already implies the new deadline is
        # not in the past).
        if duration < 0:
            raise ValueError(f"alarm duration must be non-negative: {duration}")
        if self._drift and duration:
            duration = max(1, round(duration * (1.0 + self._drift)))
        sim = self._sim
        event = alarm._event
        queue = sim._queue
        if event._queue is not queue or event.cancelled:
            return False
        deadline = sim._now + duration
        if deadline < event.time:
            return False
        queue.reschedule(event, deadline)
        alarm.deadline = deadline
        return True

    def cancel_alarm(self, alarm: Optional[Alarm]) -> None:
        """Disarm ``alarm``. Cancelling ``None`` or a fired alarm is a no-op."""
        if alarm is None or not alarm._active:
            return
        alarm._active = False
        service = alarm._service
        service._pending -= 1
        if alarm._event is not None:
            alarm._event.cancel()
        else:
            service._wheel.remove(alarm)
        if alarm._span is not None:
            service._spans.end(alarm._span, outcome="cancelled")

    def is_pending(self, alarm: Optional[Alarm]) -> bool:
        """True while ``alarm`` is armed and has not yet fired."""
        return alarm is not None and alarm._active

    @property
    def pending_count(self) -> int:
        """Number of currently armed alarms."""
        return self._pending
