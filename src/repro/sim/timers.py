"""Timer service exposing the ``start_alarm`` / ``cancel_alarm`` idiom.

The CANELy pseudocode (Figs. 7-9 of the paper) manipulates timers through
``tid := start_alarm(duration)`` and ``cancel_alarm(tid)``; expiry fires a
``when alarm(tid) expires`` clause. :class:`TimerService` reproduces exactly
that interface on top of the simulator.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from repro.sim.event import Event
from repro.sim.kernel import Simulator


class Alarm:
    """Handle for a pending alarm (the ``tid`` of the pseudocode)."""

    __slots__ = ("alarm_id", "deadline", "_event")

    def __init__(self, alarm_id: int, deadline: int, event: Event) -> None:
        self.alarm_id = alarm_id
        self.deadline = deadline
        self._event = event

    def __repr__(self) -> str:
        return f"Alarm(id={self.alarm_id}, deadline={self.deadline})"


class TimerService:
    """Per-node alarm manager backed by a :class:`Simulator`.

    ``drift`` models the node's oscillator deviation: every armed duration
    is stretched by ``(1 + drift)`` — e.g. ``drift=1e-4`` (100 ppm) makes a
    10 ms alarm fire 1 µs late. Protocol timers in real CANELy nodes run on
    exactly such imperfect clocks; the integration tests assert the suite
    tolerates realistic drifts.
    """

    def __init__(self, sim: Simulator, drift: float = 0.0) -> None:
        if drift <= -1.0:
            raise ValueError(f"drift must exceed -1: {drift}")
        self._sim = sim
        self._drift = drift
        self._ids = itertools.count(1)
        self._pending: Dict[int, Alarm] = {}

    @property
    def drift(self) -> float:
        """The oscillator deviation applied to every duration."""
        return self._drift

    @property
    def sim(self) -> Simulator:
        """The simulator this service schedules on."""
        return self._sim

    def start_alarm(
        self,
        duration: int,
        on_expire: Callable[[], None],
    ) -> Alarm:
        """Arm an alarm ``duration`` ticks from now; returns its handle.

        A zero-duration alarm fires at the current instant regardless of
        drift — drift stretches a *duration*, and a zero duration has
        nothing to stretch. Negative durations are a caller bug.
        """
        if duration < 0:
            raise ValueError(f"alarm duration must be non-negative: {duration}")
        if self._drift and duration:
            # A nonzero duration never rounds below one tick: an alarm that
            # was armed to fire strictly later must not fire immediately
            # just because the oscillator runs fast.
            duration = max(1, round(duration * (1.0 + self._drift)))
        alarm_id = next(self._ids)

        def fire() -> None:
            # The alarm may have been cancelled between scheduling and firing;
            # cancelled events never reach here, so just forget and deliver.
            self._pending.pop(alarm_id, None)
            on_expire()

        event = self._sim.schedule(duration, fire)
        alarm = Alarm(alarm_id, self._sim.now + duration, event)
        self._pending[alarm_id] = alarm
        return alarm

    def cancel_alarm(self, alarm: Optional[Alarm]) -> None:
        """Disarm ``alarm``. Cancelling ``None`` or a fired alarm is a no-op."""
        if alarm is None:
            return
        if self._pending.pop(alarm.alarm_id, None) is not None:
            alarm._event.cancel()

    def is_pending(self, alarm: Optional[Alarm]) -> bool:
        """True while ``alarm`` is armed and has not yet fired."""
        return alarm is not None and alarm.alarm_id in self._pending

    @property
    def pending_count(self) -> int:
        """Number of currently armed alarms."""
        return len(self._pending)
