"""Generator-based processes for the simulation kernel.

Scenario code often reads better as a sequential script than as a web of
callbacks. A *process* is a generator that yields the events it waits for:

    def operator(env):
        yield env.timeout(ms(100))
        net.node(3).leave()
        yield env.timeout(ms(200))
        net.node(3).join()

    spawn(sim, operator)

Supported yields:

* ``env.timeout(duration)`` — resume after ``duration`` ticks;
* ``env.until(lambda: condition)`` — resume once the condition holds,
  polled every ``poll`` ticks;
* another process handle (from ``env.spawn``) — resume when it finishes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator


class _Timeout:
    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ConfigurationError(f"negative timeout: {duration}")
        self.duration = duration


class _Until:
    __slots__ = ("predicate", "poll")

    def __init__(self, predicate: Callable[[], bool], poll: int) -> None:
        if poll <= 0:
            raise ConfigurationError(f"poll interval must be positive: {poll}")
        self.predicate = predicate
        self.poll = poll


class ProcessHandle:
    """A running process; yield it from another process to join on it."""

    def __init__(self, env: "ProcessEnv", generator: Generator) -> None:
        self._env = env
        self._generator = generator
        self.finished = False
        self._waiters: List["ProcessHandle"] = []

    def _step(self) -> None:
        if self.finished:
            return
        try:
            waited = next(self._generator)
        except StopIteration:
            self._finish()
            return
        self._arm(waited)

    def _arm(self, waited) -> None:
        sim = self._env.sim
        if isinstance(waited, _Timeout):
            sim.schedule(waited.duration, self._step)
        elif isinstance(waited, _Until):
            def poll() -> None:
                if waited.predicate():
                    self._step()
                else:
                    sim.schedule(waited.poll, poll)

            sim.schedule(0, poll)
        elif isinstance(waited, ProcessHandle):
            if waited.finished:
                sim.schedule(0, self._step)
            else:
                waited._waiters.append(self)
        else:
            raise ConfigurationError(
                f"a process yielded {waited!r}; expected env.timeout(...), "
                "env.until(...) or a process handle"
            )

    def _finish(self) -> None:
        self.finished = True
        for waiter in self._waiters:
            self._env.sim.schedule(0, waiter._step)
        self._waiters.clear()


class ProcessEnv:
    """The environment handed to every process function."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    @property
    def now(self) -> int:
        """Current simulation time."""
        return self.sim.now

    def timeout(self, duration: int) -> _Timeout:
        """Wait for ``duration`` ticks."""
        return _Timeout(duration)

    def until(self, predicate: Callable[[], bool], poll: int = 1000) -> _Until:
        """Wait until ``predicate()`` is true (polled every ``poll`` ticks)."""
        return _Until(predicate, poll)

    def spawn(self, process: Callable[["ProcessEnv"], Generator]) -> ProcessHandle:
        """Start a child process now."""
        return spawn(self.sim, process, env=self)


def spawn(
    sim: Simulator,
    process: Callable[[ProcessEnv], Generator],
    env: Optional[ProcessEnv] = None,
) -> ProcessHandle:
    """Start ``process(env)`` as a simulation process; returns its handle."""
    env = env if env is not None else ProcessEnv(sim)
    generator = process(env)
    if not hasattr(generator, "__next__"):
        raise ConfigurationError(
            f"{process!r} is not a generator function (did you forget yield?)"
        )
    handle = ProcessHandle(env, generator)
    sim.schedule(0, handle._step)
    return handle
