"""Discrete-event simulation kernel.

The kernel is deliberately small: an event queue ordered by (time, priority,
sequence number), a simulator that drains it, a timer service exposing the
``start_alarm``/``cancel_alarm`` idiom used by the CANELy pseudocode, seeded
random-number streams and a trace recorder.

Simulated time is an integer number of nanoseconds; integer time keeps the
simulation fully deterministic across platforms.
"""

from repro.sim.clock import MS, NS, SEC, US, format_time, ms, ns, sec, us
from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStreams
from repro.sim.timers import Alarm, TimerService
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Alarm",
    "Event",
    "EventQueue",
    "MS",
    "NS",
    "RngStreams",
    "SEC",
    "Simulator",
    "TimerService",
    "TraceRecord",
    "TraceRecorder",
    "US",
    "format_time",
    "ms",
    "ns",
    "sec",
    "us",
]
