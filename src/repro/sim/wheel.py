"""Hierarchical timer wheel: O(1) alarm start / cancel / restart.

The failure detector rearms one surveillance alarm per monitored node on
*every* observed frame — at 200 nodes that is tens of thousands of live
alarms churning through the kernel heap, and every rearm pays the heap's
log-N sift (directly, or deferred into the stale-entry repair the
tuple-queue reschedule leaves behind). The wheel takes the kernel heap out
of that loop entirely: alarms live in doubly-linked wheel buckets (link
and unlink are a handful of pointer writes), and the kernel only ever sees
**one cursor event per wheel** — scheduled at the earliest instant any
bucket needs attention — instead of one event per alarm.

Layout: ``LEVELS`` levels of ``2**LEVEL_BITS`` slots each; a level-0 slot
spans ``2**SLOT_SHIFT`` ticks and each higher level widens by
``2**LEVEL_BITS``. An alarm is filed at the coarsest level whose slot span
still resolves its deadline; when a higher-level bucket's window opens,
its members *cascade* down one or more levels, and when a level-0 bucket's
earliest deadline arrives its due members fire — in arm order, at their
exact deadlines (the wheel never rounds a deadline to slot granularity,
so drifted clocks and odd durations fire at precisely the tick the heap
backend would have used). Each alarm cascades at most ``LEVELS`` times
over its whole life, so every operation stays amortized O(1).

The wheel is shared by every :class:`~repro.sim.timers.TimerService` of a
simulator (``Simulator.timer_wheel()``) and is enabled by the
:data:`repro.sim.timers.TIMER_WHEEL` toggle. It deliberately changes *no
simulated outcome*: the same alarms fire at the same simulated instants —
only the interleaving of kernel bookkeeping (cursor events instead of
per-alarm events) differs, which the golden outcome-equivalence tests pin.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.timers import Alarm

#: log2 of the level-0 slot width in ticks (65536 ticks = 65.5 us at the
#: nanosecond kernel tick — about one CAN frame time at 1 Mbit/s).
SLOT_SHIFT = 16
#: log2 of the slot count per level.
LEVEL_BITS = 6
#: Number of wheel levels; deadlines beyond the top level's span go to the
#: overflow list and re-file as the wheel turns.
LEVELS = 4

_SLOTS = 1 << LEVEL_BITS
_SLOT_MASK = _SLOTS - 1
#: ``delta < _LEVEL_SPAN[k]`` means level ``k`` can resolve the deadline.
_LEVEL_SPAN = [1 << (SLOT_SHIFT + LEVEL_BITS * (k + 1)) for k in range(LEVELS)]
_LEVEL_SHIFT = [SLOT_SHIFT + LEVEL_BITS * k for k in range(LEVELS)]


class _Bucket:
    """One wheel slot: an intrusive doubly-linked ring of alarms.

    ``armed_time`` is the instant for which a cursor-heap entry exists
    (``None`` when no live entry points here); entries whose time no
    longer matches are stale and skipped when popped.
    """

    __slots__ = ("level", "head", "tail", "count", "armed_time")

    def __init__(self, level: int) -> None:
        self.level = level
        self.head: Optional["Alarm"] = None
        self.tail: Optional["Alarm"] = None
        self.count = 0
        self.armed_time: Optional[int] = None

    def link(self, alarm: "Alarm") -> None:
        alarm._wbucket = self
        alarm._wprev = self.tail
        alarm._wnext = None
        if self.tail is None:
            self.head = alarm
        else:
            self.tail._wnext = alarm
        self.tail = alarm
        self.count += 1

    def unlink(self, alarm: "Alarm") -> None:
        prev, nxt = alarm._wprev, alarm._wnext
        if prev is None:
            self.head = nxt
        else:
            prev._wnext = nxt
        if nxt is None:
            self.tail = prev
        else:
            nxt._wprev = prev
        alarm._wbucket = None
        alarm._wprev = None
        alarm._wnext = None
        self.count -= 1

    def drain(self) -> List["Alarm"]:
        """Unlink and return every member, in insertion order."""
        members = []
        alarm = self.head
        while alarm is not None:
            nxt = alarm._wnext
            alarm._wbucket = None
            alarm._wprev = None
            alarm._wnext = None
            members.append(alarm)
            alarm = nxt
        self.head = None
        self.tail = None
        self.count = 0
        return members


class TimerWheel:
    """A hierarchical timer wheel driven by one kernel cursor event."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        # Buckets allocated lazily per (level, slot-index); at most
        # LEVELS * 2**LEVEL_BITS ever exist.
        self._buckets = [
            [None] * _SLOTS for _ in range(LEVELS)
        ]  # type: List[List[Optional[_Bucket]]]
        #: Alarms whose deadline exceeds the top level's span; re-filed
        #: whenever the top level cascades past them.
        self._overflow: Optional[_Bucket] = None
        #: Min-heap of ``(time, seq, bucket)`` visit requests. Entries are
        #: never removed eagerly: a popped entry is live only while
        #: ``bucket.armed_time == time``.
        self._heap: list = []
        self._heap_seq = 0
        #: The kernel event carrying the next wheel visit (lazily
        #: cancelled whenever an earlier visit is needed).
        self._cursor_event = None
        self._cursor_time: Optional[int] = None
        #: Arm-order sequence: the deterministic fire order among alarms
        #: sharing an exact deadline.
        self._arm_seq = 0
        #: Live alarms currently filed (linked or mid-fire collection).
        self.pending = 0

    # -- filing ------------------------------------------------------------------

    def _bucket_for(self, deadline: int) -> _Bucket:
        delta = deadline - self._sim._now
        for level in range(LEVELS):
            if delta < _LEVEL_SPAN[level]:
                slot = (deadline >> _LEVEL_SHIFT[level]) & _SLOT_MASK
                bucket = self._buckets[level][slot]
                if bucket is None:
                    bucket = self._buckets[level][slot] = _Bucket(level)
                return bucket
        if self._overflow is None:
            self._overflow = _Bucket(LEVELS)
        return self._overflow

    def _visit_time(self, bucket: _Bucket, deadline: int) -> int:
        """When the cursor must next look at ``bucket`` for ``deadline``.

        Level-0 buckets are visited at the member's exact deadline (they
        fire); higher levels at the opening of the slot window (they
        cascade); the overflow list at the top level's horizon.
        """
        if bucket.level == 0:
            return deadline
        if bucket.level >= LEVELS:
            return self._sim._now + _LEVEL_SPAN[-1] // 2
        return (deadline >> _LEVEL_SHIFT[bucket.level]) << _LEVEL_SHIFT[
            bucket.level
        ]

    def _arm(self, bucket: _Bucket, time: int) -> None:
        if bucket.armed_time is not None and bucket.armed_time <= time:
            return
        bucket.armed_time = time
        seq = self._heap_seq
        self._heap_seq = seq + 1
        heapq.heappush(self._heap, (time, seq, bucket))
        if self._cursor_time is None or time < self._cursor_time:
            self._schedule_cursor(time)

    def _schedule_cursor(self, time: int) -> None:
        if self._cursor_event is not None:
            self._cursor_event.cancel()
        self._cursor_time = time
        # A cascade can request a visit for the already-open window; the
        # kernel cannot schedule in the past, and "this instant" is the
        # earliest a discrete-event kernel can honour anyway.
        now = self._sim._now
        self._cursor_event = self._sim.schedule_at(
            time if time > now else now, self._on_cursor
        )

    def insert(self, alarm: "Alarm", deadline: int) -> None:
        """File ``alarm`` to fire at ``deadline`` (absolute ticks)."""
        alarm.deadline = deadline
        alarm._wseq = self._arm_seq
        self._arm_seq += 1
        bucket = self._bucket_for(deadline)
        bucket.link(alarm)
        self.pending += 1
        self._arm(bucket, self._visit_time(bucket, deadline))

    def remove(self, alarm: "Alarm") -> None:
        """Unlink ``alarm``; a no-op when it is not filed."""
        bucket = alarm._wbucket
        if bucket is not None:
            bucket.unlink(alarm)
            self.pending -= 1

    def restart(self, alarm: "Alarm", deadline: int) -> None:
        """Move a filed alarm to a new deadline — the O(1) rearm.

        When the new deadline resolves to the slot the alarm already
        occupies — the common case for surveillance rearms, whose
        deadline advances by less than a slot span per observed frame —
        the relink is skipped entirely: only the deadline, the arm-order
        sequence and (for level 0, via :meth:`_arm`'s monotonic guard)
        the visit time change. Same window means same cascade visit, so
        fire instants and fire order are identical to unlink + insert.
        """
        bucket = alarm._wbucket
        if bucket is None:
            self.insert(alarm, deadline)
            return
        alarm.deadline = deadline
        alarm._wseq = self._arm_seq
        self._arm_seq += 1
        target = self._bucket_for(deadline)
        if target is not bucket:
            bucket.unlink(alarm)
            target.link(alarm)
        self._arm(target, self._visit_time(target, deadline))

    # -- turning -----------------------------------------------------------------

    def _refile(self, alarm: "Alarm") -> None:
        bucket = self._bucket_for(alarm.deadline)
        bucket.link(alarm)
        self._arm(bucket, self._visit_time(bucket, alarm.deadline))

    def _on_cursor(self) -> None:
        now = self._sim._now
        self._cursor_event = None
        self._cursor_time = None
        heap = self._heap
        due: List["Alarm"] = []
        while heap and heap[0][0] <= now:
            time, _, bucket = heapq.heappop(heap)
            if bucket.armed_time != time:
                continue  # stale: the bucket emptied or was re-armed
            bucket.armed_time = None
            if bucket.count == 0:
                continue
            if bucket.level == 0:
                # Fire due members; keep the rest armed at the earliest
                # remaining deadline.
                remaining_min: Optional[int] = None
                alarm = bucket.head
                while alarm is not None:
                    nxt = alarm._wnext
                    if alarm.deadline <= now:
                        bucket.unlink(alarm)
                        due.append(alarm)
                    elif remaining_min is None or alarm.deadline < remaining_min:
                        remaining_min = alarm.deadline
                    alarm = nxt
                if remaining_min is not None:
                    self._arm(bucket, remaining_min)
            else:
                # Cascade the whole window down; members land in lower
                # levels (or fire-collect via the loop when already due).
                for alarm in bucket.drain():
                    if alarm.deadline <= now and alarm._wbucket is None:
                        due.append(alarm)
                    else:
                        self._refile(alarm)
        if due:
            self.pending -= len(due)
            # Exact-deadline order, then arm order: deterministic and
            # equal to the order the heap backend would have used for
            # alarms armed in the same sequence.
            due.sort(key=_fire_key)
            for alarm in due:
                # A callback earlier in the batch may have cancelled or
                # re-armed this alarm; re-filed alarms are linked again.
                if alarm._active and alarm._wbucket is None:
                    alarm._fire()
        # Re-arm the kernel cursor at the next live visit.
        while heap:
            time, _, bucket = heap[0]
            if bucket.armed_time != time or bucket.count == 0:
                heapq.heappop(heap)
                if bucket.armed_time == time:
                    bucket.armed_time = None
                continue
            self._schedule_cursor(time)
            break


def _fire_key(alarm: "Alarm"):
    return (alarm.deadline, alarm._wseq)
