"""Trace post-processing: human-readable timelines and summaries.

The simulator records everything that happens on the bus and in the
protocol layers; this module turns a finished trace into things a human
(or a benchmark report) wants: a chronological event timeline, per-type
frame statistics and a bandwidth profile over time windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import format_time
from repro.sim.trace import TraceRecord, TraceRecorder


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one simulation trace.

    Attributes:
        duration: time of the last record, in ticks.
        physical_frames: transmissions on the bus.
        faulty_frames: transmissions hit by the injector.
        frames_by_type: physical frame count per message type name.
        crashes: nodes that crashed.
        view_changes: membership view updates recorded.
        change_notifications: ``msh-can.nty`` deliveries recorded.
    """

    duration: int
    physical_frames: int
    faulty_frames: int
    frames_by_type: Dict[str, int]
    crashes: List[int]
    view_changes: int
    change_notifications: int


def summarize(trace: TraceRecorder) -> TraceSummary:
    """Compute a :class:`TraceSummary` from a finished trace.

    Runs on the recorder's category indexes, so the cost is proportional
    to the bus transmissions, not the total record count.
    """
    faulty_frames = 0
    frames_by_type: Dict[str, int] = {}
    for record in trace.select(category="bus.tx"):
        if record.data["kind"] != "none":
            faulty_frames += 1
        type_name = record.data["mid"].mtype.name
        frames_by_type[type_name] = frames_by_type.get(type_name, 0) + 1
    return TraceSummary(
        duration=trace.last_time,
        physical_frames=trace.count("bus.tx"),
        faulty_frames=faulty_frames,
        frames_by_type=frames_by_type,
        crashes=[r.node for r in trace.select(category="node.crash")],
        view_changes=trace.count("msh.view"),
        change_notifications=trace.count("msh.change"),
    )


def _describe(record: TraceRecord) -> str:
    data = record.data
    if record.category == "bus.tx":
        mid = data["mid"]
        kind = "" if data["kind"] == "none" else f" [{data['kind'].upper()}]"
        cluster = (
            f" x{len(data['senders'])}" if len(data["senders"]) > 1 else ""
        )
        frame = "RTR" if data.get("remote") else "DATA"
        return (
            f"bus: {frame} {mid.mtype.name} node={mid.node} "
            f"ref={mid.ref}{cluster}{kind}"
        )
    if record.category == "bus.deliver":
        return ""  # too chatty for the timeline; covered by bus.tx
    if record.category == "node.crash":
        return f"node {record.node} CRASHED"
    if record.category == "node.recover":
        return f"node {record.node} recovered"
    if record.category == "msh.view":
        members = sorted(data["members"])
        return f"node {record.node} view -> {members}"
    if record.category == "msh.change":
        active = sorted(data["active"])
        failed = sorted(data["failed"])
        return f"node {record.node} notified: active={active} failed={failed}"
    if record.category == "bus.inaccessible":
        return f"bus inaccessible for {data['bits']} bit-times"
    return f"{record.category} node={record.node} {data}"


#: Observability records (monitor/metrics feeds) mirror protocol events the
#: timeline already shows via ``bus.tx``/``msh.change``; rendering them too
#: would only duplicate lines, once per receiving node.
_OBSERVABILITY_CATEGORIES = frozenset(
    ("fd.detect", "fda.nty", "fda.reset", "fda.evict")
)


def timeline(
    trace: TraceRecorder,
    start: int = 0,
    end: Optional[int] = None,
    include_views: bool = False,
    limit: Optional[int] = None,
) -> List[str]:
    """Render the trace as chronological human-readable lines.

    Per-node view updates are suppressed unless ``include_views`` is set —
    they repeat once per node per cycle and drown everything else.
    """
    lines: List[str] = []
    for record in trace:
        if record.time < start:
            continue
        if end is not None and record.time > end:
            continue
        if record.category in _OBSERVABILITY_CATEGORIES:
            continue
        if record.category in ("msh.view",) and not include_views:
            continue
        description = _describe(record)
        if not description:
            continue
        lines.append(f"{format_time(record.time):>12}  {description}")
        if limit is not None and len(lines) >= limit:
            break
    return lines


def bandwidth_profile(
    trace: TraceRecorder, window: int
) -> List[Tuple[int, int]]:
    """Bus bits consumed per ``window`` of simulated time.

    Returns ``(window_start, bits)`` pairs covering the whole trace; useful
    for plotting load over a scenario.
    """
    buckets: Dict[int, int] = {}
    for record in trace.select(category="bus.tx"):
        bucket = (record.time // window) * window
        buckets[bucket] = buckets.get(bucket, 0) + record.data["bits"]
    if not buckets:
        return []
    last = max(buckets)
    return [(start, buckets.get(start, 0)) for start in range(0, last + window, window)]


def view_history(
    trace: TraceRecorder, node: int
) -> List[Tuple[int, List[int]]]:
    """The sequence of membership views one node held, ``(time, members)``.

    Consecutive identical views are collapsed, so the result is the node's
    *view change* history — handy for asserting view-synchrony-style
    properties in tests.
    """
    history: List[Tuple[int, List[int]]] = []
    for record in trace.select(category="msh.view", node=node):
        members = sorted(record.data["members"])
        if not history or history[-1][1] != members:
            history.append((record.time, members))
    return history
