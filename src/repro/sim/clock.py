"""Time units for the simulation kernel.

All kernel-level times are integers counting nanoseconds. The helpers here
convert human-friendly quantities (microseconds, milliseconds, seconds) into
kernel ticks and back. CAN layers additionally speak *bit-times*; the
conversion lives in :mod:`repro.can.phy` because it depends on the bit rate.
"""

from __future__ import annotations

#: Number of kernel ticks per nanosecond (the kernel tick *is* a nanosecond).
NS = 1
#: Kernel ticks per microsecond.
US = 1_000
#: Kernel ticks per millisecond.
MS = 1_000_000
#: Kernel ticks per second.
SEC = 1_000_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to kernel ticks."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert microseconds to kernel ticks."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to kernel ticks."""
    return round(value * MS)


def sec(value: float) -> int:
    """Convert seconds to kernel ticks."""
    return round(value * SEC)


def format_time(ticks: int) -> str:
    """Render kernel ticks as a human-readable time string.

    Picks the largest unit that keeps the value >= 1, e.g. ``format_time(
    1_500_000)`` -> ``"1.500ms"``.
    """
    if ticks < 0:
        return "-" + format_time(-ticks)
    if ticks >= SEC:
        return f"{ticks / SEC:.3f}s"
    if ticks >= MS:
        return f"{ticks / MS:.3f}ms"
    if ticks >= US:
        return f"{ticks / US:.3f}us"
    return f"{ticks}ns"
