"""Named, seeded random-number streams.

Fault injection, workload jitter and scenario scripting each draw from their
own stream so that, for example, changing the traffic pattern does not perturb
the fault schedule. Streams are derived deterministically from a root seed
and the stream name.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """A family of independent ``random.Random`` instances."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams derive from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream called ``name``, creating it on first use.

        The per-stream seed mixes the root seed with a CRC of the name, so
        streams are stable across runs and independent of creation order.
        """
        if name not in self._streams:
            derived = (self._seed * 0x9E3779B1 + zlib.crc32(name.encode())) % 2**63
            self._streams[name] = random.Random(derived)
        return self._streams[name]
