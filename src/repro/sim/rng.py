"""Named, seeded random-number streams.

Fault injection, workload jitter and scenario scripting each draw from their
own stream so that, for example, changing the traffic pattern does not perturb
the fault schedule. Streams are derived deterministically from a root seed
and the stream name.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


def derive_seed(root: int, name: str) -> int:
    """Deterministically mix ``root`` with ``name`` into a child seed.

    This is the derivation :class:`RngStreams` uses per stream; it is also
    how the campaign engine turns a root seed plus a scenario index into
    that scenario's private seed, so results are reproducible one scenario
    at a time, in any order, on any worker.
    """
    return (root * 0x9E3779B1 + zlib.crc32(name.encode())) % 2**63


class RngStreams:
    """A family of independent ``random.Random`` instances."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams derive from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream called ``name``, creating it on first use.

        The per-stream seed mixes the root seed with a CRC of the name, so
        streams are stable across runs and independent of creation order.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self._seed, name))
        return self._streams[name]
