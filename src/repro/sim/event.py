"""Events and the pending-event queue.

Events are ordered by ``(time, priority, seq)``. The sequence number breaks
ties deterministically in insertion order, so two events scheduled for the
same instant always fire in the order they were scheduled.

Cancelled events stay in the heap (removing an arbitrary heap entry is
O(n)) but the queue counts them, so ``len(queue)`` reports *live* events
only, and compacts the heap once dead entries dominate — long membership
campaigns cancel-and-rearm surveillance timers on every frame, and without
the purge those dead entries would accumulate for the whole run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

#: Compact the heap only past this size (small heaps aren't worth it).
_PURGE_MIN_HEAP = 64


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (kernel ticks) at which to fire.
        priority: lower fires first among events at the same time.
        seq: insertion sequence number, the final tie-breaker.
        action: the zero-argument callable invoked when the event fires.
        cancelled: cancelled events stay in the heap but are skipped.
    """

    time: int
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["EventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._cancelled

    def push(
        self,
        time: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute ``time`` and return its event."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        # Lazy purge: rebuild the heap once cancelled entries outnumber the
        # live ones, so dead entries never occupy more than half the heap.
        if (
            len(self._heap) > _PURGE_MIN_HEAP
            and self._cancelled * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            # A late cancel() on a fired event must not skew the count.
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._cancelled = 0
