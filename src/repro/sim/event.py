"""Events and the pending-event queue.

Events are ordered by ``(time, priority, seq)``. The sequence number breaks
ties deterministically in insertion order, so two events scheduled for the
same instant always fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (kernel ticks) at which to fire.
        priority: lower fires first among events at the same time.
        seq: insertion sequence number, the final tie-breaker.
        action: the zero-argument callable invoked when the event fires.
        cancelled: cancelled events stay in the heap but are skipped.
    """

    time: int
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        self.cancelled = True


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute ``time`` and return its event."""
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the earliest live event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
