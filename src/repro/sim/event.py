"""Events and the pending-event queue.

Events are ordered by ``(time, priority, seq)``. The sequence number breaks
ties deterministically in insertion order, so two events scheduled for the
same instant always fire in the order they were scheduled.

The heap stores plain ``(time, priority, seq, event)`` tuples — heap sifts
compare native tuples (never the :class:`Event` handle: ``seq`` is unique)
instead of going through a generated dataclass ``__lt__`` that rebuilds
comparison tuples on every swap. The :class:`Event` is a slotted handle
kept only for cancellation and for handing the callback to the kernel.

Cancelled events stay in the heap (removing an arbitrary heap entry is
O(n)) but the queue counts them, so ``len(queue)`` reports *live* events
only, and compacts the heap once dead entries dominate — long membership
campaigns cancel-and-rearm surveillance timers on every frame, and without
the purge those dead entries would accumulate for the whole run.

Rescheduling (:meth:`EventQueue.reschedule`) postpones a pending event
*in place*: the event's ``time``/``seq`` fields are updated and its stale
heap entry is repaired lazily when it surfaces, so the surveillance-timer
rearm — the hottest operation in a membership simulation — costs a few
attribute writes instead of a cancel, an :class:`Event` allocation and a
``heappush``. A fresh sequence number is allocated on every reschedule, so
the resulting ``(time, priority, seq)`` order is *identical* to the
cancel-and-push idiom it replaces: traces stay bit-for-bit equal.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

#: Compact the heap only past this size (small heaps aren't worth it).
_PURGE_MIN_HEAP = 64


class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (kernel ticks) at which to fire.
        priority: lower fires first among events at the same time.
        seq: insertion sequence number, the final tie-breaker.
        action: the zero-argument callable invoked when the event fires.
        cancelled: cancelled events stay in the heap but are skipped.

    ``time`` and ``seq`` are rewritten by :meth:`EventQueue.reschedule`;
    a heap entry whose ``seq`` no longer matches its event is *stale* and
    is re-filed (never fired) when it reaches the top of the heap.
    """

    __slots__ = ("time", "priority", "seq", "action", "cancelled", "_queue")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        action: Callable[[], None],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"seq={self.seq}, cancelled={self.cancelled})"
        )


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    #: Heap entries are ``(time, priority, seq, event)`` tuples; the kernel
    #: run loop relies on this layout to pop/fire without indirection.
    TUPLE_ENTRIES = True

    #: This queue supports in-place deferral via :meth:`reschedule`. The
    #: seed-faithful legacy queue does not, which keeps the reference core
    #: on the original cancel-and-push path.
    SUPPORTS_RESCHEDULE = True

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._cancelled = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) pending events."""
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._cancelled

    def push(
        self,
        time: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute ``time`` and return its event."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, action)
        event._queue = self
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def reschedule(self, event: Event, time: int) -> None:
        """Defer pending ``event`` to fire at ``time`` instead, in place.

        ``time`` must be at or after the event's current deadline — the
        stale heap entry is repaired lazily when popped, and an entry can
        only be re-filed *later* without losing heap order. A fresh
        sequence number is consumed so the event orders among same-time
        peers exactly as if it had been cancelled and pushed anew.

        Callers must ensure the event is live and still owned by this
        queue (``event._queue is self``); :meth:`Simulator.try_reschedule
        <repro.sim.kernel.Simulator.try_reschedule>` wraps those checks.
        """
        seq = self._seq
        self._seq = seq + 1
        event.time = time
        event.seq = seq

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        # Lazy purge: rebuild the heap once cancelled entries outnumber the
        # live ones, so dead entries never occupy more than half the heap.
        # In place — the kernel's inlined run loop aliases the heap list.
        # Entries are rebuilt from their events' current fields, which also
        # repairs any entry left stale by reschedule().
        heap = self._heap
        if len(heap) > _PURGE_MIN_HEAP and self._cancelled * 2 > len(heap):
            heap[:] = [
                (event.time, event.priority, event.seq, event)
                for entry in heap
                if not (event := entry[3]).cancelled
            ]
            heapq.heapify(heap)
            self._cancelled = 0

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded and stale (rescheduled) entries are
        re-filed at their new position, both transparently.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[3]
            if event.cancelled:
                self._cancelled -= 1
                continue
            if event.seq != entry[2]:
                # Stale entry: the event was rescheduled later; re-file it.
                heapq.heappush(
                    heap, (event.time, event.priority, event.seq, event)
                )
                continue
            # A late cancel() on a fired event must not skew the count.
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the earliest live event, if any."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if event.seq != entry[2]:
                heapq.heappop(heap)
                heapq.heappush(
                    heap, (event.time, event.priority, event.seq, event)
                )
                continue
            return entry[0]
        return None

    def clear(self) -> None:
        """Drop every pending event.

        Dropped events read as cancelled afterwards — they will never fire
        — and are detached, so a late ``cancel()`` on a handle that was
        pending at clear time neither raises nor skews the live count.
        """
        for entry in self._heap:
            event = entry[3]
            event.cancelled = True
            event._queue = None
        self._heap.clear()
        self._cancelled = 0
