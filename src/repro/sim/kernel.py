"""The discrete-event simulator.

A :class:`Simulator` owns the simulated clock and the event queue. Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the simulator drains the
queue in :meth:`run` / :meth:`run_until` / :meth:`step`.

The drain loops dispatch in *batches*: when several events share the heap
head's timestamp, the whole equal-time run is drained off the heap first —
already in ``(priority, seq)`` order — and then fired from a local list,
instead of re-entering ``heappop`` (and re-sifting freshly pushed events)
between every two fires. An event scheduled *during* a batch for the same
instant still fires in exact ``(priority, seq)`` order: new events carry
later sequence numbers, so only a strictly more urgent priority can preempt
the remainder of a batch, and the loop checks for exactly that. Batching is
on by default and can be disabled per simulator (or via
:data:`BATCH_DISPATCH`) for A/B equivalence runs.

When the queue is quiescent between bursts, :meth:`advance_to_next_event`
fast-forwards the clock straight to the next deadline — the analytic
idle-skip primitive that :meth:`run_until`/:meth:`run_for` build on and
that scenario drivers use to leap over silent bus periods.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.sim.event import Event, EventQueue
from repro.sim.trace import TraceRecorder

#: Default for batched same-timestamp dispatch; per-simulator override via
#: ``Simulator(batch_dispatch=...)``. Read at every drain, so tests can
#: toggle it on a live simulator module.
BATCH_DISPATCH = True


class SimulationError(Exception):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator with integer-tick time."""

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanTracer] = None,
        batch_dispatch: Optional[bool] = None,
    ) -> None:
        self._now = 0
        self._queue = EventQueue()
        self._trace = trace if trace is not None else TraceRecorder()
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._spans = spans if spans is not None else SpanTracer()
        self._spans.bind_clock(lambda: self._now)
        #: Reentrancy guard: set while a drain loop owns the heap. Calling
        #: run()/run_until() from inside an event action would alias the
        #: drain state and silently double-drain, so it raises instead.
        self._running = False
        self._events_processed = 0
        self._batch_dispatch = batch_dispatch
        self._timer_wheel = None

    @property
    def now(self) -> int:
        """Current simulation time in kernel ticks."""
        return self._now

    @property
    def trace(self) -> TraceRecorder:
        """The trace recorder shared by every component in this simulation."""
        return self._trace

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry shared by every component in this simulation."""
        return self._metrics

    @property
    def spans(self) -> SpanTracer:
        """The causal span tracer (disabled until ``spans.enabled = True``)."""
        return self._spans

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def timer_wheel(self):
        """The simulator-wide hierarchical timer wheel, built on demand.

        Shared by every :class:`~repro.sim.timers.TimerService` whose
        construction saw :data:`repro.sim.timers.TIMER_WHEEL` enabled; the
        wheel files alarms in O(1) buckets and drives them through a
        single kernel cursor event (see :mod:`repro.sim.wheel`).
        """
        if self._timer_wheel is None:
            from repro.sim.wheel import TimerWheel

            self._timer_wheel = TimerWheel(self)
        return self._timer_wheel

    @property
    def running(self) -> bool:
        """True while a drain loop (``run``/``run_until``/``step``) is active."""
        return self._running

    def schedule(
        self,
        delay: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, action, priority)

    def schedule_at(
        self,
        time: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self._queue.push(time, action, priority)

    def try_reschedule(self, event: Event, time: int) -> bool:
        """Defer pending ``event`` to absolute ``time`` in place, if possible.

        Returns True on success. Falls back to False — caller cancels and
        schedules anew — whenever the in-place deferral cannot preserve
        exact semantics: the queue does not support it (the seed-faithful
        legacy queue), the event is no longer owned by the queue (already
        popped for firing, or batched for dispatch), or ``time`` would
        move the deadline *earlier* (a stale heap entry can only be
        re-filed later). On success the event orders among same-time peers
        exactly as a freshly pushed one would.
        """
        queue = self._queue
        if (
            not getattr(queue, "SUPPORTS_RESCHEDULE", False)
            or event._queue is not queue
            or event.cancelled
            or time < event.time
            or time < self._now
        ):
            return False
        queue.reschedule(event, time)
        return True

    # -- drain helpers ----------------------------------------------------------

    @staticmethod
    def _check_budget(max_events: Optional[int]) -> Optional[int]:
        if max_events is not None and max_events < 0:
            raise SimulationError(f"negative event budget: {max_events}")
        return max_events

    def _begin_drain(self) -> None:
        if self._running:
            raise SimulationError(
                "run()/run_until() re-entered from inside an event action; "
                "schedule follow-up work instead of draining recursively"
            )
        self._running = True

    def step(self) -> bool:
        """Fire the next event. Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired. A budget of 0 fires nothing;
        a negative budget raises :class:`SimulationError`.

        The pop/fire loop is inlined over the queue's tuple heap — one
        ``heappop`` plus one call per event, with no method dispatch in
        between — and, when no budget is given, dispatches equal-time runs
        in batches (see the module docstring). Queues without tuple
        entries (the seed-faithful legacy queue :mod:`repro.perf`
        benchmarks against) fall back to :meth:`step`.
        """
        max_events = self._check_budget(max_events)
        if max_events == 0:
            return 0
        queue = self._queue
        self._begin_drain()
        try:
            if not getattr(queue, "TUPLE_ENTRIES", False):
                fired = 0
                while self.step():
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        break
                return fired
            if max_events is not None:
                return self._drain_budgeted(None, max_events)
            batch = self._batch_dispatch
            if batch if batch is not None else BATCH_DISPATCH:
                return self._drain_batched(None)
            return self._drain_budgeted(None, None)
        finally:
            self._running = False

    def run_until(self, time: int, max_events: Optional[int] = None) -> int:
        """Run every event scheduled at or before ``time``.

        Returns the number of events fired. The clock is advanced to
        exactly ``time`` afterwards, even if the queue drained earlier —
        *unless* an event budget was given and exhausted first, in which
        case the clock stays at the last fired event (the same budget
        semantics as :meth:`run`; a budget of 0 fires nothing and leaves
        the clock untouched).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until {time}, current time is {self._now}"
            )
        max_events = self._check_budget(max_events)
        if max_events == 0:
            return 0
        queue = self._queue
        self._begin_drain()
        try:
            if not getattr(queue, "TUPLE_ENTRIES", False):
                fired = 0
                while True:
                    next_time = queue.peek_time()
                    if next_time is None or next_time > time:
                        break
                    self.step()
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        return fired
                self._now = time
                return fired
            if max_events is not None:
                fired = self._drain_budgeted(time, max_events)
                if fired < max_events:
                    self._now = time
                return fired
            batch = self._batch_dispatch
            if batch if batch is not None else BATCH_DISPATCH:
                fired = self._drain_batched(time)
            else:
                fired = self._drain_budgeted(time, None)
            self._now = time
            return fired
        finally:
            self._running = False

    def _drain_batched(self, bound: Optional[int]) -> int:
        """Batched equal-time dispatch over the tuple heap.

        Fires every live event (with time <= ``bound``, when given) and
        returns the count. The caller owns the reentrancy guard and, for
        bounded runs, the final clock adjustment.
        """
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        fired = 0
        while heap:
            entry = heap[0]
            event = entry[3]
            # Normalize the head before reading its time: dead entries
            # leave, stale ones re-file at their rescheduled position.
            if event.cancelled:
                heappop(heap)
                queue._cancelled -= 1
                continue
            if event.seq != entry[2]:
                heappop(heap)
                heappush(
                    heap, (event.time, event.priority, event.seq, event)
                )
                continue
            now = entry[0]
            if bound is not None and now > bound:
                break
            # Drain the whole equal-time run: entries come off the heap
            # already sorted by (priority, seq). A stale entry re-filed
            # *into* this same instant can arrive out of order — rare
            # enough that detecting it and re-sorting once is cheaper than
            # keying every append.
            batch = []
            append = batch.append
            resort = False
            while heap and heap[0][0] == now:
                entry = heappop(heap)
                event = entry[3]
                if event.cancelled:
                    queue._cancelled -= 1
                    continue
                if event.seq != entry[2]:
                    heappush(
                        heap, (event.time, event.priority, event.seq, event)
                    )
                    if event.time == now:
                        resort = True
                    continue
                event._queue = None
                append(event)
            if not batch:
                continue
            if resort:
                batch.sort(key=lambda e: (e.priority, e.seq))
            self._now = now
            if len(batch) == 1:
                event = batch[0]
                self._events_processed += 1
                event.action()
                fired += 1
                continue
            for event in batch:
                # An action earlier in this batch may have scheduled a
                # *more urgent* event for this same instant; it must fire
                # before the remaining batch entries. (Equal or lower
                # urgency can never overtake: fresh events carry later
                # sequence numbers than everything already batched.)
                priority = event.priority
                while heap and heap[0][0] == now and heap[0][1] < priority:
                    head = heappop(heap)
                    urgent = head[3]
                    if urgent.cancelled:
                        queue._cancelled -= 1
                        continue
                    if urgent.seq != head[2]:
                        heappush(
                            heap,
                            (urgent.time, urgent.priority, urgent.seq, urgent),
                        )
                        continue
                    urgent._queue = None
                    self._events_processed += 1
                    urgent.action()
                    fired += 1
                # An action earlier in this batch may also have *cancelled*
                # a later batch entry; it was detached when batched, so the
                # flag is the only signal left.
                if event.cancelled:
                    continue
                self._events_processed += 1
                event.action()
                fired += 1
        return fired

    def _drain_budgeted(self, bound: Optional[int], budget: Optional[int]) -> int:
        """One-at-a-time dispatch over the tuple heap (budgeted or A/B runs)."""
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        fired = 0
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                queue._cancelled -= 1
                continue
            if event.seq != entry[2]:
                heappop(heap)
                heappush(
                    heap, (event.time, event.priority, event.seq, event)
                )
                continue
            event_time = entry[0]
            if bound is not None and event_time > bound:
                break
            heappop(heap)
            event._queue = None
            self._now = event_time
            self._events_processed += 1
            event.action()
            fired += 1
            if budget is not None and fired >= budget:
                break
        return fired

    # -- analytic idle-skip ------------------------------------------------------

    def next_event_time(self) -> Optional[int]:
        """Deadline of the earliest live event, or ``None`` on an empty queue."""
        return self._queue.peek_time()

    def advance_to_next_event(self) -> Optional[int]:
        """Fast-forward the clock to the next event's deadline without firing.

        The analytic idle-skip primitive: when the simulated system is
        quiescent (nothing in flight — e.g. an idle bus with empty TX
        queues), every tick up to the next deadline is provably silent, so
        the clock jumps there directly instead of "simulating" the
        silence. Returns the new ``now`` (the next event's time), or
        ``None`` (clock untouched) on an empty queue. The event itself
        does not fire; a following :meth:`run_until`/:meth:`step` does.
        """
        if self._running:
            raise SimulationError(
                "advance_to_next_event() called from inside an event action"
            )
        next_time = self._queue.peek_time()
        if next_time is not None and next_time > self._now:
            self._now = next_time
        return next_time

    def run_for(self, duration: int) -> int:
        """Run the simulation for ``duration`` ticks from the current time."""
        return self.run_until(self._now + duration)
