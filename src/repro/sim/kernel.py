"""The discrete-event simulator.

A :class:`Simulator` owns the simulated clock and the event queue. Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the simulator drains the
queue in :meth:`run` / :meth:`run_until` / :meth:`step`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.sim.event import Event, EventQueue
from repro.sim.trace import TraceRecorder


class SimulationError(Exception):
    """Raised on kernel misuse (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator with integer-tick time."""

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanTracer] = None,
    ) -> None:
        self._now = 0
        self._queue = EventQueue()
        self._trace = trace if trace is not None else TraceRecorder()
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._spans = spans if spans is not None else SpanTracer()
        self._spans.bind_clock(lambda: self._now)
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in kernel ticks."""
        return self._now

    @property
    def trace(self) -> TraceRecorder:
        """The trace recorder shared by every component in this simulation."""
        return self._trace

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry shared by every component in this simulation."""
        return self._metrics

    @property
    def spans(self) -> SpanTracer:
        """The causal span tracer (disabled until ``spans.enabled = True``)."""
        return self._spans

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def schedule(
        self,
        delay: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, action, priority)

    def schedule_at(
        self,
        time: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        return self._queue.push(time, action, priority)

    def step(self) -> bool:
        """Fire the next event. Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire).

        The pop/fire loop is inlined over the queue's tuple heap — one
        ``heappop`` plus one call per event, with no method dispatch in
        between. Queues without tuple entries (the seed-faithful legacy
        queue :mod:`repro.perf` benchmarks against) fall back to
        :meth:`step`.
        """
        queue = self._queue
        if not getattr(queue, "TUPLE_ENTRIES", False):
            fired = 0
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    return
            return
        heap = queue._heap
        heappop = heapq.heappop
        fired = 0
        while heap:
            time, _priority, _seq, event = heappop(heap)
            if event.cancelled:
                queue._cancelled -= 1
                continue
            event._queue = None
            self._now = time
            self._events_processed += 1
            event.action()
            fired += 1
            if max_events is not None and fired >= max_events:
                return

    def run_until(self, time: int) -> None:
        """Run every event scheduled at or before ``time``.

        The clock is advanced to exactly ``time`` afterwards, even if the
        queue drained earlier.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until {time}, current time is {self._now}"
            )
        queue = self._queue
        if not getattr(queue, "TUPLE_ENTRIES", False):
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
            self._now = time
            return
        heap = queue._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                queue._cancelled -= 1
                continue
            event_time = entry[0]
            if event_time > time:
                break
            heappop(heap)
            event._queue = None
            self._now = event_time
            self._events_processed += 1
            event.action()
        self._now = time

    def run_for(self, duration: int) -> None:
        """Run the simulation for ``duration`` ticks from the current time."""
        self.run_until(self._now + duration)
