"""Mutation-style self-test: prove the checker can actually find bugs.

A checker that reports "zero violations" is only as credible as its
ability to catch a real bug. This module keeps a registry of *planted
mutations* — small, seeded protocol bugs applied as reversible monkey
patches — and :func:`run_selftest` asserts the full pipeline works end to
end against one of them:

1. plant the mutation;
2. explore a small bounded schedule space (in-process, so the patch stays
   applied) until a violation surfaces;
3. delta-debug the violating schedule to a 1-minimal counterexample;
4. write the replayable artifact and replay it, asserting bit-for-bit
   reproduction (same verdict, same monitor, same trace fingerprint);
5. un-plant the mutation and re-run the minimal schedule, asserting the
   checker goes quiet — the violation was the mutation's, not noise.

Each mutation names the monitor expected to catch it, so the selftest
also pins the *diagnosis*, not just the detection.
"""

from __future__ import annotations

import contextlib
import io
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Dict, Iterator, List, Optional

from repro.check.artifact import replay_artifact, write_artifact
from repro.check.explorer import ScheduleSpace
from repro.check.minimize import minimize_schedule
from repro.check.runner import CheckResult, run_schedule
from repro.check.schedule import FaultSchedule
from repro.check.sweep import CheckSweep, explore
from repro.core.fda import FdaProtocol
from repro.core.failure_detector import FailureDetector
from repro.errors import CheckError

#: The minimal counterexample a passing selftest may report — planted
#: mutations are triggerable by a lone crash, so anything bigger means the
#: minimizer regressed.
MAX_MINIMAL_FAULTS = 3


@dataclass(frozen=True)
class Mutation:
    """A registered planted bug.

    ``plant`` returns a context manager that applies the patch on entry
    and restores the original code on exit; ``expected_monitor`` names the
    invariant monitor that must catch it.
    """

    name: str
    description: str
    expected_monitor: str
    plant: Callable[[], ContextManager[None]]


@contextlib.contextmanager
def _plant_fda_duplicate_delivery() -> Iterator[None]:
    """Drop Fig. 6's r02 duplicate check: every physical failure-sign copy
    is delivered upward, not just the first."""
    original = FdaProtocol._on_rtr_ind

    def mutated(self, mid):
        self._last_touch[mid] = self._cycle
        self._fs_ndup[mid] = self._fs_ndup.get(mid, 0) + 1  # r01
        # r02 gone: fall through to delivery on every copy.
        sim = self._sim
        if sim is not None:
            self._inc_delivered()
            if sim.trace.wants("fda.nty"):
                sim.trace.record(
                    sim.now,
                    "fda.nty",
                    node=self._layer.node_id,
                    failed=mid.node,
                )
        for listener in list(self._listeners):
            listener(mid.node)
        self._fs_nreq[mid] = self._fs_nreq.get(mid, 0) + 1  # r04
        if self._fs_nreq[mid] == 1:  # r05
            self._inc_retransmissions()
            self._layer.rtr_req(mid)  # r06

    FdaProtocol._on_rtr_ind = mutated
    try:
        yield
    finally:
        FdaProtocol._on_rtr_ind = original


@contextlib.contextmanager
def _plant_fd_missed_detection() -> Iterator[None]:
    """Gut Fig. 8's f10 clause: a remote surveillance timeout is silently
    dropped, so crashed members are never signalled or removed."""
    original = FailureDetector._on_expire

    def mutated(self, node_id):
        if node_id not in self._tid:
            return
        if node_id == self._layer.node_id:
            original(self, node_id)  # f07-f08 local heartbeat untouched
        # f10 gone: remote silence is ignored.

    FailureDetector._on_expire = mutated
    try:
        yield
    finally:
        FailureDetector._on_expire = original


#: The registry the CLI and tests draw from, keyed by mutation name.
MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation(
            name="fda-duplicate-delivery",
            description=(
                "FDA reception loses the duplicate counter check (Fig. 6 "
                "r02): every physical failure-sign copy delivers upward"
            ),
            expected_monitor="no-duplicate-failure-sign",
            plant=_plant_fda_duplicate_delivery,
        ),
        Mutation(
            name="fd-missed-detection",
            description=(
                "the failure detector drops remote surveillance timeouts "
                "(Fig. 8 f10): crashed members are never detected"
            ),
            expected_monitor="final-state",
            plant=_plant_fd_missed_detection,
        ),
    )
}

DEFAULT_MUTATION = "fda-duplicate-delivery"


@dataclass
class SelftestReport:
    """Everything :func:`run_selftest` verified, step by step."""

    mutation: str
    expected_monitor: str
    schedules_run: int = 0
    violations_found: int = 0
    violation_index: Optional[int] = None
    caught_by: str = ""
    minimized_faults: int = -1
    minimize_runs: int = 0
    replay_ok: bool = False
    clean_after_unplant: bool = False
    artifact_path: Optional[str] = None
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every pipeline stage behaved."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line, human-readable verdict."""
        lines = [
            f"selftest [{self.mutation}]: "
            + ("PASS" if self.passed else "FAIL"),
            f"  explored {self.schedules_run} schedules, "
            f"{self.violations_found} violation(s) found",
        ]
        if self.violation_index is not None:
            lines.append(
                f"  first violation: schedule #{self.violation_index}, "
                f"caught by [{self.caught_by}], minimized to "
                f"{self.minimized_faults} fault(s) "
                f"in {self.minimize_runs} runs"
            )
            lines.append(
                f"  replay bit-for-bit: "
                f"{'ok' if self.replay_ok else 'MISMATCH'}; "
                f"clean after un-planting: "
                f"{'ok' if self.clean_after_unplant else 'STILL VIOLATING'}"
            )
        for failure in self.failures:
            lines.append(f"  ! {failure}")
        return "\n".join(lines)


def selftest_sweep(seed: int = 0) -> CheckSweep:
    """The small bounded sweep the selftest explores.

    Depth-1 over a 4-node space: both planted mutations trip on a lone
    crash, and a ~60-schedule population keeps the selftest in CI-smoke
    territory.
    """
    return CheckSweep(space=ScheduleSpace(), depth=1, samples=0, seed=seed)


def run_selftest(
    mutation: str = DEFAULT_MUTATION,
    seed: int = 0,
    artifact_path: Optional[str] = None,
    max_minimize_runs: int = 200,
) -> SelftestReport:
    """Plant ``mutation``, prove the checker finds/minimizes/replays it.

    Never raises for a failed check — every broken stage lands in
    ``report.failures`` so CI prints the complete diagnosis; only an
    unknown mutation name raises :class:`~repro.errors.CheckError`.
    """
    registered = MUTATIONS.get(mutation)
    if registered is None:
        raise CheckError(
            f"unknown mutation {mutation!r}; "
            f"registered: {sorted(MUTATIONS)}"
        )
    report = SelftestReport(
        mutation=registered.name,
        expected_monitor=registered.expected_monitor,
    )
    sweep = selftest_sweep(seed=seed)
    minimal: Optional[FaultSchedule] = None

    with registered.plant():
        # 1-2. explore in-process (workers=0: the patch must stay applied).
        exploration = explore(
            sweep,
            workers=0,
            minimize=True,
            max_minimize_runs=max_minimize_runs,
        )
        report.schedules_run = len(exploration.results)
        report.violations_found = sum(
            1 for r in exploration.results if r.verdict == "violation"
        )
        if not exploration.counterexamples:
            report.failures.append(
                "the checker did not find the planted bug"
            )
            return report

        # 3. the minimal counterexample.
        counterexample = exploration.counterexamples[0]
        minimal = counterexample.minimized
        report.violation_index = counterexample.index
        report.caught_by = counterexample.result.monitor
        report.minimized_faults = minimal.depth
        report.minimize_runs = counterexample.minimize_runs
        if report.caught_by != registered.expected_monitor:
            report.failures.append(
                f"caught by [{report.caught_by}], expected "
                f"[{registered.expected_monitor}]"
            )
        if minimal.depth > MAX_MINIMAL_FAULTS:
            report.failures.append(
                f"minimal counterexample has {minimal.depth} faults "
                f"(> {MAX_MINIMAL_FAULTS})"
            )

        # 4. artifact round-trip, still under the mutation. The header
        # records the mutation so a later `repro check --replay` can
        # re-plant it and reproduce the run bit-for-bit.
        report.replay_ok = _replay_roundtrip(
            counterexample.result,
            artifact_path,
            report,
            extra={"mutation": registered.name},
        )

    # 5. un-planted, the minimal schedule must pass clean.
    clean = run_schedule(minimal)
    report.clean_after_unplant = clean.ok
    if not clean.ok:
        report.failures.append(
            "minimal counterexample still fails without the mutation "
            f"(verdict {clean.verdict!r}) — pre-existing bug or flaky "
            "checker"
        )
    return report


def _replay_roundtrip(
    result: CheckResult,
    artifact_path: Optional[str],
    report: SelftestReport,
    extra: Optional[Dict[str, str]] = None,
) -> bool:
    """Write the artifact (file or in-memory) and replay it bit-for-bit."""
    try:
        if artifact_path is not None:
            write_artifact(artifact_path, result, extra=extra)
            report.artifact_path = artifact_path
            replay_artifact(artifact_path)
        else:
            buffer = io.StringIO()
            write_artifact(buffer, result, extra=extra)
            buffer.seek(0)
            replay_artifact(buffer)
        return True
    except CheckError as error:
        report.failures.append(f"replay mismatch: {error}")
        return False


def minimize_planted(
    mutation: str, schedule: FaultSchedule, max_runs: int = 200
):
    """Minimize ``schedule`` with ``mutation`` planted (test helper)."""
    registered = MUTATIONS.get(mutation)
    if registered is None:
        raise CheckError(f"unknown mutation {mutation!r}")
    with registered.plant():
        return minimize_schedule(schedule, max_runs=max_runs)
