"""Systematic fault-schedule generation.

The checker's search space is described by a :class:`ScheduleSpace` — the
network shape plus the finite alphabet of fault actions worth scheduling on
it. Two generators walk it:

* :func:`enumerate_schedules` — **exhaustive breadth-first** enumeration of
  every combination of up to ``depth`` alphabet actions. Faults apply
  declaratively (each is anchored to its own time or frame index), so two
  orderings of the same action set execute identically; enumerating
  *combinations* instead of permutations keeps the frontier free of
  redundant schedules without losing coverage.
* :func:`sample_schedules` — **seeded guided-random** sampling beyond the
  exhaustive bound: deeper schedules drawn from the same alphabet, biased
  toward the adversarial structures the paper worries about (omissions on
  protocol frames of crashed nodes, inconsistent omissions with small
  accepting subsets, sender crashes timed before retransmission).

Both are fully deterministic functions of their arguments, which is what
lets the campaign engine regenerate schedule *i* inside any worker process
and lets ``repro check --replay`` find the same schedule years later.

The alphabet deliberately respects the fault model's degree bounds
(MCAN3/LCAN4): schedules with more omissions than the configured ``k``/``j``
would be outside the system model and their violations meaningless.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.check.schedule import (
    ACTION_CRASH,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_OMIT,
    OMISSION_CONSISTENT,
    OMISSION_INCONSISTENT,
    Fault,
    FaultSchedule,
)
from repro.errors import CheckError
from repro.sim.rng import derive_seed

#: Frame types worth attacking: the protocol control traffic. (DATA only
#: flows when a traffic source is scripted, so it is not in the default
#: alphabet.)
DEFAULT_FRAME_TYPES = ("FDA", "ELS", "RHA", "JOIN", "LEAVE")

#: Frame types whose identifier names the *sender* (crash_sender targets).
SENDER_NAMED_TYPES = ("ELS", "DATA")


@dataclass(frozen=True)
class ScheduleSpace:
    """The bounded space the explorer walks.

    Attributes:
        nodes: network population.
        members: initial full members (< nodes leaves late joiners for the
            ``join`` alphabet entries).
        crash_offsets_ms: candidate crash/leave/join firing times.
        frame_types: message types omission faults may target.
        nth_frames: which matching-frame ordinals omissions may hit.
        max_inconsistent: LCAN4's ``j`` — at most this many inconsistent
            omissions per schedule.
        max_omissions: MCAN3's ``k`` — at most this many omissions total.
        run_ms / tm_ms / thb_ms / tjoin_wait_ms / capacity: forwarded to
            every generated :class:`FaultSchedule`.
    """

    nodes: int = 5
    members: int = 4
    crash_offsets_ms: Tuple[float, ...] = (0.0, 25.0, 60.0)
    frame_types: Tuple[str, ...] = DEFAULT_FRAME_TYPES
    nth_frames: Tuple[int, ...] = (0, 1)
    max_inconsistent: int = 2
    max_omissions: int = 3
    run_ms: float = 400.0
    tm_ms: float = 50.0
    thb_ms: float = 10.0
    tjoin_wait_ms: float = 150.0
    capacity: int = 16

    def __post_init__(self) -> None:
        if not 2 <= self.members <= self.nodes <= self.capacity:
            raise CheckError(
                f"bad population: members={self.members} nodes={self.nodes} "
                f"capacity={self.capacity}"
            )
        if self.max_inconsistent < 0 or self.max_omissions < 0:
            raise CheckError("omission degree bounds must be non-negative")

    # -- the action alphabet ---------------------------------------------------

    def alphabet(self) -> List[Fault]:
        """Every atomic fault action the space admits, in a stable order."""
        actions: List[Fault] = []
        members = range(self.members)
        late = range(self.members, self.nodes)
        for offset in self.crash_offsets_ms:
            for node in members:
                actions.append(
                    Fault(ACTION_CRASH, node=node, at_ms=offset)
                )
                actions.append(
                    Fault(ACTION_LEAVE, node=node, at_ms=offset)
                )
            for node in late:
                actions.append(Fault(ACTION_JOIN, node=node, at_ms=offset))
        for frame_type in self.frame_types:
            for nth in self.nth_frames:
                actions.append(
                    Fault(
                        ACTION_OMIT,
                        frame_type=frame_type,
                        nth=nth,
                        omission=OMISSION_CONSISTENT,
                    )
                )
                # One-receiver accepting subsets: the smallest (and most
                # adversarial) inconsistency — exactly the paper's
                # last-two-bits scenario at a single node.
                for accepting in range(min(2, self.members)):
                    actions.append(
                        Fault(
                            ACTION_OMIT,
                            frame_type=frame_type,
                            nth=nth,
                            omission=OMISSION_INCONSISTENT,
                            accepting=(accepting,),
                        )
                    )
        # Duplicate-generation timing: a sender's frame suffers an
        # inconsistent omission and the sender dies before retransmitting.
        for frame_type in self.frame_types:
            if frame_type not in SENDER_NAMED_TYPES:
                continue
            for node in range(min(2, self.members)):
                actions.append(
                    Fault(
                        ACTION_OMIT,
                        node=node,
                        frame_type=frame_type,
                        nth=0,
                        omission=OMISSION_INCONSISTENT,
                        accepting=((node + 1) % self.members,),
                        crash_sender=True,
                    )
                )
        return actions

    # -- model-bound admissibility ------------------------------------------------

    def admits(self, faults: Sequence[Fault]) -> bool:
        """True when ``faults`` respects the space's fault-model bounds."""
        omissions = [f for f in faults if f.action == ACTION_OMIT]
        if len(omissions) > self.max_omissions:
            return False
        inconsistent = [
            f for f in omissions if f.omission == OMISSION_INCONSISTENT
        ]
        if len(inconsistent) > self.max_inconsistent:
            return False
        # Keep at least two correct members alive: an emptied network has
        # no view to check agreement on.
        crashed = {f.node for f in faults if f.action == ACTION_CRASH}
        crashed |= {f.node for f in omissions if f.crash_sender}
        left = {f.node for f in faults if f.action == ACTION_LEAVE}
        if self.members - len(crashed | left) < 2:
            return False
        # At most one timed action per node: a second crash of a crashed
        # node (or leave-after-crash) is a no-op permutation of a shallower
        # schedule.
        timed = [
            f.node
            for f in faults
            if f.action in (ACTION_CRASH, ACTION_LEAVE, ACTION_JOIN)
        ]
        if len(timed) != len(set(timed)):
            return False
        return True

    def schedule(self, faults: Sequence[Fault], seed: int) -> FaultSchedule:
        """Wrap ``faults`` into an executable schedule."""
        return FaultSchedule(
            nodes=self.nodes,
            members=self.members,
            faults=tuple(faults),
            run_ms=self.run_ms,
            tm_ms=self.tm_ms,
            thb_ms=self.thb_ms,
            tjoin_wait_ms=self.tjoin_wait_ms,
            capacity=self.capacity,
            seed=seed,
        )


def enumerate_schedules(
    space: ScheduleSpace, depth: int
) -> Iterator[FaultSchedule]:
    """Exhaustive BFS: every admissible schedule of up to ``depth`` actions.

    Breadth-first order (all depth-0 schedules, then depth-1, ...) so a
    budget-truncated sweep still covers the shallow space completely — and
    the first counterexample found is already depth-minimal.
    """
    if depth < 0:
        raise CheckError(f"depth must be >= 0: {depth}")
    alphabet = space.alphabet()
    index = 0
    for size in range(depth + 1):
        for combo in itertools.combinations(alphabet, size):
            if not space.admits(combo):
                continue
            yield space.schedule(combo, seed=index)
            index += 1


def sample_schedules(
    space: ScheduleSpace,
    count: int,
    seed: int = 0,
    min_depth: int = 2,
    max_depth: int = 5,
) -> Iterator[FaultSchedule]:
    """Seeded guided-random sampling beyond the exhaustive bound.

    Draws ``count`` admissible schedules of ``min_depth..max_depth``
    actions. The guidance: half of all draws are *focused* — they pick one
    victim node and stack its crash with omissions on the protocol frames
    that disseminate that very failure (FDA/RHA), the timing interactions
    where agreement bugs hide. The other half are uniform over the
    alphabet. Deterministic in (space, count, seed).
    """
    if count < 0:
        raise CheckError(f"count must be >= 0: {count}")
    if not 0 <= min_depth <= max_depth:
        raise CheckError(f"bad depth range {min_depth}..{max_depth}")
    alphabet = space.alphabet()
    omissions = [f for f in alphabet if f.action == ACTION_OMIT]
    crashes = [f for f in alphabet if f.action == ACTION_CRASH]
    produced = 0
    draw = 0
    while produced < count:
        rng = random.Random(derive_seed(seed, f"check/sample/{draw}"))
        draw += 1
        size = rng.randint(min_depth, max_depth)
        faults: List[Fault]
        if crashes and omissions and rng.random() < 0.5:
            # Focused draw: one crash plus omissions clustered on the
            # failure-dissemination traffic.
            crash = rng.choice(crashes)
            cluster = [
                f
                for f in omissions
                if f.frame_type in ("FDA", "RHA", "ELS")
            ] or omissions
            faults = [crash] + rng.sample(
                cluster, min(size - 1, len(cluster))
            )
        else:
            faults = rng.sample(alphabet, min(size, len(alphabet)))
        if not space.admits(faults):
            continue
        yield space.schedule(faults, seed=derive_seed(seed, f"sample/{draw}"))
        produced += 1


def schedule_population(
    space: ScheduleSpace,
    depth: int,
    samples: int = 0,
    seed: int = 0,
    sample_max_depth: int = 5,
) -> List[FaultSchedule]:
    """The checker's standard population: the exhaustive sweep up to
    ``depth`` followed by ``samples`` guided-random deeper schedules.

    Deterministic in its arguments; schedule ``i`` of the returned list is
    what a campaign worker regenerates from ``(space, depth, samples,
    seed, i)``.
    """
    population = list(enumerate_schedules(space, depth))
    population.extend(
        sample_schedules(
            space,
            samples,
            seed=seed,
            min_depth=min(depth + 1, sample_max_depth),
            max_depth=sample_max_depth,
        )
    )
    return population
