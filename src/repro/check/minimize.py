"""Delta-debugging fault schedules down to minimal counterexamples.

A violating schedule found deep in the sampled space often carries faults
that have nothing to do with the violation. :func:`minimize_schedule` is
the classic ddmin loop (Zeller & Hildebrandt) over the schedule's fault
tuple: repeatedly re-execute candidate sub-schedules, keep any that still
violate, and stop at 1-minimality — removing *any single remaining fault*
makes the violation disappear.

The oracle is deterministic (:func:`repro.check.runner.run_schedule`), so
no retries or flakiness handling are needed; a cache keyed on the fault
tuple avoids re-running sub-schedules ddmin proposes twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.check.runner import CheckResult, run_schedule
from repro.check.schedule import Fault, FaultSchedule

Oracle = Callable[[FaultSchedule], CheckResult]


@dataclass
class MinimizationOutcome:
    """What the minimizer produced.

    ``schedule``/``result`` are the 1-minimal violating schedule and its
    run; ``runs`` counts oracle executions (cache misses only).
    """

    schedule: FaultSchedule
    result: CheckResult
    runs: int


def minimize_schedule(
    schedule: FaultSchedule,
    oracle: Oracle = run_schedule,
    max_runs: int = 200,
) -> MinimizationOutcome:
    """Shrink ``schedule`` to a 1-minimal violating sub-schedule.

    ``schedule`` must violate under ``oracle`` (asserted on entry: a
    non-violating input would "minimize" to garbage). ``max_runs`` bounds
    the oracle budget; when exhausted the best schedule found so far is
    returned — still violating, possibly not yet 1-minimal.
    """
    cache: Dict[Tuple[Fault, ...], CheckResult] = {}
    runs = [0]

    def probe(candidate: FaultSchedule) -> CheckResult:
        key = candidate.faults
        hit = cache.get(key)
        if hit is not None:
            return hit
        runs[0] += 1
        result = oracle(candidate)
        cache[key] = result
        return result

    current = schedule
    result = probe(current)
    if not result.violating:
        raise ValueError(
            "minimize_schedule needs a violating schedule; got verdict "
            f"{result.verdict!r}"
        )

    granularity = 2
    while current.depth >= 2 and runs[0] < max_runs:
        chunks = _partition(current.depth, granularity)
        reduced = False
        # Try each chunk alone ("subset"), then its complement.
        for chunk in chunks:
            if runs[0] >= max_runs:
                break
            complement = current.without(
                i for i in range(current.depth) if i not in chunk
            )
            if complement.depth and probe(complement).violating:
                current, result = complement, probe(complement)
                granularity = 2
                reduced = True
                break
            subset = current.without(chunk)
            if subset.depth and probe(subset).violating:
                current, result = subset, probe(subset)
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= current.depth:
                break  # 1-minimal
            granularity = min(current.depth, granularity * 2)
    return MinimizationOutcome(schedule=current, result=result, runs=runs[0])


def _partition(length: int, pieces: int) -> Tuple[Tuple[int, ...], ...]:
    """Split ``range(length)`` into ``pieces`` near-equal index chunks."""
    pieces = min(pieces, length)
    base, extra = divmod(length, pieces)
    chunks = []
    start = 0
    for piece in range(pieces):
        size = base + (1 if piece < extra else 0)
        chunks.append(tuple(range(start, start + size)))
        start += size
    return tuple(chunks)
