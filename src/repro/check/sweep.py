"""Parallel exploration: the checker riding the campaign engine.

A :class:`CheckSweep` adapts a schedule population (exhaustive BFS plus
guided samples, :func:`repro.check.explorer.schedule_population`) to the
interface :func:`repro.campaign.engine.run_campaign` drives — ``scenarios``
and ``scenario_seed(index)`` — so schedule execution inherits the engine's
process isolation, per-schedule timeouts, crash retries and JSONL
checkpoint/resume for free. Workers regenerate schedule *i* from the sweep
parameters (the population is a deterministic function of them), so
nothing but the sweep itself crosses the process boundary.

:func:`explore` is the checker's front door: run the whole population,
then delta-debug every violation to a 1-minimal counterexample and emit a
replayable artifact per violation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.engine import run_campaign
from repro.campaign.spec import ScenarioResult
from repro.check.artifact import write_artifact
from repro.check.explorer import ScheduleSpace, schedule_population
from repro.check.minimize import minimize_schedule
from repro.check.runner import (
    CHECK_VIOLATION,
    CheckResult,
    run_schedule,
)
from repro.check.schedule import ACTION_CRASH, FaultSchedule
from repro.errors import CheckError

ProgressFn = Callable[[ScenarioResult], None]

#: Populations are deterministic in the sweep, so regenerating one per
#: process is pure overhead after the first time — memoize per sweep.
_POPULATION_CACHE: Dict["CheckSweep", List[FaultSchedule]] = {}


@dataclass(frozen=True)
class CheckSweep:
    """One exploration run: a space, an exhaustive depth, a sample budget.

    Satisfies the campaign engine's spec protocol: ``scenarios`` is the
    population size and ``scenario_seed(i)`` is schedule ``i``'s own seed,
    which makes checkpoint resume validation (seed must match) carry over
    unchanged.
    """

    space: ScheduleSpace = field(default_factory=ScheduleSpace)
    depth: int = 1
    samples: int = 0
    seed: int = 0
    sample_max_depth: int = 5

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise CheckError(f"depth must be >= 0: {self.depth}")
        if self.samples < 0:
            raise CheckError(f"samples must be >= 0: {self.samples}")

    def population(self) -> List[FaultSchedule]:
        """Every schedule this sweep runs, in execution order (memoized)."""
        cached = _POPULATION_CACHE.get(self)
        if cached is None:
            cached = schedule_population(
                self.space,
                depth=self.depth,
                samples=self.samples,
                seed=self.seed,
                sample_max_depth=self.sample_max_depth,
            )
            _POPULATION_CACHE[self] = cached
        return cached

    def schedule(self, index: int) -> FaultSchedule:
        """Schedule ``index`` of the population."""
        population = self.population()
        if not 0 <= index < len(population):
            raise CheckError(
                f"schedule index {index} outside population of "
                f"{len(population)}"
            )
        return population[index]

    # -- campaign-engine spec protocol --------------------------------------------

    @property
    def scenarios(self) -> int:
        """Population size (campaign-engine spec protocol)."""
        return len(self.population())

    def scenario_seed(self, index: int) -> int:
        """Schedule ``index``'s own seed (campaign-engine spec protocol)."""
        return self.schedule(index).seed


def run_check_scenario(sweep: CheckSweep, index: int) -> ScenarioResult:
    """Campaign ``scenario_fn``: execute schedule ``index`` of ``sweep``.

    The check verdicts are a subset of the campaign verdicts by
    construction, so they pass through unchanged; the check-specific
    payload (fingerprint, violated monitor, the schedule itself) rides in
    the result's ``metrics`` dict and survives JSONL checkpointing.
    """
    schedule = sweep.schedule(index)
    check = run_schedule(schedule)
    crashes = sum(
        1
        for fault in schedule.faults
        if fault.action == ACTION_CRASH or fault.crash_sender
    )
    return ScenarioResult(
        index=index,
        seed=schedule.seed,
        verdict=check.verdict,
        nodes=schedule.nodes,
        crashes=crashes,
        metrics={
            "check": {
                "fingerprint": check.fingerprint,
                "monitor": check.monitor,
                "events": check.events,
                "final_members": check.final_members,
                "expected_members": check.expected_members,
                "schedule": schedule.to_dict(),
            }
        },
        detail=check.detail,
        violation_slice=check.violation_slice,
        elapsed_s=check.elapsed_s,
    )


@dataclass
class Counterexample:
    """One violation, minimized and (optionally) written to disk."""

    index: int
    schedule: FaultSchedule
    minimized: FaultSchedule
    result: CheckResult
    minimize_runs: int
    artifact_path: Optional[str] = None

    def describe(self) -> str:
        """One paragraph for reports and the CLI."""
        lines = [
            f"schedule #{self.index} "
            f"({self.schedule.depth} -> {self.minimized.depth} faults, "
            f"{self.minimize_runs} minimizer runs):",
            f"  [{self.result.monitor}] "
            + self.result.detail.splitlines()[0],
        ]
        for fault in self.minimized.faults:
            lines.append(f"  - {fault.describe()}")
        if self.artifact_path:
            lines.append(f"  artifact: {self.artifact_path}")
        return "\n".join(lines)


@dataclass
class ExplorationReport:
    """What :func:`explore` found across the whole population."""

    sweep: CheckSweep
    results: List[ScenarioResult]
    counterexamples: List[Counterexample]

    @property
    def ok(self) -> bool:
        """True when every schedule ran and every invariant held."""
        return all(r.ok for r in self.results)

    def counts(self) -> Dict[str, int]:
        """Verdict histogram over the population."""
        histogram: Dict[str, int] = {}
        for result in self.results:
            histogram[result.verdict] = histogram.get(result.verdict, 0) + 1
        return histogram

    def summary(self) -> str:
        """One line for logs: population size and verdict counts."""
        counts = ", ".join(
            f"{verdict}={count}" for verdict, count in sorted(self.counts().items())
        )
        return (
            f"{len(self.results)} schedules "
            f"(depth<={self.sweep.depth} exhaustive + "
            f"{self.sweep.samples} sampled): {counts or 'empty'}"
        )


def explore(
    sweep: CheckSweep,
    workers: int = 0,
    timeout: float = 120.0,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    minimize: bool = True,
    max_minimize_runs: int = 200,
    artifact_dir: Optional[str] = None,
) -> ExplorationReport:
    """Run the sweep's whole population and minimize every violation.

    ``workers``/``timeout``/``retries``/``checkpoint``/``resume`` forward
    to :func:`~repro.campaign.engine.run_campaign` (``workers=0`` runs
    in-process — required when the code under test is monkeypatched, as in
    the planted-bug selftest, since a patch does not necessarily survive
    into spawned worker processes). Minimization and artifact writing
    always happen in the parent process, re-executing schedules through the
    deterministic runner.
    """
    results = run_campaign(
        sweep,
        workers=workers,
        timeout=timeout,
        retries=retries,
        checkpoint=checkpoint,
        resume=resume,
        scenario_fn=run_check_scenario,
        progress=progress,
    )
    counterexamples: List[Counterexample] = []
    for result in results:
        if result.verdict != CHECK_VIOLATION:
            continue
        schedule = sweep.schedule(result.index)
        if minimize:
            outcome = minimize_schedule(
                schedule, max_runs=max_minimize_runs
            )
            minimized, check, runs = (
                outcome.schedule,
                outcome.result,
                outcome.runs,
            )
        else:
            minimized, check, runs = schedule, run_schedule(schedule), 1
        counterexample = Counterexample(
            index=result.index,
            schedule=schedule,
            minimized=minimized,
            result=check,
            minimize_runs=runs,
        )
        if artifact_dir is not None:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(
                artifact_dir, f"counterexample-{result.index}.jsonl"
            )
            write_artifact(path, check)
            counterexample.artifact_path = path
        counterexamples.append(counterexample)
    return ExplorationReport(
        sweep=sweep, results=results, counterexamples=counterexamples
    )
