"""Parallel exploration: the checker riding the campaign fabric.

A :class:`CheckSweep` adapts a schedule population (exhaustive BFS plus
guided samples, :func:`repro.check.explorer.schedule_population`) to the
interface :func:`repro.campaign.engine.run_campaign` drives — ``scenarios``
and ``scenario_seed(index)`` — so schedule execution inherits the engine's
process isolation, per-schedule timeouts, crash retries, JSONL
checkpoint/resume and pluggable executors (local pool or the remote work
queue) for free. Workers regenerate schedule *i* from the sweep parameters
(the population is a deterministic function of them), so nothing but the
sweep itself crosses the process boundary; dynamically generated
populations (coverage-guided mutation batches) travel as an explicit
:class:`ScheduleBatch` instead.

Two exploration strategies sit on top:

* :func:`explore` — run a fixed population, optionally deduplicated
  against a persistent :class:`~repro.campaign.store.FingerprintStore`:
  schedules the store has already seen are *not executed again*; their
  recorded verdict and trace fingerprint are returned as cached results.
* :func:`explore_coverage` — a fuzzer over
  :class:`~repro.check.explorer.ScheduleSpace`: start from the shallow
  exhaustive frontier, then preferentially mutate schedules whose runs
  produced *new* trace fingerprints, instead of blind BFS/random
  sampling. The fingerprint store is both the dedup filter (never run a
  known schedule) and the novelty signal (grow the corpus only on new
  behaviour).

Both delta-debug every violation to a 1-minimal counterexample and emit a
replayable artifact per violation.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.engine import run_campaign
from repro.campaign.executors import Executor
from repro.campaign.spec import ScenarioResult
from repro.campaign.store import FingerprintStore, schedule_key
from repro.check.artifact import write_artifact
from repro.check.explorer import (
    ScheduleSpace,
    enumerate_schedules,
    schedule_population,
)
from repro.check.minimize import minimize_schedule
from repro.check.runner import (
    CHECK_VIOLATION,
    CheckResult,
    run_schedule,
)
from repro.check.schedule import ACTION_CRASH, FaultSchedule
from repro.errors import CheckError
from repro.sim.rng import derive_seed

ProgressFn = Callable[[ScenarioResult], None]

#: Populations are deterministic in the sweep, so regenerating one per
#: process is pure overhead after the first time — memoize per sweep.
_POPULATION_CACHE: Dict["CheckSweep", List[FaultSchedule]] = {}


@dataclass(frozen=True)
class CheckSweep:
    """One exploration run: a space, an exhaustive depth, a sample budget.

    Satisfies the campaign engine's spec protocol: ``scenarios`` is the
    population size and ``scenario_seed(i)`` is schedule ``i``'s own seed,
    which makes checkpoint resume validation (seed must match) carry over
    unchanged.
    """

    space: ScheduleSpace = field(default_factory=ScheduleSpace)
    depth: int = 1
    samples: int = 0
    seed: int = 0
    sample_max_depth: int = 5

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise CheckError(f"depth must be >= 0: {self.depth}")
        if self.samples < 0:
            raise CheckError(f"samples must be >= 0: {self.samples}")

    def population(self) -> List[FaultSchedule]:
        """Every schedule this sweep runs, in execution order (memoized)."""
        cached = _POPULATION_CACHE.get(self)
        if cached is None:
            cached = schedule_population(
                self.space,
                depth=self.depth,
                samples=self.samples,
                seed=self.seed,
                sample_max_depth=self.sample_max_depth,
            )
            _POPULATION_CACHE[self] = cached
        return cached

    def schedule(self, index: int) -> FaultSchedule:
        """Schedule ``index`` of the population."""
        population = self.population()
        if not 0 <= index < len(population):
            raise CheckError(
                f"schedule index {index} outside population of "
                f"{len(population)}"
            )
        return population[index]

    # -- campaign-engine spec protocol --------------------------------------------

    @property
    def scenarios(self) -> int:
        """Population size (campaign-engine spec protocol)."""
        return len(self.population())

    def scenario_seed(self, index: int) -> int:
        """Schedule ``index``'s own seed (campaign-engine spec protocol)."""
        return self.schedule(index).seed


@dataclass(frozen=True)
class ScheduleBatch:
    """An explicit schedule list behind the campaign-engine spec protocol.

    Where :class:`CheckSweep` lets workers *regenerate* schedule ``i``
    from sweep parameters, a batch carries its schedules outright — the
    shape coverage-guided exploration needs, since a mutated population
    is not a function of a few scalars. Plain frozen data, so it pickles
    across process boundaries and over the remote fabric unchanged.
    """

    schedules: Tuple[FaultSchedule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedules", tuple(self.schedules))

    @property
    def scenarios(self) -> int:
        """Batch size (campaign-engine spec protocol)."""
        return len(self.schedules)

    def scenario_seed(self, index: int) -> int:
        """Schedule ``index``'s own seed (campaign-engine spec protocol)."""
        return self.schedules[index].seed


def _schedule_result(schedule: FaultSchedule, index: int) -> ScenarioResult:
    """Execute one schedule and fold the check payload into a campaign
    result (the shared body of the two campaign ``scenario_fn`` shapes)."""
    check = run_schedule(schedule)
    crashes = sum(
        1
        for fault in schedule.faults
        if fault.action == ACTION_CRASH or fault.crash_sender
    )
    return ScenarioResult(
        index=index,
        seed=schedule.seed,
        verdict=check.verdict,
        nodes=schedule.nodes,
        crashes=crashes,
        metrics={
            "check": {
                "fingerprint": check.fingerprint,
                "monitor": check.monitor,
                "events": check.events,
                "final_members": check.final_members,
                "expected_members": check.expected_members,
                "schedule": schedule.to_dict(),
            }
        },
        detail=check.detail,
        violation_slice=check.violation_slice,
        elapsed_s=check.elapsed_s,
    )


def run_check_scenario(sweep: CheckSweep, index: int) -> ScenarioResult:
    """Campaign ``scenario_fn``: execute schedule ``index`` of ``sweep``.

    The check verdicts are a subset of the campaign verdicts by
    construction, so they pass through unchanged; the check-specific
    payload (fingerprint, violated monitor, the schedule itself) rides in
    the result's ``metrics`` dict and survives JSONL checkpointing.
    """
    return _schedule_result(sweep.schedule(index), index)


def run_batch_scenario(batch: ScheduleBatch, index: int) -> ScenarioResult:
    """Campaign ``scenario_fn``: execute schedule ``index`` of ``batch``."""
    return _schedule_result(batch.schedules[index], index)


def _cached_result(
    index: int, schedule: FaultSchedule, record: Dict
) -> ScenarioResult:
    """A result synthesized from the fingerprint store instead of a run."""
    return ScenarioResult(
        index=index,
        seed=schedule.seed,
        verdict=record["verdict"],
        metrics={
            "check": {
                "fingerprint": record["trace"],
                "cached": True,
                "schedule": schedule.to_dict(),
            }
        },
        detail="deduplicated: schedule already explored (fingerprint store)",
    )


@dataclass
class Counterexample:
    """One violation, minimized and (optionally) written to disk."""

    index: int
    schedule: FaultSchedule
    minimized: FaultSchedule
    result: CheckResult
    minimize_runs: int
    artifact_path: Optional[str] = None

    def describe(self) -> str:
        """One paragraph for reports and the CLI."""
        lines = [
            f"schedule #{self.index} "
            f"({self.schedule.depth} -> {self.minimized.depth} faults, "
            f"{self.minimize_runs} minimizer runs):",
            f"  [{self.result.monitor}] "
            + self.result.detail.splitlines()[0],
        ]
        for fault in self.minimized.faults:
            lines.append(f"  - {fault.describe()}")
        if self.artifact_path:
            lines.append(f"  artifact: {self.artifact_path}")
        return "\n".join(lines)


def _minimize_violations(
    violations: List[Tuple[int, FaultSchedule]],
    minimize: bool,
    max_minimize_runs: int,
    artifact_dir: Optional[str],
) -> List[Counterexample]:
    """Delta-debug each violating schedule and (optionally) persist it.

    Always runs in the parent process, re-executing schedules through the
    deterministic runner, so it works under monkeypatched code too.
    """
    counterexamples: List[Counterexample] = []
    for index, schedule in violations:
        if minimize:
            outcome = minimize_schedule(schedule, max_runs=max_minimize_runs)
            minimized, check, runs = (
                outcome.schedule,
                outcome.result,
                outcome.runs,
            )
        else:
            minimized, check, runs = schedule, run_schedule(schedule), 1
        counterexample = Counterexample(
            index=index,
            schedule=schedule,
            minimized=minimized,
            result=check,
            minimize_runs=runs,
        )
        if artifact_dir is not None:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(artifact_dir, f"counterexample-{index}.jsonl")
            write_artifact(path, check)
            counterexample.artifact_path = path
        counterexamples.append(counterexample)
    return counterexamples


@dataclass
class ExplorationReport:
    """What :func:`explore` found across the whole population."""

    sweep: CheckSweep
    results: List[ScenarioResult]
    counterexamples: List[Counterexample]

    @property
    def ok(self) -> bool:
        """True when every schedule ran and every invariant held."""
        return all(r.ok for r in self.results)

    @property
    def deduplicated(self) -> int:
        """How many schedules were answered from the fingerprint store."""
        return sum(
            1
            for r in self.results
            if (r.metrics.get("check") or {}).get("cached")
        )

    def counts(self) -> Dict[str, int]:
        """Verdict histogram over the population."""
        histogram: Dict[str, int] = {}
        for result in self.results:
            histogram[result.verdict] = histogram.get(result.verdict, 0) + 1
        return histogram

    def summary(self) -> str:
        """One line for logs: population size and verdict counts."""
        counts = ", ".join(
            f"{verdict}={count}" for verdict, count in sorted(self.counts().items())
        )
        cached = self.deduplicated
        dedup = f", {cached} deduplicated" if cached else ""
        return (
            f"{len(self.results)} schedules "
            f"(depth<={self.sweep.depth} exhaustive + "
            f"{self.sweep.samples} sampled): {counts or 'empty'}{dedup}"
        )


def explore(
    sweep: CheckSweep,
    workers: int = 0,
    timeout: float = 120.0,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    minimize: bool = True,
    max_minimize_runs: int = 200,
    artifact_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
    fingerprint_store: Optional[FingerprintStore] = None,
    scenario_fn=run_check_scenario,
) -> ExplorationReport:
    """Run the sweep's whole population and minimize every violation.

    ``workers``/``timeout``/``retries``/``checkpoint``/``resume``/
    ``executor`` forward to :func:`~repro.campaign.engine.run_campaign`
    (``workers=0`` runs in-process — required when the code under test is
    monkeypatched, as in the planted-bug selftest, since a patch does not
    necessarily survive into spawned worker processes). With a
    ``fingerprint_store``, schedules the store has already explored are
    never re-executed: their stored verdict and trace fingerprint come
    back as cached results, and every fresh run is recorded into the
    store afterwards. Minimization and artifact writing always happen in
    the parent process, re-executing schedules through the deterministic
    runner.
    """
    prior: Optional[Dict[int, ScenarioResult]] = None
    if fingerprint_store is not None:
        prior = {}
        for index in range(sweep.scenarios):
            schedule = sweep.schedule(index)
            record = fingerprint_store.lookup(schedule_key(schedule))
            if record is not None:
                prior[index] = _cached_result(index, schedule, record)
    results = run_campaign(
        sweep,
        workers=workers,
        timeout=timeout,
        retries=retries,
        checkpoint=checkpoint,
        resume=resume,
        scenario_fn=scenario_fn,
        progress=progress,
        executor=executor,
        prior_results=prior,
    )
    if fingerprint_store is not None:
        for result in results:
            check = result.metrics.get("check") or {}
            fingerprint = check.get("fingerprint")
            if fingerprint and not check.get("cached"):
                fingerprint_store.record(
                    schedule_key(sweep.schedule(result.index)),
                    fingerprint,
                    result.verdict,
                    seed=result.seed,
                )
    violations = [
        (result.index, sweep.schedule(result.index))
        for result in results
        if result.verdict == CHECK_VIOLATION
    ]
    counterexamples = _minimize_violations(
        violations, minimize, max_minimize_runs, artifact_dir
    )
    return ExplorationReport(
        sweep=sweep, results=results, counterexamples=counterexamples
    )


# -- coverage-guided exploration -----------------------------------------------


def mutate_schedule(
    space: ScheduleSpace,
    schedule: FaultSchedule,
    rng: random.Random,
    seed: int,
    max_tries: int = 12,
) -> Optional[FaultSchedule]:
    """One admissible structural mutation of ``schedule``.

    Operators, all drawn from the space's own alphabet so mutants stay
    inside the fault model: *add* an alphabet action, *remove* a
    scheduled action, *replace* one with a fresh alphabet draw. Returns
    None when ``max_tries`` draws produce nothing admissible and
    structurally new. Deterministic in (schedule, rng state).
    """
    alphabet = space.alphabet()
    if not alphabet:
        return None
    for _ in range(max_tries):
        faults = list(schedule.faults)
        operators = ["add"]
        if faults:
            operators += ["remove", "replace"]
        operator = rng.choice(operators)
        if operator == "add":
            faults.insert(
                rng.randrange(len(faults) + 1), rng.choice(alphabet)
            )
        elif operator == "remove":
            del faults[rng.randrange(len(faults))]
        else:
            faults[rng.randrange(len(faults))] = rng.choice(alphabet)
        if tuple(faults) == schedule.faults:
            continue
        if not space.admits(faults):
            continue
        return space.schedule(faults, seed=seed)
    return None


@dataclass
class CoverageReport:
    """What :func:`explore_coverage` did with its budget."""

    space: ScheduleSpace
    budget: int
    executed: int
    deduplicated: int
    new_fingerprints: int
    rounds: int
    corpus_size: int
    results: List[ScenarioResult]
    counterexamples: List[Counterexample]

    @property
    def ok(self) -> bool:
        """True when every executed schedule kept every invariant."""
        return all(r.ok for r in self.results)

    def counts(self) -> Dict[str, int]:
        """Verdict histogram over the executed schedules."""
        histogram: Dict[str, int] = {}
        for result in self.results:
            histogram[result.verdict] = histogram.get(result.verdict, 0) + 1
        return histogram

    def summary(self) -> str:
        """One line for logs: budget use, novelty yield, verdicts."""
        counts = ", ".join(
            f"{verdict}={count}"
            for verdict, count in sorted(self.counts().items())
        )
        return (
            f"coverage sweep: {self.executed}/{self.budget} schedules "
            f"executed in {self.rounds} round(s), "
            f"{self.deduplicated} deduplicated, "
            f"{self.new_fingerprints} new fingerprint(s), "
            f"corpus {self.corpus_size}: {counts or 'nothing run'}"
        )


def explore_coverage(
    space: ScheduleSpace,
    budget: int,
    store: Optional[FingerprintStore] = None,
    seed: int = 0,
    batch_size: int = 16,
    init_depth: int = 1,
    workers: int = 0,
    timeout: float = 120.0,
    retries: int = 1,
    progress: Optional[ProgressFn] = None,
    minimize: bool = True,
    max_minimize_runs: int = 200,
    artifact_dir: Optional[str] = None,
    executor: Optional[Executor] = None,
    scenario_fn=run_batch_scenario,
    max_stale_proposals: int = 400,
) -> CoverageReport:
    """Coverage-guided exploration: mutate what produced new behaviour.

    The loop seeds its candidate stream with the exhaustive frontier up
    to ``init_depth``, executes candidates in batches of ``batch_size``
    through :func:`~repro.campaign.engine.run_campaign` (so isolation,
    retries and any executor — local pool or remote queue — carry over),
    and records every run in the fingerprint ``store``. A schedule whose
    run produced a trace fingerprint the store had *never seen* joins the
    corpus; further candidates are mutations of corpus schedules,
    weighted toward recent discoveries. Candidates whose structural key
    the store already holds are skipped before dispatch — across calls
    too, since the store persists: rerunning a sweep against the same
    store executes nothing.

    Stops at ``budget`` executed schedules, or earlier when
    ``max_stale_proposals`` consecutive proposals were all duplicates or
    inadmissible (the space is exhausted near the corpus). Fully
    deterministic in (space, budget, seed, store contents).
    """
    if budget < 0:
        raise CheckError(f"budget must be >= 0: {budget}")
    if batch_size < 1:
        raise CheckError(f"batch_size must be >= 1: {batch_size}")
    store = store if store is not None else FingerprintStore(None)

    corpus: List[FaultSchedule] = []
    results: List[ScenarioResult] = []
    ran: List[FaultSchedule] = []
    proposed_keys: set = set()
    executed = deduplicated = new_fingerprints = rounds = 0
    frontier = iter(enumerate_schedules(space, init_depth))
    proposal = 0
    stale = 0

    def next_candidate() -> Optional[FaultSchedule]:
        """The next schedule worth proposing: frontier first, then
        corpus mutations, then (corpus still empty) guided samples."""
        nonlocal proposal
        candidate = next(frontier, None)
        if candidate is not None:
            return candidate
        proposal += 1
        rng = random.Random(derive_seed(seed, f"coverage/{proposal}"))
        mutant_seed = derive_seed(seed, f"coverage/schedule/{proposal}")
        if corpus:
            # Weight parent choice toward the newest corpus entries: the
            # frontier of undiscovered behaviour is usually near the most
            # recent discovery, not the oldest.
            if len(corpus) > 1 and rng.random() < 0.7:
                parent = corpus[
                    rng.randrange(len(corpus) // 2, len(corpus))
                ]
            else:
                parent = corpus[rng.randrange(len(corpus))]
            return mutate_schedule(space, parent, rng, seed=mutant_seed)
        # No novelty yet to guide us: fall back to an empty-schedule
        # mutation, i.e. a fresh draw from the alphabet.
        return mutate_schedule(
            space, space.schedule((), seed=0), rng, seed=mutant_seed
        )

    while executed < budget and stale < max_stale_proposals:
        batch: List[FaultSchedule] = []
        while (
            len(batch) < min(batch_size, budget - executed)
            and stale < max_stale_proposals
        ):
            candidate = next_candidate()
            if candidate is None:
                stale += 1
                continue
            key = schedule_key(candidate)
            if key in proposed_keys:
                stale += 1
                continue
            proposed_keys.add(key)
            if store.lookup(key) is not None:
                deduplicated += 1
                stale += 1
                continue
            stale = 0
            batch.append(candidate)
        if not batch:
            break
        rounds += 1
        batch_results = run_campaign(
            ScheduleBatch(tuple(batch)),
            workers=workers,
            timeout=timeout,
            retries=retries,
            scenario_fn=scenario_fn,
            progress=progress,
            executor=executor,
        )
        for schedule, result in zip(batch, batch_results):
            check = result.metrics.get("check") or {}
            fingerprint = check.get("fingerprint", "")
            novel = False
            if fingerprint:
                novel = store.record(
                    schedule_key(schedule),
                    fingerprint,
                    result.verdict,
                    seed=schedule.seed,
                )
            if novel:
                corpus.append(schedule)
                new_fingerprints += 1
            # Re-index into the global execution order so counterexample
            # labels stay unique across batches.
            result.index = executed + result.index
            results.append(result)
        ran.extend(batch)
        executed += len(batch)
        # The batch may have grown the corpus, opening mutation parents
        # that did not exist while proposals were going stale — give the
        # proposal stream a fresh stale budget for the next round.
        stale = 0

    violations = [
        (result.index, ran[result.index])
        for result in results
        if result.verdict == CHECK_VIOLATION
    ]
    counterexamples = _minimize_violations(
        violations, minimize, max_minimize_runs, artifact_dir
    )
    return CoverageReport(
        space=space,
        budget=budget,
        executed=executed,
        deduplicated=deduplicated,
        new_fingerprints=new_fingerprints,
        rounds=rounds,
        corpus_size=len(corpus),
        results=results,
        counterexamples=counterexamples,
    )
