"""Fault schedules: the plain-data unit the checker explores.

A :class:`FaultSchedule` is one point of the bounded fault-schedule space —
a network shape plus an ordered tuple of :class:`Fault` actions (crashes,
scripted consistent/inconsistent omissions on specific frames, duplicate
generation via sender-crash timing, join/leave interleavings). Schedules
are *pure data*: primitives and tuples only, so they

* serialize losslessly to/from JSON (counterexample artifacts, checkpoint
  lines, campaign results),
* cross process boundaries under any multiprocessing start method, and
* compare/hash structurally, which the delta-debugging minimizer relies on.

Executing a schedule is :func:`repro.check.runner.run_schedule`'s job; this
module only defines the shape and its (de)serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import CheckError

#: Fault action kinds.
ACTION_CRASH = "crash"
ACTION_JOIN = "join"
ACTION_LEAVE = "leave"
ACTION_OMIT = "omit"

ACTIONS = (ACTION_CRASH, ACTION_JOIN, ACTION_LEAVE, ACTION_OMIT)

#: Omission flavours for ``ACTION_OMIT``.
OMISSION_CONSISTENT = "consistent"
OMISSION_INCONSISTENT = "inconsistent"


@dataclass(frozen=True)
class Fault:
    """One scheduled fault action.

    For ``crash``/``join``/``leave``: ``node`` is the subject and ``at_ms``
    the firing time, in milliseconds after bootstrap.

    For ``omit``: the target frame is the ``nth`` (0-based, counted from
    the end of bootstrap) frame of message type ``frame_type`` — optionally
    restricted to frames whose identifier names ``node``. ``omission``
    selects the flavour; an inconsistent omission is accepted by the
    ``accepting`` subset while everyone else (sender included) sees an
    error, so the sender's automatic retransmission generates *duplicates*
    at the subset. ``crash_sender=True`` additionally crashes the sender
    before that retransmission — the paper's inconsistent-omission-then-
    crash scenario (Section 4), only meaningful for frame types where the
    identifier names the sender (ELS, DATA).
    """

    action: str
    node: int = -1
    at_ms: float = 0.0
    frame_type: str = ""
    nth: int = 0
    omission: str = OMISSION_CONSISTENT
    accepting: Tuple[int, ...] = ()
    crash_sender: bool = False

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise CheckError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {ACTIONS}"
            )
        if self.action == ACTION_OMIT:
            if not self.frame_type:
                raise CheckError("omit faults need a frame_type")
            if self.omission not in (
                OMISSION_CONSISTENT,
                OMISSION_INCONSISTENT,
            ):
                raise CheckError(f"unknown omission flavour {self.omission!r}")
            if self.accepting and self.omission != OMISSION_INCONSISTENT:
                raise CheckError(
                    "an accepting subset requires an inconsistent omission"
                )
        elif self.node < 0:
            raise CheckError(f"{self.action} faults need a node")
        # Tuples, not lists, so Fault hashes (the minimizer dedups on it).
        object.__setattr__(self, "accepting", tuple(self.accepting))

    def describe(self) -> str:
        """One-line human-readable form for reports."""
        if self.action == ACTION_OMIT:
            target = self.frame_type
            if self.node >= 0:
                target += f"[node={self.node}]"
            flavour = self.omission
            if self.accepting:
                flavour += f" accepted-by={list(self.accepting)}"
            if self.crash_sender:
                flavour += " +crash-sender"
            return f"omit {target}#{self.nth} ({flavour})"
        return f"{self.action} node {self.node} at +{self.at_ms:g}ms"

    def to_dict(self) -> Dict[str, Any]:
        """JSON form; defaults elided for compact artifacts."""
        raw: Dict[str, Any] = {"action": self.action}
        if self.node >= 0:
            raw["node"] = self.node
        if self.at_ms:
            raw["at_ms"] = self.at_ms
        if self.frame_type:
            raw["frame_type"] = self.frame_type
        if self.nth:
            raw["nth"] = self.nth
        if self.omission != OMISSION_CONSISTENT:
            raw["omission"] = self.omission
        if self.accepting:
            raw["accepting"] = list(self.accepting)
        if self.crash_sender:
            raw["crash_sender"] = True
        return raw

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Fault":
        """Rebuild a fault from :meth:`to_dict` output."""
        known = set(cls.__dataclass_fields__)
        unknown = set(raw) - known
        if unknown:
            raise CheckError(f"unknown fault fields: {sorted(unknown)}")
        data = dict(raw)
        if "accepting" in data:
            data["accepting"] = tuple(data["accepting"])
        return cls(**data)


@dataclass(frozen=True)
class FaultSchedule:
    """One fully specified, deterministically executable scenario.

    Attributes:
        nodes: network population (node ids ``0..nodes-1``).
        members: how many of them bootstrap as initial members (the rest
            stay silent until a scheduled ``join``).
        faults: the ordered fault actions.
        run_ms: how long the scenario runs after bootstrap.
        tm_ms / thb_ms / tjoin_wait_ms / capacity: protocol configuration.
        seed: identification label — carried into results, artifacts and
            error messages; schedule execution itself is deterministic.
    """

    nodes: int = 4
    members: int = 4
    faults: Tuple[Fault, ...] = ()
    run_ms: float = 400.0
    tm_ms: float = 50.0
    thb_ms: float = 10.0
    tjoin_wait_ms: float = 150.0
    capacity: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if not 2 <= self.members <= self.nodes <= self.capacity:
            raise CheckError(
                f"bad population: members={self.members} nodes={self.nodes} "
                f"capacity={self.capacity}"
            )
        if self.run_ms <= 0:
            raise CheckError(f"run_ms must be positive: {self.run_ms}")
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if fault.action != ACTION_OMIT and not (
                0 <= fault.node < self.nodes
            ):
                raise CheckError(
                    f"fault names node {fault.node} outside 0..{self.nodes - 1}"
                )

    @property
    def depth(self) -> int:
        """Number of scheduled fault actions."""
        return len(self.faults)

    def without(self, indices) -> "FaultSchedule":
        """A copy with the faults at ``indices`` removed (minimizer step)."""
        drop = set(indices)
        kept = tuple(
            fault for i, fault in enumerate(self.faults) if i not in drop
        )
        return replace(self, faults=kept)

    def describe(self) -> str:
        """Multi-line human-readable form."""
        lines = [
            f"schedule seed={self.seed}: {self.nodes} nodes "
            f"({self.members} bootstrap), run {self.run_ms:g}ms, "
            f"{self.depth} fault(s)"
        ]
        for i, fault in enumerate(self.faults):
            lines.append(f"  [{i}] {fault.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (artifact/checkpoint header)."""
        return {
            "nodes": self.nodes,
            "members": self.members,
            "faults": [fault.to_dict() for fault in self.faults],
            "run_ms": self.run_ms,
            "tm_ms": self.tm_ms,
            "thb_ms": self.thb_ms,
            "tjoin_wait_ms": self.tjoin_wait_ms,
            "capacity": self.capacity,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        known = set(cls.__dataclass_fields__)
        unknown = set(raw) - known
        if unknown:
            raise CheckError(f"unknown schedule fields: {sorted(unknown)}")
        data = dict(raw)
        data["faults"] = tuple(
            Fault.from_dict(fault) for fault in data.get("faults", ())
        )
        return cls(**data)
