"""``repro.check`` — systematic model-checking-style exploration.

The checker enumerates bounded fault schedules (crashes, voluntary
leaves, late joins, consistent/inconsistent omissions on specific frames,
duplicate-generation sender crashes) over small networks, runs each one
deterministically through the simulator with scripted
:class:`~repro.can.errormodel.FaultInjector` faults, and checks the
paper's membership properties online. Violations are delta-debugged to
1-minimal counterexamples and written as replayable JSONL artifacts.

Entry points:

* :func:`~repro.check.sweep.explore` / :class:`~repro.check.sweep.CheckSweep`
  — run a whole population (parallel via the campaign engine).
* :func:`~repro.check.runner.run_schedule` — one schedule, one verdict.
* :func:`~repro.check.minimize.minimize_schedule` — ddmin a violation.
* :func:`~repro.check.artifact.replay_artifact` — bit-for-bit replay.
* :func:`~repro.check.selftest.run_selftest` — prove the checker catches
  a planted protocol bug.
"""

from repro.check.artifact import (
    FORMAT,
    read_artifact,
    replay_artifact,
    write_artifact,
)
from repro.check.explorer import (
    DEFAULT_FRAME_TYPES,
    ScheduleSpace,
    enumerate_schedules,
    sample_schedules,
    schedule_population,
)
from repro.check.minimize import MinimizationOutcome, minimize_schedule
from repro.check.runner import (
    CHECK_BOOTSTRAP_FAILED,
    CHECK_ERROR,
    CHECK_OK,
    CHECK_VIOLATION,
    CheckResult,
    expected_members,
    run_schedule,
    trace_fingerprint,
)
from repro.check.schedule import (
    ACTION_CRASH,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_OMIT,
    OMISSION_CONSISTENT,
    OMISSION_INCONSISTENT,
    Fault,
    FaultSchedule,
)
from repro.check.selftest import (
    MUTATIONS,
    Mutation,
    SelftestReport,
    run_selftest,
    selftest_sweep,
)
from repro.check.sweep import (
    CheckSweep,
    Counterexample,
    CoverageReport,
    ExplorationReport,
    ScheduleBatch,
    explore,
    explore_coverage,
    mutate_schedule,
    run_batch_scenario,
    run_check_scenario,
)

__all__ = [
    "ACTION_CRASH",
    "ACTION_JOIN",
    "ACTION_LEAVE",
    "ACTION_OMIT",
    "CHECK_BOOTSTRAP_FAILED",
    "CHECK_ERROR",
    "CHECK_OK",
    "CHECK_VIOLATION",
    "CheckResult",
    "CheckSweep",
    "Counterexample",
    "CoverageReport",
    "DEFAULT_FRAME_TYPES",
    "ExplorationReport",
    "FORMAT",
    "Fault",
    "FaultSchedule",
    "MUTATIONS",
    "MinimizationOutcome",
    "Mutation",
    "OMISSION_CONSISTENT",
    "OMISSION_INCONSISTENT",
    "ScheduleBatch",
    "ScheduleSpace",
    "SelftestReport",
    "enumerate_schedules",
    "expected_members",
    "explore",
    "explore_coverage",
    "minimize_schedule",
    "mutate_schedule",
    "read_artifact",
    "replay_artifact",
    "run_batch_scenario",
    "run_check_scenario",
    "run_schedule",
    "run_selftest",
    "sample_schedules",
    "schedule_population",
    "selftest_sweep",
    "trace_fingerprint",
    "write_artifact",
]
