"""Replayable counterexample artifacts.

When the checker finds a violation it emits one JSONL artifact that is the
whole story: a header line identifying the format and code version, the
minimal (post-ddmin) schedule, the violated invariant, the trace
fingerprint the schedule must reproduce, and the offending trace slice for
human eyes. ``repro check --replay artifact.jsonl`` re-executes the
schedule and verifies **bit-for-bit reproduction**: same verdict, same
violated monitor, same complete-trace fingerprint.

The format is line-oriented so artifacts stream into the same tooling as
trace exports and campaign checkpoints:

* line 1 — header: ``{"format": "repro.check/1", "seed": ..., ...}``
* line 2 — the schedule (``FaultSchedule.to_dict()``)
* line 3 — the result summary (verdict, monitor, detail, fingerprint)
* remaining lines — the violation's trace slice, one record per line
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterator, Optional, Tuple, Union

from repro.check.runner import CheckResult, run_schedule
from repro.check.schedule import FaultSchedule
from repro.errors import CheckError

FORMAT = "repro.check/1"


def write_artifact(
    target: Union[str, IO[str]],
    result: CheckResult,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``result`` (typically a minimized violation) as an artifact.

    ``extra`` merges additional keys into the header line — the selftest
    records the planted mutation there so ``repro check --replay`` can
    re-plant it and still reproduce the run bit-for-bit.
    """
    own = isinstance(target, str)
    handle: IO[str] = open(target, "w") if own else target
    try:
        header = {
            "format": FORMAT,
            "verdict": result.verdict,
            "monitor": result.monitor,
            "seed": result.schedule.seed,
            "faults": result.schedule.depth,
        }
        if extra:
            header.update(extra)
        handle.write(json.dumps(header) + "\n")
        handle.write(json.dumps(result.schedule.to_dict()) + "\n")
        summary = {
            "verdict": result.verdict,
            "monitor": result.monitor,
            "detail": result.detail,
            "fingerprint": result.fingerprint,
            "events": result.events,
            "final_members": result.final_members,
            "expected_members": result.expected_members,
        }
        handle.write(json.dumps(summary) + "\n")
        for record in result.violation_slice:
            handle.write(json.dumps(record) + "\n")
    finally:
        if own:
            handle.close()


def read_artifact(
    source: Union[str, IO[str]],
) -> Tuple[FaultSchedule, Dict[str, Any], Dict[str, Any]]:
    """Load an artifact; returns ``(schedule, expected summary, header)``.

    Raises :class:`~repro.errors.CheckError` on a malformed or
    wrong-format file — a truncated artifact must fail loudly, not replay
    the wrong schedule.
    """
    own = isinstance(source, str)
    handle: IO[str] = open(source) if own else source
    try:
        lines = _required_lines(handle, 3)
        header = _parse(lines[0], "header")
        if header.get("format") != FORMAT:
            raise CheckError(
                f"not a {FORMAT} artifact: format={header.get('format')!r}"
            )
        schedule = FaultSchedule.from_dict(_parse(lines[1], "schedule"))
        expected = _parse(lines[2], "result summary")
        for key in ("verdict", "fingerprint"):
            if key not in expected:
                raise CheckError(f"artifact result summary lacks {key!r}")
        return schedule, expected, header
    finally:
        if own:
            handle.close()


def replay_artifact(
    source: Union[str, IO[str]],
) -> Tuple[CheckResult, Dict[str, Any]]:
    """Re-execute an artifact's schedule and verify bit-for-bit reproduction.

    Returns ``(fresh result, expected summary)`` when the replay matches;
    raises :class:`~repro.errors.CheckError` when the verdict, violated
    monitor or complete-trace fingerprint differ — which means the code's
    behaviour changed since the artifact was recorded (a fixed bug, an
    intended protocol change, or a regression in determinism).

    Artifacts recorded under a planted mutation (a ``mutation`` key in the
    header) only reproduce with that mutation re-planted; the ``repro
    check --replay`` CLI does that automatically.
    """
    schedule, expected, _header = read_artifact(source)
    result = run_schedule(schedule)
    mismatches = []
    if result.verdict != expected["verdict"]:
        mismatches.append(
            f"verdict: got {result.verdict!r}, "
            f"artifact has {expected['verdict']!r}"
        )
    if expected.get("monitor") and result.monitor != expected["monitor"]:
        mismatches.append(
            f"monitor: got {result.monitor!r}, "
            f"artifact has {expected['monitor']!r}"
        )
    if result.fingerprint != expected["fingerprint"]:
        mismatches.append(
            f"trace fingerprint: got {result.fingerprint[:16]}..., "
            f"artifact has {str(expected['fingerprint'])[:16]}..."
        )
    if mismatches:
        raise CheckError(
            "replay did not reproduce the recorded run:\n  "
            + "\n  ".join(mismatches)
        )
    return result, expected


def _required_lines(handle: IO[str], count: int) -> Tuple[str, ...]:
    lines = []
    for line in handle:
        line = line.strip()
        if line:
            lines.append(line)
        if len(lines) == count:
            return tuple(lines)
    raise CheckError(
        f"truncated artifact: expected at least {count} lines, "
        f"found {len(lines)}"
    )


def _parse(line: str, what: str) -> Dict[str, Any]:
    try:
        parsed = json.loads(line)
    except ValueError as error:
        raise CheckError(f"malformed artifact {what}: {error}") from error
    if not isinstance(parsed, dict):
        raise CheckError(f"malformed artifact {what}: not an object")
    return parsed


def iter_slice(source: Union[str, IO[str]]) -> Iterator[Dict[str, Any]]:
    """The trace-slice records of an artifact (lines 4+), parsed."""
    own = isinstance(source, str)
    handle: IO[str] = open(source) if own else source
    try:
        for index, line in enumerate(handle):
            if index < 3 or not line.strip():
                continue
            yield _parse(line.strip(), f"trace record on line {index + 1}")
    finally:
        if own:
            handle.close()
