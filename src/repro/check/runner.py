"""Deterministic execution of one fault schedule, with online invariants.

:func:`run_schedule` turns a plain-data
:class:`~repro.check.schedule.FaultSchedule` into a simulator run: build
the network, attach the online invariant monitors
(:mod:`repro.obs.monitors`), drive the scenario through the fluent
:class:`~repro.workloads.builder.ScenarioBuilder`, then apply the final
whole-run checks the monitors cannot see online:

* **agreement** — every surviving full member holds the same view;
* **validity** — that view is exactly the schedule's expected survivor
  set: every crashed/left node removed (no missed detections), every
  joined node integrated (no lost joins), nobody else touched.

The simulation is fully deterministic, so the *fingerprint* — a SHA-256
over every trace record in order — identifies the complete behaviour:
``repro check --replay`` re-executes a schedule and compares fingerprints
to prove bit-for-bit reproduction.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.analysis.latency import latency_bounds
from repro.can.errormodel import FaultInjector
from repro.check.schedule import (
    ACTION_CRASH,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_OMIT,
    OMISSION_INCONSISTENT,
    Fault,
    FaultSchedule,
)
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import CheckError, ScenarioError
from repro.obs.monitors import InvariantViolation, standard_monitors
from repro.sim.clock import ms
from repro.sim.trace import record_to_dict
from repro.workloads.builder import FrameMatch

#: Check verdicts.
CHECK_OK = "ok"
CHECK_BOOTSTRAP_FAILED = "bootstrap_failed"
CHECK_VIOLATION = "violation"
CHECK_ERROR = "error"

#: Cap on how many trace records a violation slice carries back.
_SLICE_LIMIT = 120


@dataclass
class CheckResult:
    """The outcome of executing one fault schedule.

    ``fingerprint`` hashes the complete trace (every record, in order);
    two runs of the same schedule on the same code produce the same
    fingerprint — that is the replay contract. ``monitor`` names the
    violated invariant (``final-state`` for the whole-run checks).
    """

    schedule: FaultSchedule
    verdict: str = CHECK_ERROR
    monitor: str = ""
    detail: str = ""
    fingerprint: str = ""
    events: int = 0
    final_members: List[int] = field(default_factory=list)
    expected_members: List[int] = field(default_factory=list)
    violation_slice: List[Dict[str, Any]] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return self.verdict == CHECK_OK

    @property
    def violating(self) -> bool:
        """True when an invariant was violated (the minimizer's oracle)."""
        return self.verdict == CHECK_VIOLATION

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (artifacts, campaign results)."""
        return {
            "schedule": self.schedule.to_dict(),
            "verdict": self.verdict,
            "monitor": self.monitor,
            "detail": self.detail,
            "fingerprint": self.fingerprint,
            "events": self.events,
            "final_members": self.final_members,
            "expected_members": self.expected_members,
            "violation_slice": self.violation_slice,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CheckResult":
        """Rebuild a result from :meth:`to_dict` output."""
        data = dict(raw)
        data["schedule"] = FaultSchedule.from_dict(data["schedule"])
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})


def expected_members(schedule: FaultSchedule) -> Set[int]:
    """The survivor set the final agreed view must equal.

    Timed actions fold in ``at_ms`` order; ``crash_sender`` omissions count
    as a crash of the targeted sender (whether the fault fires or not, the
    subject ends up outside the view: un-fired sender-crash faults target
    nodes that already crashed or left, so the set is unchanged).
    """
    members = set(range(schedule.members))
    timed = sorted(
        (f for f in schedule.faults if f.action != ACTION_OMIT),
        key=lambda f: f.at_ms,
    )
    for fault in timed:
        if fault.action == ACTION_CRASH:
            members.discard(fault.node)
        elif fault.action == ACTION_LEAVE:
            members.discard(fault.node)
        elif fault.action == ACTION_JOIN:
            members.add(fault.node)
    for fault in schedule.faults:
        if fault.action == ACTION_OMIT and fault.crash_sender:
            members.discard(fault.node)
    return members


def _apply_fault(builder, fault: Fault) -> None:
    """Translate one plain-data fault into builder calls."""
    if fault.action == ACTION_CRASH:
        builder.crash(fault.node, at=ms(fault.at_ms))
    elif fault.action == ACTION_JOIN:
        builder.join(fault.node, at=ms(fault.at_ms))
    elif fault.action == ACTION_LEAVE:
        builder.leave(fault.node, at=ms(fault.at_ms))
    elif fault.action == ACTION_OMIT:
        builder.omit(
            frame=FrameMatch(
                mtype=fault.frame_type,
                node=fault.node if fault.node >= 0 else None,
                nth=fault.nth,
            ),
            inconsistent=fault.omission == OMISSION_INCONSISTENT,
            accepting=fault.accepting,
            crash_sender=fault.crash_sender,
        )
    else:  # pragma: no cover - schedule validation rejects these
        raise CheckError(f"unknown fault action {fault.action!r}")


def trace_fingerprint(net: CanelyNetwork) -> str:
    """SHA-256 over every trace record, in order — the replay identity."""
    digest = hashlib.sha256()
    for record in net.sim.trace:
        digest.update(
            json.dumps(record_to_dict(record), sort_keys=True).encode()
        )
    return digest.hexdigest()


def run_schedule(
    schedule: FaultSchedule,
    monitors: bool = True,
    backend: str = "canely",
    segments: int = 1,
) -> CheckResult:
    """Execute ``schedule`` deterministically and check every invariant.

    Never raises for protocol-level failures — bootstrap non-convergence,
    online invariant violations and final-state disagreements all map to
    verdicts; only genuinely unexpected exceptions surface as the
    ``error`` verdict with the traceback in ``detail``.

    ``backend`` and ``segments`` select the membership stack and bus
    topology the schedule executes on. They are runtime parameters, not
    part of the schedule — the same schedule can be checked against rival
    backends — so they do not enter ``schedule_key`` fingerprints. The
    online monitors encode CANELy's guarantees and refuse other backends.
    """
    started = time.perf_counter()
    result = CheckResult(schedule=schedule)
    config = CanelyConfig(
        capacity=schedule.capacity,
        tm=ms(schedule.tm_ms),
        thb=ms(schedule.thb_ms),
        tjoin_wait=ms(schedule.tjoin_wait_ms),
    )
    if monitors and backend != "canely":
        raise CheckError(
            "the online invariant monitors encode CANELy's guarantees; "
            f"pass monitors=False to check the {backend!r} backend"
        )
    net = CanelyNetwork(
        node_count=schedule.nodes,
        config=config,
        injector=FaultInjector(),
        backend=backend,
        segments=segments,
    )
    if monitors:
        standard_monitors(
            net.sim.trace,
            detection_bound=latency_bounds(config).notification,
            metrics=net.sim.metrics,
        )
    try:
        builder = net.scenario(seed=schedule.seed)
        builder.bootstrap(nodes=range(schedule.members))
        for fault in schedule.faults:
            _apply_fault(builder, fault)
        builder.run_for(ms(schedule.run_ms))
        _final_checks(net, schedule, result)
    except ScenarioError as error:
        result.verdict = CHECK_BOOTSTRAP_FAILED
        result.detail = str(error)
    except InvariantViolation as violation:
        result.verdict = CHECK_VIOLATION
        result.monitor = violation.monitor
        result.detail = str(violation)
        result.violation_slice = [
            record_to_dict(record)
            for record in violation.records[:_SLICE_LIMIT]
        ]
    except Exception:
        result.verdict = CHECK_ERROR
        result.detail = traceback.format_exc()
    result.fingerprint = trace_fingerprint(net)
    result.events = net.sim.events_processed
    result.elapsed_s = time.perf_counter() - started
    return result


def _final_checks(
    net: CanelyNetwork, schedule: FaultSchedule, result: CheckResult
) -> None:
    """Whole-run agreement + validity; mutates ``result``."""
    views = net.member_views()
    expected = expected_members(schedule)
    result.expected_members = sorted(expected)
    if not net.views_agree():
        result.verdict = CHECK_VIOLATION
        result.monitor = "final-state"
        result.detail = (
            "surviving members disagree on the final view: "
            f"{ {n: sorted(v) for n, v in views.items()} }"
        )
        return
    final = sorted(next(iter(views.values()))) if views else []
    result.final_members = final
    if set(final) != expected:
        result.verdict = CHECK_VIOLATION
        result.monitor = "final-state"
        result.detail = (
            f"final view {final} != expected survivors {sorted(expected)} "
            f"(views at { {n: sorted(v) for n, v in views.items()} })"
        )
        return
    result.verdict = CHECK_OK
