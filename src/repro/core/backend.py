"""The backend-neutral membership contract.

The paper's upper-layer service interface (Fig. 5) is a small set of
primitives — ``msh-can.req(JOIN/LEAVE/Get Membership View)`` and the
``msh-can.nty`` change notification — that say nothing about *how* the
view is maintained. :class:`MembershipBackend` makes that contract
explicit so rival detection/membership stacks can run behind the same
node API and be compared head-to-head:

* :class:`CanelyBackend` — the paper's stack (FDA + RHA + bounded-delay
  failure detection + site membership), a pure re-wiring of
  :class:`~repro.core.stack.CanelyNode`. Golden-trace pinned: routing
  the node API through the adapter changes nothing observable.
* :class:`~repro.swim.SwimBackend` — a SWIM-style heartbeat/suspicion
  detector over the same CAN controller and standard layer.

Backends play two roles, mirrored in the class:

* **factory** (classmethods): ``default_config`` / ``coerce_config`` /
  ``build_node`` let :class:`~repro.core.stack.CanelyNetwork` and the
  workload/campaign/check layers construct nodes without naming a
  concrete stack;
* **per-node service surface** (instance methods): the ``msh-can``
  request/notify primitives plus the lifecycle (``halt``/``reset``) and
  observability (``metrics``/``describe``) hooks shared by analysis.

Register additional backends with :func:`register_backend`; resolve a
name (or pass a class through) with :func:`resolve_backend`.
"""

from __future__ import annotations

import abc
from typing import Callable, ClassVar, Dict, Type

from repro.core.views import MembershipChange, MembershipView
from repro.errors import ConfigurationError

ChangeCallback = Callable[[MembershipChange], None]


class MembershipBackend(abc.ABC):
    """One node's membership service, behind the ``msh-can`` contract.

    Instances wrap a single node's protocol entity; the classmethods act
    as the stack factory. Subclasses must set :attr:`name` (the registry
    key and report label) and may override :attr:`critical_path` when the
    backend emits the span structure
    :func:`repro.obs.critical_path.detection_path` consumes.
    """

    #: Registry key and report label ("canely", "swim", ...).
    name: ClassVar[str] = ""
    #: True when the backend's spans support detection-path decomposition.
    critical_path: ClassVar[bool] = False

    # -- factory surface ---------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def default_config(cls):
        """The configuration used when the caller passes ``None``."""

    @classmethod
    def coerce_config(cls, config):
        """Adapt ``config`` (possibly ``None`` or a rival backend's
        configuration) into this backend's native configuration type."""
        return cls.default_config() if config is None else config

    @classmethod
    @abc.abstractmethod
    def build_node(cls, node_id, sim, bus, config, *, layer=None,
                   timer_drift=0.0):
        """Construct one node of this backend's stack attached to ``bus``."""

    # -- msh-can.req / .nty service surface --------------------------------

    @abc.abstractmethod
    def join(self) -> None:
        """``msh-can.req(JOIN)``: ask to enter the membership view."""

    @abc.abstractmethod
    def leave(self) -> None:
        """``msh-can.req(LEAVE)``: ask to be withdrawn from the view."""

    @abc.abstractmethod
    def view(self) -> MembershipView:
        """``msh-can.req(Get Membership View)``: the current view."""

    @property
    @abc.abstractmethod
    def is_member(self) -> bool:
        """True while the local node is a full member."""

    @abc.abstractmethod
    def on_change(self, callback: ChangeCallback) -> None:
        """Register a ``msh-can.nty`` change listener (delivery order =
        registration order)."""

    # -- lifecycle hooks ---------------------------------------------------

    @abc.abstractmethod
    def halt(self) -> None:
        """Stop all protocol activity without touching state (crash)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all protocol state (reboot); idempotent."""

    # -- observability hooks -----------------------------------------------

    def metrics(self) -> Dict[str, int]:
        """Per-node protocol counters for diagnostics and comparison."""
        return {}

    def describe(self) -> Dict[str, object]:
        """Static description of the backend for reports."""
        return {"backend": self.name, "critical_path": self.critical_path}


class CanelyBackend(MembershipBackend):
    """The paper's stack behind the backend contract.

    A pure adapter over :class:`~repro.core.stack.CanelyNode`'s protocol
    entities — every method forwards to the exact call the node API made
    before the contract existed, so wrapped runs are bit-identical to the
    direct path (pinned by the golden-trace equivalence tests).
    """

    name = "canely"
    critical_path = True

    def __init__(self, node) -> None:
        self._node = node

    @classmethod
    def default_config(cls):
        from repro.core.config import CanelyConfig

        return CanelyConfig()

    @classmethod
    def build_node(cls, node_id, sim, bus, config, *, layer=None,
                   timer_drift=0.0):
        from repro.core.stack import CanelyNode

        return CanelyNode(
            node_id,
            sim,
            bus,
            config,
            layer=layer,
            timer_drift=timer_drift,
            _from_backend=True,
        )

    def join(self) -> None:
        self._node.membership.join()

    def leave(self) -> None:
        self._node.membership.leave()

    def view(self) -> MembershipView:
        return self._node.membership.view()

    @property
    def is_member(self) -> bool:
        return self._node.membership.is_member

    def on_change(self, callback: ChangeCallback) -> None:
        self._node.membership.on_change(callback)

    def halt(self) -> None:
        # The crash sequence of the pre-contract node API, in order.
        self._node.detector.reset()
        self._node.membership.halt()

    def reset(self) -> None:
        # The recover sequence of the pre-contract node API, in order.
        self._node.fda.reset_all()
        self._node.rha.reset()
        self._node.detector.reset()
        self._node.membership.reset()

    def metrics(self) -> Dict[str, int]:
        node = self._node
        return {
            "view_round": node.membership.view().round_index,
            "els_sent": node.detector.els_sent,
            "rha_executions": node.rha.executions,
            "rha_frames_sent": node.rha.frames_sent,
            "monitored_nodes": len(node.detector.monitored_nodes),
        }


#: name -> backend class. ``swim`` resolves lazily so importing the
#: contract does not drag the SWIM package in.
_REGISTRY: Dict[str, Type[MembershipBackend]] = {}


def register_backend(backend: Type[MembershipBackend]) -> None:
    """Add ``backend`` to the registry under its :attr:`name`.

    Re-registering the same class is a no-op; claiming an already-taken
    name with a different class is an error (names are report labels and
    CLI values — silent replacement would repoint them).
    """
    if not backend.name:
        raise ConfigurationError(f"backend {backend!r} has no name")
    taken = _REGISTRY.get(backend.name)
    if taken is not None and taken is not backend:
        raise ConfigurationError(
            f"backend name {backend.name!r} is already registered "
            f"to {taken.__name__}"
        )
    _REGISTRY[backend.name] = backend


register_backend(CanelyBackend)


def backend_names() -> list:
    """The registered backend names, sorted."""
    _load_builtin("swim")
    return sorted(_REGISTRY)


def _load_builtin(name: str) -> None:
    if name == "swim" and "swim" not in _REGISTRY:
        from repro.swim import SwimBackend

        register_backend(SwimBackend)


def resolve_backend(spec) -> Type[MembershipBackend]:
    """Resolve a backend name (or pass a backend class through).

    ``None`` resolves to :class:`CanelyBackend` — the seed stack.
    """
    if spec is None:
        return CanelyBackend
    if isinstance(spec, type) and issubclass(spec, MembershipBackend):
        return spec
    if isinstance(spec, str):
        _load_builtin(spec)
        try:
            return _REGISTRY[spec]
        except KeyError:
            raise ConfigurationError(
                f"unknown membership backend {spec!r}; "
                f"registered: {backend_names()}"
            ) from None
    raise ConfigurationError(f"not a membership backend: {spec!r}")
