"""Process group membership on top of the site membership service.

The paper motivates the site membership layer as "a crucial assistant for
process group membership management" (Section 6): once every node agrees on
which *sites* are alive, tracking which *processes* belong to which group
reduces to reliable dissemination of group join/leave announcements plus a
rule — processes of a failed or departed site are dropped from every group
the instant the site-level change is notified.

This module implements that layer:

* a **process** is ``(node_id, process_id)`` — several per node;
* group join/leave announcements travel as data frames of type ``GROUP``
  and are *eagerly diffused* (the EDCAN echo trick), so inconsistent
  omissions cannot split a group's view;
* every node tracks the composition of every group it has heard about;
  group views are kept consistent by construction: announcements are
  totally observable (same frames at all nodes) and site-level failures
  arrive through the consistent ``msh-can.nty`` notifications;
* a group change notification is delivered locally whenever a group's
  composition changes.

Announcement encoding: the node field names the announcing site and the
16-bit ``ref`` field carries a per-node announcement sequence number (so
repeated join/leave cycles of the same process are distinct messages); the
payload carries ``(group_id, process_id, action)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.membership import MembershipProtocol
from repro.core.views import MembershipChange
from repro.errors import ConfigurationError

#: A process is a (node id, process id) pair.
ProcessId = Tuple[int, int]

_JOIN = 0x01
_LEAVE = 0x02

MAX_GROUP_ID = 0xFF
MAX_PROCESS_ID = 0xFF


@dataclass(frozen=True)
class GroupView:
    """Composition of one process group at one node."""

    group_id: int
    processes: FrozenSet[ProcessId]
    version: int

    def __contains__(self, process: ProcessId) -> bool:
        return process in self.processes

    def __len__(self) -> int:
        return len(self.processes)


GroupChangeCallback = Callable[[GroupView], None]


class ProcessGroupService:
    """Per-node process group membership entity.

    Args:
        layer: the node's CAN standard layer.
        membership: the node's site membership protocol — group state is
            slaved to its view and change notifications.
        inconsistent_degree: the model's ``j`` bound, sizing the eager
            diffusion of announcements.
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        membership: MembershipProtocol,
        inconsistent_degree: int = 2,
    ) -> None:
        self._layer = layer
        self._membership = membership
        self._j = inconsistent_degree
        self._groups: Dict[int, Set[ProcessId]] = {}
        self._versions: Dict[int, int] = {}
        self._ndup: Dict[MessageId, int] = {}
        self._next_seq = 0
        self._listeners: List[GroupChangeCallback] = []
        layer.add_data_ind(self._on_announcement, mtype=MessageType.GROUP)
        membership.on_change(self._on_site_change)

    # -- upper-layer interface ---------------------------------------------------

    def on_group_change(self, callback: GroupChangeCallback) -> None:
        """Subscribe to group composition changes (any group)."""
        self._listeners.append(callback)

    def join_group(self, group_id: int, process_id: int) -> None:
        """Announce that local process ``process_id`` joins ``group_id``."""
        self._announce(group_id, process_id, _JOIN)

    def leave_group(self, group_id: int, process_id: int) -> None:
        """Announce that local process ``process_id`` leaves ``group_id``."""
        self._announce(group_id, process_id, _LEAVE)

    def group_view(self, group_id: int) -> GroupView:
        """The current composition of ``group_id`` at this node."""
        self._check_group(group_id)
        return GroupView(
            group_id=group_id,
            processes=frozenset(self._groups.get(group_id, set())),
            version=self._versions.get(group_id, 0),
        )

    @property
    def known_groups(self) -> List[int]:
        """Identifiers of every non-empty group, sorted."""
        return sorted(g for g, members in self._groups.items() if members)

    # -- announcements ------------------------------------------------------------

    def _check_group(self, group_id: int) -> None:
        if not 0 <= group_id <= MAX_GROUP_ID:
            raise ConfigurationError(f"group id out of range: {group_id}")

    def _announce(self, group_id: int, process_id: int, action: int) -> None:
        self._check_group(group_id)
        if not 0 <= process_id <= MAX_PROCESS_ID:
            raise ConfigurationError(f"process id out of range: {process_id}")
        if not self._membership.is_member:
            raise ConfigurationError(
                "only processes on full-member sites may change groups"
            )
        mid = MessageId(
            MessageType.GROUP,
            node=self._layer.node_id,
            ref=self._next_seq,
        )
        self._next_seq = (self._next_seq + 1) % 65536
        self._layer.data_req(mid, bytes([group_id, process_id, action]))

    def _on_announcement(self, mid: MessageId, data: bytes) -> None:
        count = self._ndup.get(mid, 0) + 1
        self._ndup[mid] = count
        if count > 1:
            if count > self._j:
                self._layer.abort_req(mid)
            return
        # First copy: eager diffusion so every correct node sees it even if
        # the announcing site dies behind an inconsistent omission.
        if mid.node != self._layer.node_id and not self._layer.has_pending(mid):
            self._layer.data_req(mid, data)
        if len(data) < 3:
            return  # malformed announcement
        group_id, pid, action = data[0], data[1], data[2]
        process = (mid.node, pid)
        members = self._groups.setdefault(group_id, set())
        if action == _JOIN:
            if process in members:
                return
            members.add(process)
        else:
            if process not in members:
                return
            members.discard(process)
        self._bump(group_id)

    # -- site membership integration ------------------------------------------------

    def _on_site_change(self, change: MembershipChange) -> None:
        """Drop every process hosted by a site that left the active set.

        Both failed sites (``change.failed``) and voluntary leavers (absent
        from ``change.active``) take their processes with them; the
        consistency of the site-level notification is what keeps group
        views consistent across nodes.
        """
        active = set(change.active)
        for group_id, members in list(self._groups.items()):
            dropped = {proc for proc in members if proc[0] not in active}
            if dropped:
                members.difference_update(dropped)
                self._bump(group_id)

    def _bump(self, group_id: int) -> None:
        self._versions[group_id] = self._versions.get(group_id, 0) + 1
        view = self.group_view(group_id)
        for listener in list(self._listeners):
            listener(view)
