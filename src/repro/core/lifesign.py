"""Life-sign policy (paper Section 6.1).

CANELy signals node activity *implicitly* through normal traffic; explicit
life-sign (ELS) messages are only required of nodes whose own transmissions
are less frequent than the heartbeat period — periodic traffic with a period
above ``Thb``, or sporadic/aperiodic traffic. This module captures that
policy decision: given the traffic characterization of each node, which
nodes need explicit life-signs (the paper's parameter ``b``)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class NodeTraffic:
    """Traffic characterization of one node.

    Attributes:
        node_id: the node.
        min_period: smallest period among the node's periodic streams, in
            kernel ticks; ``None`` when the node only emits sporadic or
            aperiodic traffic.
    """

    node_id: int
    min_period: Optional[int]

    @property
    def is_sporadic_only(self) -> bool:
        """True when the node has no periodic stream at all."""
        return self.min_period is None


def needs_explicit_lifesign(traffic: NodeTraffic, thb: int) -> bool:
    """Does this node have to rely on explicit ELS messages?

    A node transmitting periodic traffic with a period no greater than the
    heartbeat period never lets its surveillance timers expire; everyone
    else must be ready to emit explicit life-signs.
    """
    if traffic.is_sporadic_only:
        return True
    return traffic.min_period > thb


def explicit_lifesign_nodes(
    traffic_map: Iterable[NodeTraffic], thb: int
) -> List[int]:
    """The nodes requiring explicit life-signs (the paper's ``b`` count)."""
    return sorted(
        traffic.node_id
        for traffic in traffic_map
        if needs_explicit_lifesign(traffic, thb)
    )
