"""Membership views and change notifications (the upper-layer interface).

Fig. 5 of the paper: upper layers may request join/leave or read the current
site membership view, and receive *membership change* notifications carrying
the set of active nodes and the set of failed nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.sets import NodeSet


@dataclass(frozen=True)
class MembershipView:
    """A snapshot of the site membership view at one node.

    Attributes:
        members: the currently active full members (``Vs``).
        round_index: how many membership protocol executions produced it.
        time: simulation time of the snapshot.
    """

    members: NodeSet
    round_index: int
    time: int

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.members

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class MembershipChange:
    """A ``msh-can.nty`` membership change notification (Fig. 5).

    Attributes:
        active: the set of active sites/nodes after the change.
        failed: the set of nodes notified as failed (empty for pure
            join/leave changes).
        time: simulation time of the notification.
        local_node: the node at which the notification was delivered.
    """

    active: NodeSet
    failed: NodeSet
    time: int
    local_node: int
