"""CANELy stack assembly.

:class:`CanelyNode` wires one node's full protocol stack — CAN controller,
standard layer, timers, FDA, RHA, failure detection and site membership —
and exposes the small public API an application uses. :class:`CanelyNetwork`
builds a whole simulated network and offers the scenario-level helpers that
examples, tests and benchmarks share.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.can.errormodel import FaultInjector
from repro.can.identifiers import MessageId, MessageType
from repro.can.phy import BitTiming
from repro.core.backend import CanelyBackend, resolve_backend
from repro.core.config import CanelyConfig
from repro.core.failure_detector import FailureDetector
from repro.core.fda import FdaProtocol
from repro.core.groups import ProcessGroupService
from repro.core.membership import MembershipProtocol
from repro.core.rha import RhaProtocol
from repro.core.state import MembershipState
from repro.core.views import MembershipChange, MembershipView
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.util.sets import NodeSet

MessageCallback = Callable[[int, int, bytes], None]


class CanelyNode:
    """One CANELy node: controller + standard layer + protocol suite."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        bus: Optional[CanBus],
        config: CanelyConfig,
        layer=None,
        timer_drift: float = 0.0,
        _from_backend: bool = False,
    ) -> None:
        if not 0 <= node_id < config.capacity:
            raise ConfigurationError(
                f"node id {node_id} outside 0..{config.capacity - 1}"
            )
        if not _from_backend:
            warnings.warn(
                "constructing CanelyNode directly is deprecated; build "
                "nodes through CanelyBackend.build_node() or "
                "CanelyNetwork(backend=...) so they carry the "
                "MembershipBackend contract",
                DeprecationWarning,
                stacklevel=2,
            )
        self.node_id = node_id
        self.config = config
        self._sim = sim
        if layer is None:
            if bus is None:
                raise ConfigurationError("either a bus or a layer is required")
            self.controller = CanController(node_id)
            bus.attach(self.controller)
            self.layer = CanStandardLayer(self.controller)
        else:
            # A prebuilt layer (e.g. a DualChannelLayer for channel
            # redundancy); it must expose the standard-layer interface and
            # a controller facade.
            self.layer = layer
            self.controller = layer.controller
        self.timers = TimerService(sim, drift=timer_drift, node=node_id)
        self.state = MembershipState(capacity=config.capacity)
        self.fda = FdaProtocol(self.layer, sim=sim)
        self.rha = RhaProtocol(self.layer, self.timers, config, self.state)
        self.detector = FailureDetector(self.layer, self.timers, config, self.fda)
        self.membership = MembershipProtocol(
            self.layer,
            self.timers,
            sim,
            config,
            self.state,
            self.rha,
            self.detector,
            self.fda,
        )
        self.groups = ProcessGroupService(
            self.layer, self.membership, config.inconsistent_degree
        )
        self._message_listeners: List[MessageCallback] = []
        self._next_ref = 0
        self.layer.add_data_ind(self._on_app_data, mtype=MessageType.DATA)
        #: The node's membership service behind the backend-neutral
        #: contract; the node API below delegates through it, so code
        #: written against :class:`~repro.core.backend.MembershipBackend`
        #: and code written against the node see the same entity.
        self.backend = CanelyBackend(self)

    # -- membership API (Fig. 5, via the backend contract) ---------------------------

    def join(self) -> None:
        """Request integration in the set of active sites."""
        self.backend.join()

    def leave(self) -> None:
        """Request withdrawal from the site membership view."""
        self.backend.leave()

    def view(self) -> MembershipView:
        """The current site membership view at this node."""
        return self.backend.view()

    def on_membership_change(self, callback: Callable[[MembershipChange], None]) -> None:
        """Subscribe to membership change notifications."""
        self.backend.on_change(callback)

    @property
    def is_member(self) -> bool:
        """True while this node is a full member."""
        return self.backend.is_member

    # -- application traffic ------------------------------------------------------------

    def send(self, data: bytes) -> int:
        """Broadcast application data; doubles as an implicit life-sign."""
        ref = self._next_ref
        self._next_ref = (self._next_ref + 1) % 65536
        mid = MessageId(MessageType.DATA, node=self.node_id, ref=ref)
        self.layer.data_req(mid, data)
        return ref

    def on_message(self, callback: MessageCallback) -> None:
        """Subscribe to application data ``(sender, ref, data)``."""
        self._message_listeners.append(callback)

    def _on_app_data(self, mid: MessageId, data: bytes) -> None:
        for listener in list(self._message_listeners):
            listener(mid.node, mid.ref, data)

    # -- fault scripting ------------------------------------------------------------------

    def crash(self) -> None:
        """Crash the node (fail-silent), recording the event in the trace.

        The node's protocol timers die with it: a crashed node generates no
        further events (its controller already discards any I/O).
        """
        self.controller.crash()
        self.backend.halt()
        if self._sim.spans.enabled:
            self._sim.spans.instant("node.crash", "node", node=self.node_id)
        self._sim.trace.record(self._sim.now, "node.crash", node=self.node_id)

    @property
    def crashed(self) -> bool:
        """True once the node has crashed."""
        return self.controller.crashed

    def stats(self) -> Dict[str, int]:
        """Protocol counters for diagnostics and benchmarks."""
        return {
            "els_sent": self.detector.els_sent,
            "rha_executions": self.rha.executions,
            "rha_frames_sent": self.rha.frames_sent,
            "monitored_nodes": len(self.detector.monitored_nodes),
            "tx_queue_depth": self.controller.queue_depth
            if hasattr(self.controller, "queue_depth")
            else 0,
            "view_round": self.membership.view().round_index,
        }

    def recover(self) -> None:
        """Reboot a crashed node with fresh protocol state.

        The paper assumes a removed node "does not initiate a reintegration
        attempt before a period much higher than the membership cycle
        period has elapsed" (Section 6.4); honouring that is the caller's
        responsibility. After recovery the node is silent until it joins.
        """
        if not self.crashed:
            raise ProtocolError(f"node {self.node_id} has not crashed")
        self.controller.crashed = False
        self.controller.tec = 0
        self.controller.rec = 0
        self.backend.reset()
        if self._sim.spans.enabled:
            self._sim.spans.instant("node.recover", "node", node=self.node_id)
        self._sim.trace.record(self._sim.now, "node.recover", node=self.node_id)


class DualChannelNetwork:
    """A CANELy network over two replicated channels (Fig. 11's optional
    channel redundancy): two independent buses, two controllers per node,
    the protocol suite running over a :class:`DualChannelLayer`.

    A whole channel can be taken out with :meth:`fail_channel`; the
    protocols never notice.
    """

    def __init__(
        self,
        node_count: int,
        config: Optional[CanelyConfig] = None,
        pairing_window: Optional[int] = None,
        spans: bool = False,
    ) -> None:
        from repro.can.channels import DualChannelLayer
        from repro.sim.clock import us

        self.config = config if config is not None else CanelyConfig()
        if node_count > self.config.capacity:
            raise ConfigurationError(
                f"{node_count} nodes exceed the configured capacity "
                f"{self.config.capacity}"
            )
        self.sim = Simulator()
        self.sim.spans.enabled = spans
        self.buses = (CanBus(self.sim), CanBus(self.sim))
        window = pairing_window if pairing_window is not None else us(500)
        self.nodes: Dict[int, CanelyNode] = {}
        for node_id in range(node_count):
            layers = []
            for bus in self.buses:
                controller = CanController(node_id)
                bus.attach(controller)
                layers.append(CanStandardLayer(controller))
            dual = DualChannelLayer(self.sim, layers[0], layers[1], window)
            self.nodes[node_id] = CanelyBackend.build_node(
                node_id, self.sim, None, self.config, layer=dual
            )

    def fail_channel(self, channel_index: int) -> None:
        """Permanently silence one whole channel (cable destroyed, channel
        babbling fenced off, ...). The other channel carries on."""
        # A channel that never provides service again: an unbounded
        # inaccessibility window.
        self.buses[channel_index].inject_inaccessibility(2**40)

    # The query helpers mirror CanelyNetwork's.

    def node(self, node_id: int) -> CanelyNode:
        """The stack of one node."""
        return self.nodes[node_id]

    def join_all(self) -> None:
        """Every node requests to join."""
        for node in self.nodes.values():
            node.join()

    def run_for(self, duration: int) -> None:
        """Advance the simulation by ``duration`` ticks."""
        self.sim.run_until(self.sim.now + duration)

    def run_cycles(self, cycles: float) -> None:
        """Advance by a number of membership cycle periods."""
        self.run_for(round(cycles * self.config.tm))

    def scenario(self, seed: Optional[int] = None):
        """A fluent :class:`~repro.workloads.builder.ScenarioBuilder` over
        this network; ``seed`` labels the scenario in error messages."""
        from repro.workloads.builder import ScenarioBuilder

        return ScenarioBuilder(self, seed=seed)

    def member_views(self) -> Dict[int, NodeSet]:
        """The membership view at every correct full member."""
        return {
            node.node_id: node.view().members
            for node in self.nodes.values()
            if not node.crashed and node.is_member
        }

    def views_agree(self) -> bool:
        """True when all correct full members hold the same view."""
        views = list(self.member_views().values())
        return all(view == views[0] for view in views)

    def agreed_view(self) -> NodeSet:
        """The common view; raises if members disagree."""
        views = self.member_views()
        if not views:
            return NodeSet.empty(self.config.capacity)
        first = next(iter(views.values()))
        if any(view != first for view in views.values()):
            raise AssertionError(f"views disagree: {views!r}")
        return first


class CanelyNetwork:
    """A simulated membership network: simulator + bus segments + n stacks.

    ``backend`` selects the membership stack every node runs — the paper's
    CANELy suite (``"canely"``, the default) or a rival registered with
    :func:`repro.core.backend.register_backend` (e.g. ``"swim"``); the
    network API is backend-neutral. ``segments`` splits the population
    over that many :class:`CanBus` segments bridged by a single multi-port
    store-and-forward :class:`~repro.can.gateway.CanGateway` (nodes are
    partitioned contiguously); ``segments=1`` is the seed single-bus
    topology, bit-identical to before the parameter existed. The fault
    ``injector`` always drives segment 0.
    """

    def __init__(
        self,
        node_count: int,
        config=None,
        injector: Optional[FaultInjector] = None,
        timing: Optional[BitTiming] = None,
        clustering: bool = True,
        timer_drifts: Optional[Dict[int, float]] = None,
        spans: bool = False,
        backend="canely",
        segments: int = 1,
        gateway_latency: int = 0,
        gateway_queue_limit: int = 64,
    ) -> None:
        backend_cls = resolve_backend(backend)
        self.backend_cls = backend_cls
        self.backend_name = backend_cls.name
        self.config = backend_cls.coerce_config(config)
        if node_count > self.config.capacity:
            raise ConfigurationError(
                f"{node_count} nodes exceed the configured capacity "
                f"{self.config.capacity}"
            )
        if not 1 <= segments <= max(node_count, 1):
            raise ConfigurationError(
                f"segments must be in 1..{max(node_count, 1)}, got {segments}"
            )
        self.sim = Simulator()
        self.sim.spans.enabled = spans
        if segments == 1:
            self.bus = CanBus(
                self.sim, timing=timing, injector=injector, clustering=clustering
            )
            self.segments = [self.bus]
            self.gateway = None
        else:
            from repro.can.gateway import CanGateway

            self.segments = [
                CanBus(
                    self.sim,
                    timing=timing,
                    injector=injector if index == 0 else None,
                    clustering=clustering,
                )
                for index in range(segments)
            ]
            self.bus = self.segments[0]
            self.gateway = CanGateway(
                self.sim,
                latency=gateway_latency,
                queue_limit=gateway_queue_limit,
            )
            for segment in self.segments:
                self.gateway.attach(segment)
        #: node id -> segment index (contiguous blocks in id order).
        self.segment_map: Dict[int, int] = {
            node_id: node_id * segments // node_count
            for node_id in range(node_count)
        }
        drifts = timer_drifts or {}
        self.nodes: Dict[int, CanelyNode] = {
            node_id: backend_cls.build_node(
                node_id,
                self.sim,
                self.segments[self.segment_map[node_id]],
                self.config,
                timer_drift=drifts.get(node_id, 0.0),
            )
            for node_id in range(node_count)
        }

    @property
    def buses(self):
        """All bus segments, as a tuple (the idle-skip probe reads this)."""
        return tuple(self.segments)

    def segment_of(self, node_id: int) -> int:
        """The segment index ``node_id`` is attached to."""
        return self.segment_map[node_id]

    def node(self, node_id: int) -> CanelyNode:
        """The stack of one node."""
        return self.nodes[node_id]

    def join_all(self) -> None:
        """Every node requests to join (cold-start bootstrap)."""
        for node in self.nodes.values():
            node.join()

    def run_for(self, duration: int) -> None:
        """Advance the simulation by ``duration`` ticks."""
        self.sim.run_until(self.sim.now + duration)

    def run_cycles(self, cycles: float) -> None:
        """Advance by a number of membership cycle periods."""
        self.run_for(round(cycles * self.config.tm))

    def scenario(self, seed: Optional[int] = None):
        """A fluent :class:`~repro.workloads.builder.ScenarioBuilder` over
        this network; ``seed`` labels the scenario in error messages."""
        from repro.workloads.builder import ScenarioBuilder

        return ScenarioBuilder(self, seed=seed)

    # -- network-wide assertions -----------------------------------------------------------

    def correct_nodes(self) -> List[CanelyNode]:
        """Nodes that have not crashed."""
        return [node for node in self.nodes.values() if not node.crashed]

    def member_views(self) -> Dict[int, NodeSet]:
        """The membership view at every correct full member."""
        return {
            node.node_id: node.view().members
            for node in self.correct_nodes()
            if node.is_member
        }

    def views_agree(self) -> bool:
        """True when all correct full members hold the same view."""
        views = list(self.member_views().values())
        return all(view == views[0] for view in views)

    def agreed_view(self) -> NodeSet:
        """The common view; raises if members disagree."""
        views = self.member_views()
        if not views:
            return NodeSet.empty(self.config.capacity)
        first = next(iter(views.values()))
        disagreeing = {
            node_id: view for node_id, view in views.items() if view != first
        }
        if disagreeing:
            raise AssertionError(
                f"views disagree: {first!r} at most nodes vs {disagreeing!r}"
            )
        return first
