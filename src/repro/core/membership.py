"""Site membership protocol — paper Fig. 9.

Maintains a consistent site membership view ``Vs`` at every correct node:

* **Join/leave** requests travel as remote frames and accumulate, at every
  node alike, in the joining (``Vj``) / leaving (``Vl``) sets during a
  membership cycle.
* When the **membership cycle timer** (period ``Tm``) expires and requests
  are pending, the RHA micro-protocol establishes an agreed reception
  history vector; with no pending request the RHA execution is skipped to
  save bandwidth and the view is refreshed locally.
* **Node crash failures** signalled by the companion failure detection
  service are notified immediately and folded into the view at the next
  cycle boundary (``Fs``).
* A node **joining an empty system** bootstraps when its join-wait timer
  (``Tjoin_wait``, much longer than ``Tm``) expires with no full member
  heard: it temporarily adopts ``Vj`` as its view and starts RHA itself.

Pseudocode correspondence: ``i00-i01`` initialization, ``a00-a18`` the
auxiliary functions (``msh-view-proc``, ``msh-data-proc``,
``msh-chg-nty``), ``s00-s34`` the event clauses.

Two details the paper omits "for simplicity of exposition" are implemented
explicitly and documented here:

* when the *local* node enters the view, failure detection is started for
  **every** member (the pseudocode's a04-a05 only covers the newly joined
  nodes, which is sufficient at nodes that were already members);
* repeated failure signs for a node already notified in this cycle are not
  re-notified.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.failure_detector import FailureDetector
from repro.core.fda import FdaProtocol
from repro.core.rha import RhaProtocol
from repro.core.state import MembershipState
from repro.core.views import MembershipChange, MembershipView
from repro.errors import MembershipError
from repro.sim.kernel import Simulator
from repro.sim.timers import Alarm, TimerService
from repro.util.sets import NodeSet

ChangeCallback = Callable[[MembershipChange], None]


class MembershipProtocol:
    """Per-node site membership protocol entity."""

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        config: CanelyConfig,
        state: MembershipState,
        rha: RhaProtocol,
        detector: FailureDetector,
        fda: FdaProtocol,
    ) -> None:
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self._config = config
        self._state = state
        self._rha = rha
        self._detector = detector
        self._fda = fda
        self._tid: Optional[Alarm] = None  # i00
        # Which timeout the alarm carries: the bootstrap fallback of s18-s19
        # only applies to the *join-wait* timeout (footnote 9), never to a
        # regular membership cycle expiring at a passive non-member.
        self._timer_kind = "cycle"
        self._listeners: List[ChangeCallback] = []
        self._round_index = 0
        self._last_view_time: Optional[int] = None
        self._was_member = False
        self._has_left = False
        self._removed_at: Optional[int] = None
        self._spans = sim.spans
        # Bound metric methods resolved once — view installs run per cycle.
        metrics = sim.metrics
        self._inc_views_installed = metrics.counter("msh.views_installed").inc
        self._inc_failures_folded = metrics.counter("msh.failures_folded").inc
        self._observe_cycle_ticks = metrics.histogram("msh.cycle_ticks").observe
        self._inc_change_notifications = metrics.counter(
            "msh.change_notifications"
        ).inc
        layer.add_rtr_ind(self._on_join_ind, mtype=MessageType.JOIN)  # s04
        layer.add_rtr_ind(self._on_leave_ind, mtype=MessageType.LEAVE)  # s10
        detector.on_failure(self._on_failure)  # s13
        rha.on_init(self._on_rha_init)  # s17
        rha.on_end(self._on_rha_end)  # s28

    # -- upper-layer interface (Fig. 5) ------------------------------------------

    def on_change(self, callback: ChangeCallback) -> None:
        """Register a ``msh-can.nty`` membership change listener."""
        self._listeners.append(callback)

    def view(self) -> MembershipView:
        """``msh-can.req(Get Membership View)``: the current view."""
        return MembershipView(
            members=self._state.view,
            round_index=self._round_index,
            time=self._sim.now,
        )

    @property
    def is_member(self) -> bool:
        """True while the local node is a full member of the view."""
        return self._layer.node_id in self._state.view

    def join(self) -> None:
        """``msh-can.req(JOIN)``: ask to enter the site membership view."""
        local = self._layer.node_id
        if local in self._state.view:  # s00 guard
            return
        cooldown = self._config.reintegration_cooldown
        if (
            cooldown
            and self._removed_at is not None
            and self._sim.now - self._removed_at < cooldown
        ):
            # Section 6.4: reintegration attempts inside the cooldown
            # violate the protocol's operating assumption.
            raise MembershipError(
                f"node {local} must wait "
                f"{cooldown - (self._sim.now - self._removed_at)} ticks "
                "before reintegrating"
            )
        self._has_left = False
        if self._timer_kind != "join" or not self._timers.is_pending(self._tid):
            # s01: maximum join wait delay (footnote 9: much longer than Tm).
            self._arm_timer(self._config.tjoin_wait, kind="join")
        self._layer.rtr_req(MessageId(MessageType.JOIN, node=local))  # s02

    def leave(self) -> None:
        """``msh-can.req(LEAVE)``: ask to be withdrawn from the view."""
        local = self._layer.node_id
        if local not in self._state.view:  # s07 guard
            return
        self._layer.rtr_req(MessageId(MessageType.LEAVE, node=local))  # s08

    def halt(self) -> None:
        """Cancel the cycle timer without touching state (node crash)."""
        self._timers.cancel_alarm(self._tid)
        self._tid = None

    def reset(self) -> None:
        """Forget all membership state and cancel the cycle timer (reboot)."""
        self._timers.cancel_alarm(self._tid)
        self._tid = None
        self._timer_kind = "cycle"
        empty = NodeSet.empty(self._config.capacity)
        self._state.view = empty
        self._state.joining = empty
        self._state.joining_aux = empty
        self._state.leaving = empty
        self._state.failed = empty
        self._was_member = False
        self._has_left = False
        self._last_view_time = None
        # A rebooted node has no memory of its removal; honouring the
        # cooldown across reboots is the operator's responsibility.
        self._removed_at = None

    # -- request indications -------------------------------------------------------

    def _in_range(self, node_id: int) -> bool:
        # Garbage identifiers (e.g. from a babbling node) must not be able
        # to corrupt the protocol state.
        return 0 <= node_id < self._config.capacity

    def _on_join_ind(self, mid: MessageId) -> None:
        if not self._in_range(mid.node):
            return
        self._state.joining = self._state.joining.add(mid.node)  # s05

    def _on_leave_ind(self, mid: MessageId) -> None:
        if not self._in_range(mid.node):
            return
        self._state.leaving = self._state.leaving.add(mid.node)  # s11

    # -- node failure notifications (s13-s16) ----------------------------------------

    def _on_failure(self, node_id: int) -> None:
        if not self._in_range(node_id):
            return
        if node_id in self._state.failed:
            return  # already notified in this cycle
        relevant = node_id in self._state.view or node_id in self._state.joining
        self._state.failed = self._state.failed.add(node_id)  # s14
        if relevant:
            # s15: immediate membership change notification for the crash.
            self._change_notify(
                self._state.view - self._state.failed,
                NodeSet.single(node_id, self._config.capacity),
            )

    # -- cycle boundary (s17-s27) -------------------------------------------------------

    def _on_rha_init(self) -> None:
        self._cycle_boundary(timer_expired=False)

    def _on_timer_expire(self) -> None:
        expired_kind = self._timer_kind
        self._tid = None
        self._cycle_boundary(timer_expired=True, expired_kind=expired_kind)

    def _cycle_boundary(
        self, timer_expired: bool, expired_kind: str = "cycle"
    ) -> None:
        local = self._layer.node_id
        if (
            timer_expired
            and expired_kind == "join"
            and local not in self._state.view
        ):  # s18
            # s19: the join-wait delay elapsed with no full member heard —
            # bootstrap the view from the joiners.
            self._state.view = self._state.joining
        # Cycle boundary housekeeping: let the FDA retire counter pairs
        # whose failure this layer never got to fold into a view.
        self._fda.advance_cycle()
        self._arm_timer(self._config.tm)  # s21: membership cycle period
        if self._state.joining or self._state.leaving:  # s22
            self._rha.request()  # s23
        else:
            self._view_proc(self._state.view)  # s25

    def _arm_timer(self, duration: int, kind: str = "cycle") -> None:
        self._timers.cancel_alarm(self._tid)
        self._timer_kind = kind
        self._tid = self._timers.start_alarm(
            duration, self._on_timer_expire, name="msh." + kind
        )

    # -- RHA termination (s28-s34) ---------------------------------------------------------

    def _on_rha_end(self, rhv: NodeSet) -> None:
        self._view_proc(rhv)  # s29
        joined = self._state.joining & self._state.view
        left = self._state.leaving & self._state.view.complement()
        if joined or left:  # s30
            # s31: membership change after a node join/leave operation.
            self._change_notify(
                self._state.view, NodeSet.empty(self._config.capacity)
            )
        self._data_proc()  # s33

    # -- msh-view-proc (a00-a02) ------------------------------------------------------------

    def _view_proc(self, proposed: NodeSet) -> None:
        state = self._state
        removed_failed = state.failed
        state.view = proposed - state.failed  # a01
        state.failed = NodeSet.empty(self._config.capacity)
        self._round_index += 1
        for node_id in removed_failed:
            # The failure was folded into a view: retire the FDA counters so
            # a (much later) reintegration of the identifier works afresh.
            self._fda.reset(node_id)
        self._inc_views_installed()
        if removed_failed:
            self._inc_failures_folded(len(removed_failed))
        if self._last_view_time is not None:
            self._observe_cycle_ticks(self._sim.now - self._last_view_time)
        self._last_view_time = self._sim.now
        if self._sim.trace.wants("msh.view"):
            self._sim.trace.record(
                self._sim.now,
                "msh.view",
                node=self._layer.node_id,
                members=state.view,
                round_index=self._round_index,
            )
        if self._spans.enabled:
            self._spans.instant(
                "msh.view",
                "msh",
                node=self._layer.node_id,
                members=len(state.view),
                failed=sorted(removed_failed),
                round_index=self._round_index,
            )

    # -- msh-data-proc (a03-a09) --------------------------------------------------------------

    def _data_proc(self) -> None:
        state = self._state
        local = self._layer.node_id
        is_member = local in state.view

        if is_member and not self._was_member:
            # Omitted detail (see module docstring): a node that just became
            # a member starts surveillance of *every* member, itself included
            # (its own timer drives the explicit life-sign heartbeat).
            for node_id in state.view:
                self._detector.start(node_id)
        elif is_member:
            for node_id in state.joining & state.view:  # a04
                self._detector.start(node_id)  # a05

        # a06: retire join requests — immediately when satisfied, within two
        # membership cycles otherwise (the auxiliary set V'j, footnote 10).
        state.joining = (state.joining - state.view) - state.joining_aux
        state.joining_aux = state.joining

        for node_id in state.leaving & state.view.complement():  # a07
            self._detector.stop(node_id)  # a08
        state.leaving = state.leaving & state.view  # a09

        if not is_member and self._was_member:
            # The local node is out of the view (left or declared failed):
            # stop every surveillance timer and start the reintegration
            # cooldown clock.
            for node_id in list(self._detector.monitored_nodes):
                self._detector.stop(node_id)
            self._removed_at = self._sim.now
        self._was_member = is_member

    # -- msh-chg-nty (a10-a18) ---------------------------------------------------------------

    def _change_notify(self, active: NodeSet, failed: NodeSet) -> None:
        local = self._layer.node_id
        change = MembershipChange(
            active=active,
            failed=failed,
            time=self._sim.now,
            local_node=local,
        )
        if local in self._state.view:  # a11
            self._deliver(change)  # a12: full-member notification
        elif local in self._state.leaving and not self._has_left:  # a13
            # a14-a15: the leaving node learns its withdrawal succeeded.
            self._timers.cancel_alarm(self._tid)
            self._tid = None
            self._has_left = True
            self._deliver(
                MembershipChange(
                    active=self._state.view,
                    failed=NodeSet.single(local, self._config.capacity),
                    time=self._sim.now,
                    local_node=local,
                )
            )

    def _deliver(self, change: MembershipChange) -> None:
        self._inc_change_notifications()
        self._sim.trace.record(
            change.time,
            "msh.change",
            node=change.local_node,
            active=change.active,
            failed=change.failed,
        )
        if self._spans.enabled:
            self._spans.instant(
                "msh.change",
                "msh",
                node=change.local_node,
                active=len(change.active),
                failed=sorted(change.failed),
            )
        for listener in list(self._listeners):
            listener(change)
