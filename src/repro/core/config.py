"""CANELy protocol configuration.

Gathers every timing and fault-model parameter used by the protocol suite.
All durations are kernel ticks (nanoseconds); use :func:`repro.sim.ms` /
:func:`repro.sim.us` to build them. The defaults reflect the operating
conditions evaluated in the paper's Section 6.5 (1 Mbps bus, membership
cycle periods of tens of milliseconds, moderately low omission degrees).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.clock import ms, us


@dataclass(frozen=True)
class CanelyConfig:
    """Protocol parameters for one CANELy network.

    Attributes:
        capacity: maximum node population ``n`` (NodeSet width, <= 64).
        tm: membership cycle period ``Tm``.
        thb: heartbeat period ``Thb`` — maximum interval between consecutive
            life-sign transmit requests of one node.
        ttd: bounded network transmission delay ``Ttd = Ttx + Tina``
            (MCAN4); added to remote-node surveillance timers.
        trha: RHA maximum termination time (the Fig. 7 protocol timer).
        tjoin_wait: maximum join wait delay — the bootstrap timeout a
            joining node arms before concluding no full member is active
            (much longer than ``tm`` by design).
        omission_degree: the model's ``k`` bound (MCAN3).
        inconsistent_degree: the model's ``j`` bound (LCAN4); RHA keeps a
            transmit request alive until more than ``j`` copies circulated.
        max_crash_failures: the model's ``f`` bound — nodes assumed to crash
            per reference interval, sizing FDA worst cases.
        reference_window: the reference time interval ``Trd`` the degree
            bounds are stated over.
    """

    capacity: int = 64
    tm: int = ms(50)
    thb: int = ms(10)
    ttd: int = ms(6)
    trha: int = ms(5)
    tjoin_wait: int = ms(150)
    omission_degree: int = 8
    inconsistent_degree: int = 2
    max_crash_failures: int = 4
    reference_window: int = ms(50)
    #: Section 6.4 assumption: a removed node does not attempt
    #: reintegration before a period much longer than ``tm`` has elapsed.
    #: 0 leaves the assumption to the caller; a positive value makes the
    #: membership layer enforce it (join() raises inside the cooldown).
    reintegration_cooldown: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.capacity <= 64:
            raise ConfigurationError(
                f"capacity must be in 1..64, got {self.capacity}"
            )
        for name in ("tm", "thb", "ttd", "trha", "tjoin_wait", "reference_window"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.trha > self.tm:
            raise ConfigurationError(
                "the RHA termination time must fit inside one membership "
                f"cycle: trha={self.trha} > tm={self.tm}"
            )
        if self.tjoin_wait <= self.tm:
            raise ConfigurationError(
                "tjoin_wait must exceed the membership cycle period "
                f"(got tjoin_wait={self.tjoin_wait}, tm={self.tm})"
            )
        if self.omission_degree < self.inconsistent_degree:
            raise ConfigurationError(
                "the omission degree k bounds the inconsistent degree j "
                f"(k={self.omission_degree} < j={self.inconsistent_degree})"
            )
        for name in (
            "omission_degree",
            "inconsistent_degree",
            "max_crash_failures",
            "reintegration_cooldown",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.reintegration_cooldown and self.reintegration_cooldown <= self.tm:
            raise ConfigurationError(
                "the reintegration cooldown must be much longer than the "
                f"membership cycle (got {self.reintegration_cooldown} <= "
                f"tm={self.tm})"
            )

    @classmethod
    def for_population(
        cls,
        node_count: int,
        bit_rate: int = 1_000_000,
        **overrides,
    ) -> "CanelyConfig":
        """A configuration whose ``Ttd`` is derived for a node population.

        ``Ttd`` must cover the worst-case queue-to-wire delay of a life-sign
        (MCAN4). The harshest, perfectly legal case is every member's
        heartbeat expiring in the same instant — a burst of ``n`` explicit
        life-sign remote frames, all of which must drain before the last
        node's surveillance deadline. We budget one worst-case remote frame
        per node, doubled for retransmissions/inaccessibility headroom.
        """
        from repro.can.bitstream import worst_case_frame_bits
        from repro.sim.clock import SEC

        frame_bits = worst_case_frame_bits(0, extended=True)
        frame_ticks = frame_bits * (SEC // bit_rate)
        ttd = max(ms(1), 2 * node_count * frame_ticks)
        capacity = overrides.pop("capacity", max(node_count, 1))
        return cls(capacity=capacity, ttd=overrides.pop("ttd", ttd), **overrides)

    @classmethod
    def scaled_to_bit_rate(
        cls, bit_rate: int, reference: "CanelyConfig" = None, **overrides
    ) -> "CanelyConfig":
        """A configuration rescaled from the 1 Mbps defaults.

        CAN trades bit rate for bus length (see :mod:`repro.can.phy`); a
        250 kbit/s industrial network needs every protocol period stretched
        by the same 4x factor or the life-sign traffic alone saturates the
        bus. This helper scales every duration of ``reference`` (default:
        the class defaults) by ``1 Mbps / bit_rate``.
        """
        if bit_rate <= 0:
            raise ConfigurationError(f"bit rate must be positive: {bit_rate}")
        reference = reference if reference is not None else cls()
        factor = 1_000_000 / bit_rate
        scaled = {
            name: round(getattr(reference, name) * factor)
            for name in (
                "tm",
                "thb",
                "ttd",
                "trha",
                "tjoin_wait",
                "reference_window",
            )
        }
        scaled.update(
            capacity=reference.capacity,
            omission_degree=reference.omission_degree,
            inconsistent_degree=reference.inconsistent_degree,
            max_crash_failures=reference.max_crash_failures,
        )
        scaled.update(overrides)
        return cls(**scaled)

    @property
    def remote_surveillance(self) -> int:
        """Surveillance timeout for remote nodes: ``Thb + Ttd`` (Fig. 8, a04)."""
        return self.thb + self.ttd

    @property
    def detection_latency_bound(self) -> int:
        """Worst-case crash detection latency at the detecting node.

        A node may transmit a life-sign right before crashing: the silence
        is noticed at most ``Thb + Ttd`` later.
        """
        return self.thb + self.ttd
