"""Node failure detection protocol — paper Fig. 8.

One surveillance timer per monitored node. Node activity — *any* data frame
(tapped via the ``can-data.nty`` extension, own transmissions included) or
an explicit life-sign (ELS) remote frame — restarts the node's timer, so
normal traffic implicitly doubles as heartbeats and explicit life-signs are
only ever transmitted by nodes that stayed silent for a whole heartbeat
period.

* The timer of the **local** node runs for ``Thb``; its expiry broadcasts an
  ELS remote frame (which, arriving back as an indication, restarts the
  timer — Fig. 8 lines f03-f04).
* The timer of a **remote** node runs for ``Thb + Ttd`` (the transmission
  delay bound of MCAN4); its expiry signals a node crash, disseminated
  consistently through the FDA micro-protocol.

Pseudocode correspondence: ``i00`` initialization, ``a00-a06`` the
``fd-alarm-start`` auxiliary function, ``f00-f19`` the event clauses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.fda import FdaProtocol
from repro.sim import timers as _timers_mod
from repro.sim.timers import Alarm, TimerService

FailureCallback = Callable[[int], None]


class FailureDetector:
    """Per-node failure detection protocol entity."""

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        config: CanelyConfig,
        fda: FdaProtocol,
    ) -> None:
        self._layer = layer
        self._timers = timers
        self._sim = timers.sim
        self._config = config
        self._fda = fda
        # Surveillance durations resolved once (the config is frozen): the
        # rearm below runs per observed frame per monitored node.
        self._local_id = layer.node_id
        self._duration_local = config.thb  # a02
        self._duration_remote = config.thb + config.ttd  # a04
        # i00: surveillance timer identifiers, kept per monitored node.
        self._tid: Dict[int, Optional[Alarm]] = {}
        self._listeners: List[FailureCallback] = []
        self.els_sent = 0
        # Bound metric methods resolved once — expiries run per heartbeat.
        metrics = self._sim.metrics
        self._inc_els_sent = metrics.counter("fd.els_sent").inc
        self._inc_detections = metrics.counter("fd.detections").inc
        self._spans = self._sim.spans
        layer.add_data_nty(self._on_activity)  # f03: implicit life-signs
        # f03: explicit life-signs share the activity clause (own
        # transmissions included, which is how the local heartbeat timer
        # re-arms after an ELS broadcast).
        layer.add_rtr_ind(self._on_activity, mtype=MessageType.ELS)
        fda.on_failure_sign(self._on_failure_sign)  # f13

    # -- upper-layer interface ----------------------------------------------------

    def on_failure(self, callback: FailureCallback) -> None:
        """Register an ``fd-can.nty`` listener, called with the failed id."""
        self._listeners.append(callback)

    def start(self, node_id: int) -> None:
        """``fd-can.req(START, r)``: begin surveillance of ``node_id``."""
        self._alarm_start(node_id)  # f00-f01

    def stop(self, node_id: int) -> None:
        """``fd-can.req(STOP, r)``: end surveillance of ``node_id``."""
        alarm = self._tid.pop(node_id, None)  # f17-f18
        self._timers.cancel_alarm(alarm)

    def reset(self) -> None:
        """Stop every surveillance timer (node reboot)."""
        for node_id in list(self._tid):
            self.stop(node_id)

    def monitoring(self, node_id: int) -> bool:
        """True while the service is active for ``node_id``."""
        return node_id in self._tid

    @property
    def monitored_nodes(self) -> List[int]:
        """Nodes currently under surveillance."""
        return sorted(self._tid)

    # -- fd-alarm-start (a00-a06) ---------------------------------------------------

    def _alarm_start(self, node_id: int) -> None:
        if node_id == self._local_id:  # a01
            duration = self._duration_local  # a02: local timer
        else:
            duration = self._duration_remote  # a04: remote
        # This runs once per observed frame per monitored node — the
        # hottest path of the whole protocol suite. The in-place restart
        # reuses the alarm handle and its expiry closure; the
        # cancel-and-start fallback below is the seed-faithful idiom the
        # restart is provably equivalent to.
        timers = self._timers
        alarm = self._tid.get(node_id)
        if alarm is not None and timers.restart_alarm(alarm, duration):
            return
        timers.cancel_alarm(alarm)
        self._tid[node_id] = timers.start_alarm(
            duration,
            lambda: self._on_expire(node_id),
            name="fd.surveillance",
            tag=node_id,
        )

    # -- event clauses ------------------------------------------------------------------

    def _on_activity(self, mid: MessageId) -> None:
        # f03-f05: any frame from a monitored node — a data frame (implicit
        # activity) or an explicit life-sign — restarts its surveillance
        # timer. One dict probe resolves both "monitored?" and the alarm
        # handle, and the common rearm is inlined all the way down to the
        # kernel queue's in-place reschedule: this upcall runs once per
        # observed frame per monitored node, and at that rate even
        # ``restart_alarm``'s call frame is measurable. The inline body
        # transcribes its heap fast path exactly (same guards, same
        # effect); everything else falls back to the method and, failing
        # that, the seed-faithful ``_alarm_start``.
        node = mid.node
        alarm = self._tid.get(node)
        if alarm is None:
            if node in self._tid:
                self._alarm_start(node)
            return
        duration = (
            self._duration_local
            if node == self._local_id
            else self._duration_remote
        )
        timers = self._timers
        if (
            timers._rearm_plain
            and _timers_mod.FAST_REARM
            and alarm._active
            and alarm._span is None
            and not self._spans.enabled
        ):
            sim = self._sim
            event = alarm._event
            queue = sim._queue
            if event._queue is queue and not event.cancelled:
                deadline = sim._now + duration
                if deadline >= event.time:
                    queue.reschedule(event, deadline)
                    alarm.deadline = deadline
                    return
        if timers.restart_alarm(alarm, duration):
            return
        self._alarm_start(node)

    def _on_expire(self, node_id: int) -> None:
        if node_id not in self._tid:
            return
        if node_id == self._layer.node_id:  # f07
            # f08: the local node stayed silent for Thb — broadcast an
            # explicit life-sign. The returning indication restarts the timer.
            self.els_sent += 1
            self._inc_els_sent()
            els_span = None
            if self._spans.enabled:
                els_span = self._spans.instant(
                    "fd.els", "fd", node=node_id
                )
                self._spans.push(els_span)
            try:
                self._layer.rtr_req(MessageId(MessageType.ELS, node=node_id))
            finally:
                if els_span is not None:
                    self._spans.pop()
        else:
            # f10: a remote node stayed silent beyond Thb + Ttd — it failed.
            self._inc_detections()
            if self._sim.trace.wants("fd.detect"):
                self._sim.trace.record(
                    self._sim.now,
                    "fd.detect",
                    node=self._layer.node_id,
                    failed=node_id,
                )
            detect_span = None
            if self._spans.enabled:
                detect_span = self._spans.instant(
                    "fd.detect",
                    "fd",
                    node=self._layer.node_id,
                    failed=node_id,
                )
                self._spans.push(detect_span)
            try:
                self._fda.request(node_id)
            finally:
                if detect_span is not None:
                    self._spans.pop()

    def _on_failure_sign(self, node_id: int) -> None:
        # f13-f16: a consistent failure-sign arrived: stop surveillance and
        # notify the companion site membership protocol.
        alarm = self._tid.pop(node_id, None)  # f14
        self._timers.cancel_alarm(alarm)
        for listener in list(self._listeners):  # f15
            listener(node_id)
