"""Shared membership protocol state.

The paper's Fig. 7 notes that the RHA micro-protocol *shares* the membership
sets with the upper-layer entities: ``Vs`` (the site membership view),
``Vj`` (nodes in a joining process) and ``Vl`` (nodes requesting
withdrawal). :class:`MembershipState` is that shared blackboard: one
instance per node, referenced by both the RHA machine and the membership
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.sets import NodeSet


@dataclass
class MembershipState:
    """Per-node shared membership sets (paper notation in parentheses).

    Attributes:
        view: the site membership view (``Vs``) — the full members.
        joining: nodes in a joining process (``Vj``).
        joining_aux: the auxiliary joining set (``V'j``, Fig. 9 footnote):
            lets a node whose join suffered an inconsistent failure be
            retired from ``Vj`` within two membership cycles.
        leaving: nodes requesting withdrawal (``Vl``).
        failed: node crash failures detected in the current cycle (``Fs``).
    """

    capacity: int = 64
    view: NodeSet = field(default=None)
    joining: NodeSet = field(default=None)
    joining_aux: NodeSet = field(default=None)
    leaving: NodeSet = field(default=None)
    failed: NodeSet = field(default=None)

    def __post_init__(self) -> None:
        empty = NodeSet.empty(self.capacity)
        if self.view is None:
            self.view = empty
        if self.joining is None:
            self.joining = empty
        if self.joining_aux is None:
            self.joining_aux = empty
        if self.leaving is None:
            self.leaving = empty
        if self.failed is None:
            self.failed = empty

    def initial_rhv(self) -> NodeSet:
        """A full member's initial reception history vector.

        Fig. 7 line a03: ``(Vs | Vj) - Vl`` (before intersecting with any
        received vector).
        """
        return (self.view | self.joining) - self.leaving
