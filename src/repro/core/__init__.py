"""CANELy node failure detection and site membership (the paper's core).

The four protocol machines map one-to-one onto the paper's figures:

* :class:`~repro.core.fda.FdaProtocol` — Failure Detection Agreement
  (Fig. 6): reliable diffusion of failure-sign remote frames.
* :class:`~repro.core.rha.RhaProtocol` — Reception History Agreement
  (Fig. 7): consensus on the reception history vector for join/leave.
* :class:`~repro.core.failure_detector.FailureDetector` — the node failure
  detection protocol (Fig. 8): surveillance timers, implicit life-signs via
  ``can-data.nty``, explicit life-sign (ELS) remote frames.
* :class:`~repro.core.membership.MembershipProtocol` — the site membership
  protocol (Fig. 9): membership cycles, join/leave handling, view updates.

:class:`~repro.core.stack.CanelyNode` assembles the full stack on one CAN
controller and :class:`~repro.core.stack.CanelyNetwork` wires a whole
simulated network — the entry points most users want.
"""

from repro.core.config import CanelyConfig
from repro.core.failure_detector import FailureDetector
from repro.core.fda import FdaProtocol
from repro.core.groups import GroupView, ProcessGroupService
from repro.core.membership import MembershipProtocol
from repro.core.rha import RhaProtocol
from repro.core.stack import CanelyNetwork, CanelyNode
from repro.core.state import MembershipState
from repro.core.views import MembershipChange, MembershipView

__all__ = [
    "CanelyConfig",
    "CanelyNetwork",
    "CanelyNode",
    "FailureDetector",
    "FdaProtocol",
    "GroupView",
    "MembershipChange",
    "MembershipProtocol",
    "MembershipState",
    "MembershipView",
    "ProcessGroupService",
    "RhaProtocol",
]
