"""Failure Detection Agreement (FDA) micro-protocol — paper Fig. 6.

A simplified and optimized Eager Diffusion (EDCAN) instance that secures the
reliable broadcast of a *failure-sign* message. The failure-sign carries
only control information — the failed node identifier ``r`` and the FDA
message type — so it travels in a CAN **remote frame**, and identical
failure-signs issued by several detectors cluster into a single physical
frame on the wired-AND bus.

Pseudocode correspondence (line numbers from Fig. 6):

* ``i00-i01`` — per-mid duplicate and request counters.
* ``s00-s05`` — invocation (``fda-can.req``): issue a single transmit
  request for the failure-sign.
* ``r00-r09`` — reception: deliver the first copy upward (``fda-can.nty``)
  and, in the absence of an equivalent transmit request, ask the CAN layer
  to retransmit the failure-sign.

Counter lifetime: the membership layer retires a mid's counters with
:meth:`FdaProtocol.reset` once the failure is folded into a view. Counters
whose failure the membership layer *never* observes (a garbage identifier,
a node outside every view) used to leak; they are now evicted after
``eviction_cycles`` membership cycles without activity — safe because the
fault model bounds failure-sign retransmissions to the reference window
``Trd`` (on the order of one cycle), so an untouched counter can never be
consulted again.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.obs.spans import NULL_TRACER
from repro.sim.kernel import Simulator

FailureSignCallback = Callable[[int], None]

#: Membership cycles an untouched counter pair survives before eviction.
DEFAULT_EVICTION_CYCLES = 4


def _metrics_noop(amount: int = 1) -> None:
    """Stand-in for a counter ``inc`` when no simulator is attached."""


class FdaProtocol:
    """Per-node FDA protocol entity.

    ``sim`` is optional for substrate-only tests; when present, failure-sign
    deliveries and counter retirements are traced (``fda.nty`` /
    ``fda.reset`` — what the online monitors watch) and counted in
    ``sim.metrics``.
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        sim: Optional[Simulator] = None,
        eviction_cycles: int = DEFAULT_EVICTION_CYCLES,
    ) -> None:
        if eviction_cycles < 1:
            raise ValueError(
                f"eviction_cycles must be at least 1: {eviction_cycles}"
            )
        self._layer = layer
        self._sim = sim
        self._spans = sim.spans if sim is not None else NULL_TRACER
        self._eviction_cycles = eviction_cycles
        # Bound metric methods resolved once — reception runs per frame.
        if sim is not None:
            metrics = sim.metrics
            self._inc_requests = metrics.counter("fda.requests").inc
            self._inc_delivered = metrics.counter("fda.delivered").inc
            self._inc_retransmissions = metrics.counter(
                "fda.retransmissions"
            ).inc
            self._inc_evicted = metrics.counter("fda.evicted").inc
        else:
            noop = _metrics_noop
            self._inc_requests = noop
            self._inc_delivered = noop
            self._inc_retransmissions = noop
            self._inc_evicted = noop
        # i00-i01: number of failure-sign duplicates / transmit requests,
        # kept per message identifier (i.e. per failed-node identifier).
        self._fs_ndup: Dict[MessageId, int] = {}
        self._fs_nreq: Dict[MessageId, int] = {}
        # Membership cycle index of each mid's last counter activity.
        self._cycle = 0
        self._last_touch: Dict[MessageId, int] = {}
        self._listeners: List[FailureSignCallback] = []
        layer.add_rtr_ind(self._on_rtr_ind, mtype=MessageType.FDA)

    def on_failure_sign(self, callback: FailureSignCallback) -> None:
        """Register an ``fda-can.nty`` listener, called with the failed id."""
        self._listeners.append(callback)

    # -- sender side (s00-s05) ----------------------------------------------------

    def request(self, failed_node: int) -> None:
        """``fda-can.req``: reliably broadcast a failure-sign for ``failed_node``."""
        mid = MessageId(MessageType.FDA, node=failed_node)
        self._last_touch[mid] = self._cycle
        self._fs_nreq[mid] = self._fs_nreq.get(mid, 0) + 1  # s01
        if self._fs_nreq[mid] == 1:  # s02
            self._inc_requests()
            self._layer.rtr_req(mid)  # s03: failure-sign transmit request

    # -- recipient side (r00-r09) -----------------------------------------------------

    def _on_rtr_ind(self, mid: MessageId) -> None:
        self._last_touch[mid] = self._cycle
        self._fs_ndup[mid] = self._fs_ndup.get(mid, 0) + 1  # r01
        if self._fs_ndup[mid] != 1:  # r02
            return
        sim = self._sim
        if sim is not None:
            self._inc_delivered()
            if sim.trace.wants("fda.nty"):
                sim.trace.record(
                    sim.now,
                    "fda.nty",
                    node=self._layer.node_id,
                    failed=mid.node,
                )
        nty_span = None
        if self._spans.enabled:
            # Everything downstream — the fd/membership notification chain
            # and the r06 echo retransmission — is a consequence of this
            # first-copy delivery.
            nty_span = self._spans.instant(
                "fda.nty", "fda", node=self._layer.node_id, failed=mid.node
            )
            self._spans.push(nty_span)
        try:
            for listener in list(self._listeners):  # r03: fda-can.nty upward
                listener(mid.node)
            self._fs_nreq[mid] = self._fs_nreq.get(mid, 0) + 1  # r04
            if self._fs_nreq[mid] == 1:  # r05
                self._inc_retransmissions()
                self._layer.rtr_req(mid)  # r06: failure-sign retransmission
        finally:
            if nty_span is not None:
                self._spans.pop()

    # -- housekeeping ------------------------------------------------------------------

    def reset(self, failed_node: int) -> None:
        """Forget the counters for one failed node identifier.

        Called by the membership layer once the failure has been processed
        in a view; safe because a removed node does not attempt
        reintegration before a period much longer than the membership cycle
        (Section 6.4 assumption).
        """
        mid = MessageId(MessageType.FDA, node=failed_node)
        had_dup = self._fs_ndup.pop(mid, None) is not None
        had_req = self._fs_nreq.pop(mid, None) is not None
        retired = had_dup or had_req
        self._last_touch.pop(mid, None)
        if retired and self._sim is not None:
            self._sim.trace.record(
                self._sim.now,
                "fda.reset",
                node=self._layer.node_id,
                failed=failed_node,
            )

    def reset_all(self) -> None:
        """Forget every counter (node reboot)."""
        self._fs_ndup.clear()
        self._fs_nreq.clear()
        self._last_touch.clear()

    def advance_cycle(self) -> int:
        """Note a membership cycle boundary; evict long-untouched counters.

        Called by the membership layer once per cycle. Counter pairs with
        no activity for ``eviction_cycles`` cycles are dropped — the
        eviction path for failures the membership layer never folds into a
        view, without which week-long campaigns leak one counter pair per
        garbage identifier. Returns the number of mids evicted.
        """
        self._cycle += 1
        horizon = self._cycle - self._eviction_cycles
        stale = [
            mid
            for mid, touched in self._last_touch.items()
            if touched <= horizon
        ]
        for mid in stale:
            del self._last_touch[mid]
            self._fs_ndup.pop(mid, None)
            self._fs_nreq.pop(mid, None)
            if self._sim is not None:
                self._sim.trace.record(
                    self._sim.now,
                    "fda.evict",
                    node=self._layer.node_id,
                    failed=mid.node,
                )
        if stale:
            self._inc_evicted(len(stale))
        return len(stale)

    @property
    def tracked_mids(self) -> int:
        """Distinct failed-node identifiers with live counters."""
        return len(
            self._fs_ndup.keys() | self._fs_nreq.keys() | self._last_touch.keys()
        )

    def duplicates_seen(self, failed_node: int) -> int:
        """Physical failure-sign copies observed for ``failed_node``."""
        return self._fs_ndup.get(MessageId(MessageType.FDA, node=failed_node), 0)
