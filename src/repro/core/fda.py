"""Failure Detection Agreement (FDA) micro-protocol — paper Fig. 6.

A simplified and optimized Eager Diffusion (EDCAN) instance that secures the
reliable broadcast of a *failure-sign* message. The failure-sign carries
only control information — the failed node identifier ``r`` and the FDA
message type — so it travels in a CAN **remote frame**, and identical
failure-signs issued by several detectors cluster into a single physical
frame on the wired-AND bus.

Pseudocode correspondence (line numbers from Fig. 6):

* ``i00-i01`` — per-mid duplicate and request counters.
* ``s00-s05`` — invocation (``fda-can.req``): issue a single transmit
  request for the failure-sign.
* ``r00-r09`` — reception: deliver the first copy upward (``fda-can.nty``)
  and, in the absence of an equivalent transmit request, ask the CAN layer
  to retransmit the failure-sign.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType

FailureSignCallback = Callable[[int], None]


class FdaProtocol:
    """Per-node FDA protocol entity."""

    def __init__(self, layer: CanStandardLayer) -> None:
        self._layer = layer
        # i00-i01: number of failure-sign duplicates / transmit requests,
        # kept per message identifier (i.e. per failed-node identifier).
        self._fs_ndup: Dict[MessageId, int] = {}
        self._fs_nreq: Dict[MessageId, int] = {}
        self._listeners: List[FailureSignCallback] = []
        layer.add_rtr_ind(self._on_rtr_ind, mtype=MessageType.FDA)

    def on_failure_sign(self, callback: FailureSignCallback) -> None:
        """Register an ``fda-can.nty`` listener, called with the failed id."""
        self._listeners.append(callback)

    # -- sender side (s00-s05) ----------------------------------------------------

    def request(self, failed_node: int) -> None:
        """``fda-can.req``: reliably broadcast a failure-sign for ``failed_node``."""
        mid = MessageId(MessageType.FDA, node=failed_node)
        self._fs_nreq[mid] = self._fs_nreq.get(mid, 0) + 1  # s01
        if self._fs_nreq[mid] == 1:  # s02
            self._layer.rtr_req(mid)  # s03: failure-sign transmit request

    # -- recipient side (r00-r09) -----------------------------------------------------

    def _on_rtr_ind(self, mid: MessageId) -> None:
        self._fs_ndup[mid] = self._fs_ndup.get(mid, 0) + 1  # r01
        if self._fs_ndup[mid] != 1:  # r02
            return
        for listener in list(self._listeners):  # r03: fda-can.nty upward
            listener(mid.node)
        self._fs_nreq[mid] = self._fs_nreq.get(mid, 0) + 1  # r04
        if self._fs_nreq[mid] == 1:  # r05
            self._layer.rtr_req(mid)  # r06: failure-sign retransmission

    # -- housekeeping ------------------------------------------------------------------

    def reset(self, failed_node: int) -> None:
        """Forget the counters for one failed node identifier.

        Called by the membership layer once the failure has been processed
        in a view; safe because a removed node does not attempt
        reintegration before a period much longer than the membership cycle
        (Section 6.4 assumption).
        """
        mid = MessageId(MessageType.FDA, node=failed_node)
        self._fs_ndup.pop(mid, None)
        self._fs_nreq.pop(mid, None)

    def reset_all(self) -> None:
        """Forget every counter (node reboot)."""
        self._fs_ndup.clear()
        self._fs_nreq.clear()

    def duplicates_seen(self, failed_node: int) -> int:
        """Physical failure-sign copies observed for ``failed_node``."""
        return self._fs_ndup.get(MessageId(MessageType.FDA, node=failed_node), 0)
