"""Reception History Agreement (RHA) micro-protocol — paper Fig. 7.

RHA lets every correct node agree on a *reception history vector* (RHV): the
set of nodes to be included in the next site membership view. Each full
member proposes ``(Vs | Vj) - Vl``; proposals may differ when join/leave
requests suffered inconsistent omissions. The protocol converges on the
**intersection** of all proposals: a node receiving a vector that would
shrink its own aborts its pending broadcast, adopts the intersection and
broadcasts the new value. A transmit request stays valid until the value is
superseded or more than ``j`` copies of it circulated (LCAN4 makes more
copies unnecessary), which caps the bandwidth of each distinct value at
``j + 1`` frames.

Joining nodes, which have no valid view, may not start the protocol (Fig. 7
line s00) but must engage as soon as they receive an RHV signal, adopting
the received vector as their initial value (line a05).

Pseudocode correspondence: ``i00-i04`` initialization, ``a00-a09`` the
``rha-init-send`` auxiliary function, ``s00-s04`` the full-member
invocation, ``r00-r13`` reception, ``r14-r18`` protocol-timer expiry.

Implementation note: the paper keys the duplicate counters by the message
control field, which carries only the *cardinality* ``#RHV``; we key them by
the vector's value, which is strictly more precise (two distinct vectors of
equal cardinality never share a counter) and otherwise identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.core.config import CanelyConfig
from repro.core.state import MembershipState
from repro.sim.timers import Alarm, TimerService
from repro.util.sets import NodeSet

InitCallback = Callable[[], None]
EndCallback = Callable[[NodeSet], None]


class RhaProtocol:
    """Per-node RHA protocol entity."""

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        config: CanelyConfig,
        state: MembershipState,
    ) -> None:
        self._layer = layer
        self._timers = timers
        self._config = config
        self._state = state
        # i00: duplicate counters, kept per RHV value.
        self._rhv_ndup: Dict[bytes, int] = {}
        # i01-i02: protocol timer and current vector.
        self._tid: Optional[Alarm] = None
        self._rhv: NodeSet = NodeSet.empty(config.capacity)
        self._init_listeners: List[InitCallback] = []
        self._end_listeners: List[EndCallback] = []
        self.executions = 0
        self.frames_sent = 0
        self._spans = timers.sim.spans
        self._exec_span: Optional[int] = None
        # Bound metric methods resolved once — broadcasts run per cycle.
        metrics = timers.sim.metrics
        self._inc_executions = metrics.counter("rha.executions").inc
        self._inc_frames_sent = metrics.counter("rha.frames_sent").inc
        layer.add_data_ind(self._on_data_ind, mtype=MessageType.RHA)

    # -- upper-layer interface --------------------------------------------------

    def on_init(self, callback: InitCallback) -> None:
        """Register an ``rha-can.nty(INIT)`` listener."""
        self._init_listeners.append(callback)

    def on_end(self, callback: EndCallback) -> None:
        """Register an ``rha-can.nty(END, rhv)`` listener."""
        self._end_listeners.append(callback)

    @property
    def running(self) -> bool:
        """True while a protocol execution is in progress."""
        return self._tid is not None

    def request(self) -> None:
        """``rha-can.req``: start an execution (full members only, s00)."""
        if self._layer.node_id not in self._state.view:  # s00 guard
            return
        if self._tid is None:  # s01
            self._init_send(NodeSet.universe(self._config.capacity))  # s02

    # -- rha-init-send (a00-a09) -----------------------------------------------------

    def _init_send(self, received: NodeSet) -> None:
        local = self._layer.node_id
        self.executions += 1
        self._inc_executions()
        exec_span = None
        if self._spans.enabled:
            # The execution span stays open until the protocol timer fires;
            # it is pushed around the body so the timer span and the RHV
            # broadcast frame hang off it causally.
            exec_span = self._spans.begin("rha.execution", "rha", node=local)
            self._spans.push(exec_span)
        self._exec_span = exec_span
        try:
            # a01: protocol timer bounding the RHA termination time.
            self._tid = self._timers.start_alarm(
                self._config.trha, self._on_expire, name="rha.timer"
            )
            if local in self._state.view:  # a02
                # a03: full members intersect their own proposal with the
                # received vector (the universe when starting locally).
                self._rhv = self._state.initial_rhv() & received
            else:
                self._rhv = received  # a05: non-members adopt the received
            self._broadcast_rhv()  # a07
            for listener in list(self._init_listeners):  # a08
                listener()
        finally:
            if exec_span is not None:
                self._spans.pop()

    def _broadcast_rhv(self) -> None:
        mid = MessageId(
            MessageType.RHA, node=self._layer.node_id, ref=len(self._rhv)
        )
        self.frames_sent += 1
        self._inc_frames_sent()
        self._layer.data_req(mid, self._rhv.to_bytes())

    def _own_mid(self) -> MessageId:
        return MessageId(
            MessageType.RHA, node=self._layer.node_id, ref=len(self._rhv)
        )

    # -- recipient (r00-r13) --------------------------------------------------------

    def _on_data_ind(self, mid: MessageId, data: bytes) -> None:
        received = NodeSet.from_bytes(data, self._config.capacity)  # r00
        key = received.to_bytes()
        self._rhv_ndup[key] = self._rhv_ndup.get(key, 0) + 1  # r01
        if self._tid is None:  # r02
            self._init_send(received)  # r03
        elif (self._rhv & received) != self._rhv:  # r04
            # The received vector removes nodes from ours: supersede.
            self._layer.abort_req(self._own_mid())  # r05
            self._rhv = self._rhv & received  # r06
            self._broadcast_rhv()  # r07
        elif self._rhv_ndup.get(self._rhv.to_bytes(), 0) > self._config.inconsistent_degree:
            # r08: enough copies of the current value circulated (see LCAN4).
            self._layer.abort_req(self._own_mid())  # r09

    def reset(self) -> None:
        """Abort any execution in progress and forget all state (reboot)."""
        self._timers.cancel_alarm(self._tid)
        self._tid = None
        self._rhv = NodeSet.empty(self._config.capacity)
        self._rhv_ndup.clear()
        if self._exec_span is not None:
            self._spans.end(self._exec_span, outcome="reset")
            self._exec_span = None

    # -- protocol timer (r14-r18) -------------------------------------------------------

    def _on_expire(self) -> None:
        result = self._rhv
        if self._exec_span is not None:
            self._spans.end(self._exec_span, rhv=len(result))
            self._exec_span = None
        # Retire any still-pending broadcast of the final value: agreement
        # has been reached within the termination bound, and a stale RHV
        # signal after the execution ended would spuriously restart the
        # protocol at every node.
        self._layer.abort_req(self._own_mid())
        self._tid = None  # r16
        self._rhv = NodeSet.empty(self._config.capacity)  # r17
        self._rhv_ndup.clear()  # fresh counters for the next execution (i00)
        for listener in list(self._end_listeners):  # r15
            listener(result)
