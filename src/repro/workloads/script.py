"""Declarative scenario scripts.

A scenario — network size, protocol parameters, traffic, timed fault events
and a measurement plan — described as plain data (a dict, usually loaded
from JSON), executed reproducibly, yielding a structured report. This is
the batch interface behind ``python -m repro run``.

Example::

    {
      "nodes": 8,
      "config": {"tm_ms": 50, "thb_ms": 10},
      "traffic": [{"node": 0, "period_ms": 5}],
      "events": [
        {"at_ms": 500, "action": "crash", "node": 3},
        {"at_ms": 700, "action": "join", "node": 3, "recover": true}
      ],
      "duration_ms": 1500
    }

Supported actions: ``crash``, ``leave``, ``join`` (with ``"recover":
true`` to reboot a crashed node first), ``inaccessibility`` (with
``"bits"``) and — on dual-channel scenarios (``"channels": 2``) —
``fail_channel`` (with ``"channel"``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.sim.timeline import summarize
from repro.workloads.scenarios import detection_latencies
from repro.workloads.traffic import PeriodicSource

_ACTIONS = ("crash", "leave", "join", "inaccessibility", "fail_channel")
_NODELESS_ACTIONS = ("inaccessibility", "fail_channel")


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed event of a scenario."""

    at: int
    action: str
    node: Optional[int] = None
    recover: bool = False
    bits: int = 0
    channel: int = 0


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated scenario description."""

    nodes: int
    config: CanelyConfig
    traffic: List[Dict[str, int]]
    events: List[ScenarioEvent]
    duration: int
    channels: int = 1
    backend: str = "canely"
    segments: int = 1

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ScenarioSpec":
        """Validate and normalize a plain-data scenario description."""
        nodes = raw.get("nodes")
        if not isinstance(nodes, int) or nodes < 1:
            raise ConfigurationError(f"invalid node count: {nodes!r}")
        config_raw = dict(raw.get("config", {}))
        overrides = {}
        for key, value in config_raw.items():
            if key.endswith("_ms"):
                overrides[key[:-3]] = ms(value)
            else:
                overrides[key] = value
        config = CanelyConfig.for_population(nodes, **overrides)

        traffic = []
        for entry in raw.get("traffic", []):
            node = entry.get("node")
            period = entry.get("period_ms")
            if not isinstance(node, int) or not 0 <= node < nodes:
                raise ConfigurationError(f"traffic entry names bad node: {entry}")
            if not isinstance(period, (int, float)) or period <= 0:
                raise ConfigurationError(f"traffic entry needs period_ms: {entry}")
            traffic.append({"node": node, "period": ms(period)})

        events = []
        channels = raw.get("channels", 1)
        if channels not in (1, 2):
            raise ConfigurationError(f"channels must be 1 or 2: {channels!r}")

        for entry in raw.get("events", []):
            action = entry.get("action")
            if action not in _ACTIONS:
                raise ConfigurationError(
                    f"unknown action {action!r}; expected one of {_ACTIONS}"
                )
            at = entry.get("at_ms")
            if not isinstance(at, (int, float)) or at < 0:
                raise ConfigurationError(f"event needs at_ms: {entry}")
            node = entry.get("node")
            if action not in _NODELESS_ACTIONS and (
                not isinstance(node, int) or not 0 <= node < nodes
            ):
                raise ConfigurationError(f"event names bad node: {entry}")
            channel = int(entry.get("channel", 0))
            if action == "fail_channel":
                if channels != 2:
                    raise ConfigurationError(
                        "fail_channel requires a dual-channel scenario"
                    )
                if channel not in (0, 1):
                    raise ConfigurationError(f"bad channel index: {channel}")
            events.append(
                ScenarioEvent(
                    at=ms(at),
                    action=action,
                    node=node,
                    recover=bool(entry.get("recover", False)),
                    bits=int(entry.get("bits", 0)),
                    channel=channel,
                )
            )
        events.sort(key=lambda event: event.at)

        duration_ms = raw.get("duration_ms", 1000)
        if not isinstance(duration_ms, (int, float)) or duration_ms <= 0:
            raise ConfigurationError(f"invalid duration_ms: {duration_ms!r}")

        backend = raw.get("backend", "canely")
        from repro.core.backend import resolve_backend

        resolve_backend(backend)  # fail fast on unknown names
        segments = raw.get("segments", 1)
        if not isinstance(segments, int) or not 1 <= segments <= nodes:
            raise ConfigurationError(f"invalid segment count: {segments!r}")
        if channels == 2 and (backend != "canely" or segments != 1):
            raise ConfigurationError(
                "dual-channel scenarios support only the canely backend "
                "on a single segment"
            )
        return cls(
            nodes=nodes,
            config=config,
            traffic=traffic,
            events=events,
            duration=ms(duration_ms),
            channels=channels,
            backend=backend,
            segments=segments,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a JSON scenario description."""
        return cls.from_dict(json.loads(text))


@dataclass
class ScenarioReport:
    """What a scenario run produced."""

    final_view: List[int]
    views_agree: bool
    crash_latencies_ms: Dict[int, Optional[float]]
    bus_utilization: float
    physical_frames: int
    faulty_frames: int
    frames_by_type: Dict[str, int]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "final_view": self.final_view,
            "views_agree": self.views_agree,
            "crash_latencies_ms": self.crash_latencies_ms,
            "bus_utilization": round(self.bus_utilization, 6),
            "physical_frames": self.physical_frames,
            "faulty_frames": self.faulty_frames,
            "frames_by_type": self.frames_by_type,
        }


def run_scenario(spec: ScenarioSpec, monitors: bool = False) -> ScenarioReport:
    """Execute a scenario and collect its report.

    With ``monitors=True`` the standard online invariant monitors (see
    :mod:`repro.obs.monitors`) run during the scenario and raise
    :class:`~repro.obs.monitors.InvariantViolation` the moment a protocol
    property breaks, instead of the report merely noting disagreement.
    """
    report, _net = run_scenario_detailed(spec, monitors=monitors)
    return report


def run_scenario_detailed(
    spec: ScenarioSpec, monitors: bool = False
) -> "Tuple[ScenarioReport, Any]":
    """Like :func:`run_scenario`, but also returns the finished network.

    The network gives observability consumers (the ``repro trace`` /
    ``repro metrics`` CLI) access to ``net.sim.trace`` and
    ``net.sim.metrics`` after the run.
    """
    if spec.channels == 2:
        from repro.core.stack import DualChannelNetwork

        net = DualChannelNetwork(node_count=spec.nodes, config=spec.config)
    else:
        net = CanelyNetwork(
            node_count=spec.nodes,
            config=spec.config,
            backend=spec.backend,
            segments=spec.segments,
        )
    if monitors:
        if spec.backend != "canely":
            raise ConfigurationError(
                "the online invariant monitors encode CANELy's guarantees; "
                f"they cannot judge the {spec.backend!r} backend"
            )
        from repro.analysis.latency import latency_bounds
        from repro.obs.monitors import standard_monitors

        standard_monitors(
            net.sim.trace,
            detection_bound=latency_bounds(spec.config).notification,
            metrics=net.sim.metrics,
        )
    net.join_all()
    # Let the network form before the scripted timeline starts.
    net.run_for(spec.config.tjoin_wait + 4 * spec.config.tm)

    timeline_zero = net.sim.now
    for entry in spec.traffic:
        PeriodicSource(net.sim, net.node(entry["node"]), period=entry["period"])

    crash_times: Dict[int, int] = {}
    for event in spec.events:
        when = timeline_zero + event.at

        def fire(event=event):
            if event.action == "crash":
                crash_times[event.node] = net.sim.now
                net.node(event.node).crash()
            elif event.action == "leave":
                net.node(event.node).leave()
            elif event.action == "join":
                node = net.node(event.node)
                if event.recover and node.crashed:
                    node.recover()
                node.join()
            elif event.action == "inaccessibility":
                bus = net.bus if spec.channels == 1 else net.buses[0]
                bus.inject_inaccessibility(event.bits)
            elif event.action == "fail_channel":
                net.fail_channel(event.channel)

        net.sim.schedule_at(when, fire)

    net.run_for(spec.duration)

    latencies = detection_latencies(net, crash_times)
    summary = summarize(net.sim.trace)
    if spec.channels == 2:
        utilization = sum(bus.utilization() for bus in net.buses) / 2
    else:
        utilization = net.bus.utilization()
    report = ScenarioReport(
        final_view=sorted(net.agreed_view()) if net.views_agree() else [],
        views_agree=net.views_agree(),
        crash_latencies_ms={
            node: (None if latency is None else latency / ms(1))
            for node, latency in latencies.items()
        },
        bus_utilization=utilization,
        physical_frames=summary.physical_frames,
        faulty_frames=summary.faulty_frames,
        frames_by_type=summary.frames_by_type,
    )
    return report, net
