"""Adversarial workloads outside the fail-silent fault model.

Fig. 11 is candid: *babbling idiot avoidance — not provided* (TTP has a bus
guardian; CANELy, like standard CAN, does not — the problem was later
studied in Broster & Burns [2]). A babbling node violates the
weak-fail-silent assumption by transmitting continuously at high priority,
starving every lower-priority identifier.

:class:`BabblingIdiot` reproduces the failure so tests and benchmarks can
measure the admitted limitation: with the babbler active, explicit
life-signs (priority below FDA) stop winning arbitration, surveillance
timers expire network-wide and the membership view collapses — consistently
(the agreement machinery itself keeps working), but uselessly.
"""

from __future__ import annotations

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.frame import remote_frame
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator


class BabblingIdiot:
    """A node that transmits continuously at a chosen priority.

    Args:
        sim: the simulator.
        bus: the bus to babble on.
        node_id: the babbler's (stolen) node identifier — must not collide
            with a protocol participant.
        mid: the identifier to babble; defaults to a top-priority FDA frame
            naming a nonexistent node (pure bandwidth starvation, no
            semantic poisoning).
        gap: ticks between consecutive submissions (0 = saturate).
    """

    def __init__(
        self,
        sim: Simulator,
        bus: CanBus,
        node_id: int,
        mid: MessageId = None,
        gap: int = 0,
    ) -> None:
        if gap < 0:
            raise ConfigurationError(f"gap must be non-negative: {gap}")
        self._sim = sim
        self._bus = bus
        self.controller = CanController(node_id)
        bus.attach(self.controller)
        self._mid = mid if mid is not None else MessageId(MessageType.FDA, node=255)
        self._gap = gap
        self._babbling = False
        self.frames_submitted = 0

    def start(self) -> None:
        """Begin babbling."""
        if self._babbling:
            return
        self._babbling = True
        self._submit()

    def stop(self) -> None:
        """Silence the babbler (e.g. a bus guardian kicking in)."""
        self._babbling = False
        self.controller.abort(self._mid)

    def _submit(self) -> None:
        if not self._babbling:
            return
        # Keep exactly one request pending so the babbler re-wins
        # arbitration the instant the bus goes idle.
        if not self.controller.has_pending(self._mid):
            self.controller.submit(remote_frame(self._mid))
            self.frames_submitted += 1
        frame_ticks = self._bus.timing.bits_to_ticks(
            remote_frame(self._mid).wire_bits()
        )
        self._sim.schedule(max(1, self._gap or frame_ticks // 2), self._submit)
