"""Application traffic generators.

CAN control applications typically exhibit a cyclic traffic pattern
(Tindell & Burns [20]); CANELy exploits it by letting normal traffic signal
node activity implicitly. The sources here drive a :class:`CanelyNode`'s
``send`` method so that the failure-detection benchmarks can contrast
implicit life-signs (fast periodic traffic) against explicit ELS messages
(slow or sporadic traffic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.lifesign import NodeTraffic
from repro.core.stack import CanelyNode
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator


class PeriodicSource:
    """Broadcasts a fixed-size message every ``period`` ticks."""

    def __init__(
        self,
        sim: Simulator,
        node: CanelyNode,
        period: int,
        payload_size: int = 4,
        offset: int = 0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive: {period}")
        if not 0 <= payload_size <= 8:
            raise ConfigurationError(f"payload must fit a CAN frame: {payload_size}")
        self._sim = sim
        self._node = node
        self.period = period
        self._payload = bytes(payload_size)
        self.sent = 0
        self._stopped = False
        sim.schedule(offset, self._tick)

    def _tick(self) -> None:
        if self._stopped or self._node.crashed:
            return
        if self._node.is_member:
            self._node.send(self._payload)
            self.sent += 1
        self._sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        """Stop generating traffic."""
        self._stopped = True

    def traffic(self) -> NodeTraffic:
        """Characterization for the life-sign policy."""
        return NodeTraffic(node_id=self._node.node_id, min_period=self.period)


class SporadicSource:
    """Broadcasts at random (exponential) interarrival times."""

    def __init__(
        self,
        sim: Simulator,
        node: CanelyNode,
        mean_interarrival: int,
        rng: random.Random,
        payload_size: int = 4,
    ) -> None:
        if mean_interarrival <= 0:
            raise ConfigurationError(
                f"mean interarrival must be positive: {mean_interarrival}"
            )
        self._sim = sim
        self._node = node
        self._mean = mean_interarrival
        self._rng = rng
        self._payload = bytes(payload_size)
        self.sent = 0
        self._stopped = False
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = max(1, round(self._rng.expovariate(1.0 / self._mean)))
        self._sim.schedule(delay, self._tick)

    def _tick(self) -> None:
        if self._stopped or self._node.crashed:
            return
        if self._node.is_member:
            self._node.send(self._payload)
            self.sent += 1
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating traffic."""
        self._stopped = True

    def traffic(self) -> NodeTraffic:
        """Characterization for the life-sign policy (sporadic: no period)."""
        return NodeTraffic(node_id=self._node.node_id, min_period=None)


class TrafficSet:
    """A collection of sources with an aggregate traffic characterization."""

    def __init__(self) -> None:
        self._sources: List[object] = []

    def add(self, source) -> None:
        """Track one source."""
        self._sources.append(source)

    def stop_all(self) -> None:
        """Stop every source."""
        for source in self._sources:
            source.stop()

    def characterization(self) -> List[NodeTraffic]:
        """Per-node traffic characterizations (one per source)."""
        return [source.traffic() for source in self._sources]

    @property
    def total_sent(self) -> int:
        """Messages sent across all sources."""
        return sum(source.sent for source in self._sources)
