"""Signal packing for CAN data frames (a miniature DBC).

Control applications rarely ship raw bytes: a frame's 0-8 byte data field
is a packed record of *signals* — scaled fixed-point physical quantities at
bit offsets. This module provides the codec the examples and workload
generators use to build realistic payloads: a :class:`SignalSpec` per
signal and a :class:`MessageCodec` that packs/unpacks a whole frame.

Bit numbering is little-endian ("Intel" byte order in DBC terms): bit 0 is
the least-significant bit of byte 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SignalSpec:
    """One signal inside a CAN data field.

    Attributes:
        name: signal name (unique within its codec).
        start_bit: LSB position in the data field (0-63).
        width: size in bits (1-64).
        scale: physical value = raw * scale + offset.
        offset: see ``scale``.
        signed: two's-complement interpretation of the raw value.
    """

    name: str
    start_bit: int
    width: int
    scale: float = 1.0
    offset: float = 0.0
    signed: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("signal name must be non-empty")
        if not 1 <= self.width <= 64:
            raise ConfigurationError(f"{self.name}: width out of range: {self.width}")
        if not 0 <= self.start_bit <= 63:
            raise ConfigurationError(
                f"{self.name}: start bit out of range: {self.start_bit}"
            )
        if self.start_bit + self.width > 64:
            raise ConfigurationError(
                f"{self.name}: signal exceeds the 64-bit data field"
            )
        if self.scale == 0:
            raise ConfigurationError(f"{self.name}: scale must be nonzero")

    @property
    def raw_range(self) -> Tuple[int, int]:
        """Smallest and largest representable raw values."""
        if self.signed:
            return (-(1 << (self.width - 1)), (1 << (self.width - 1)) - 1)
        return (0, (1 << self.width) - 1)

    @property
    def physical_range(self) -> Tuple[float, float]:
        """Smallest and largest representable physical values."""
        lo, hi = self.raw_range
        a, b = lo * self.scale + self.offset, hi * self.scale + self.offset
        return (min(a, b), max(a, b))

    def encode_raw(self, physical: float) -> int:
        """Physical value -> clamped raw value."""
        raw = round((physical - self.offset) / self.scale)
        lo, hi = self.raw_range
        return max(lo, min(hi, raw))

    def decode_raw(self, raw: int) -> float:
        """Raw value -> physical value."""
        return raw * self.scale + self.offset


class MessageCodec:
    """Packs a set of signals into one CAN data field."""

    def __init__(self, signals: Iterable[SignalSpec], dlc: int = 8) -> None:
        if not 1 <= dlc <= 8:
            raise ConfigurationError(f"DLC out of range: {dlc}")
        self.dlc = dlc
        self.signals: List[SignalSpec] = list(signals)
        names = [spec.name for spec in self.signals]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate signal names in {names}")
        occupied = 0
        for spec in self.signals:
            if spec.start_bit + spec.width > 8 * dlc:
                raise ConfigurationError(
                    f"{spec.name} does not fit a {dlc}-byte frame"
                )
            span = ((1 << spec.width) - 1) << spec.start_bit
            if occupied & span:
                raise ConfigurationError(f"{spec.name} overlaps another signal")
            occupied |= span
        self._by_name = {spec.name: spec for spec in self.signals}

    def pack(self, values: Dict[str, float]) -> bytes:
        """Encode physical values (missing signals default to 0 raw)."""
        word = 0
        for spec in self.signals:
            if spec.name in values:
                raw = spec.encode_raw(values[spec.name])
            else:
                raw = 0
            if raw < 0:
                raw += 1 << spec.width  # two's complement
            word |= raw << spec.start_bit
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise ConfigurationError(f"unknown signals: {sorted(unknown)}")
        return word.to_bytes(self.dlc, "little")

    def unpack(self, data: bytes) -> Dict[str, float]:
        """Decode a data field into physical values."""
        if len(data) < self.dlc:
            raise ConfigurationError(
                f"frame carries {len(data)} bytes, codec needs {self.dlc}"
            )
        word = int.from_bytes(data[: self.dlc], "little")
        values = {}
        for spec in self.signals:
            raw = (word >> spec.start_bit) & ((1 << spec.width) - 1)
            if spec.signed and raw >> (spec.width - 1):
                raw -= 1 << spec.width
            values[spec.name] = spec.decode_raw(raw)
        return values

    def signal(self, name: str) -> SignalSpec:
        """Look up one signal by name."""
        if name not in self._by_name:
            raise ConfigurationError(f"no such signal: {name}")
        return self._by_name[name]
