"""Scenario scripting helpers shared by tests, examples and benchmarks."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.stack import CanelyNetwork, CanelyNode
from repro.errors import ScenarioError


def bootstrap_network(
    network: CanelyNetwork, settle_cycles: float = 6.0
) -> None:
    """Cold-start: every node joins, then the network settles.

    After this returns, all nodes are full members with an agreed view,
    ready for scenario injection; :class:`~repro.errors.ScenarioError` is
    raised on non-convergence so campaign workers can classify bootstrap
    failures without pattern-matching assertion text.
    """
    network.join_all()
    network.run_for(network.config.tjoin_wait)
    network.run_cycles(settle_cycles)
    views = network.member_views()
    expected = set(network.nodes)
    if set(views) != expected or not network.views_agree():
        raise ScenarioError(
            f"bootstrap did not converge: members={sorted(views)} "
            f"expected={sorted(expected)}"
        )


def schedule_crash(network: CanelyNetwork, node_id: int, at: int) -> None:
    """Crash ``node_id`` at absolute simulation time ``at``."""
    network.sim.schedule_at(at, network.node(node_id).crash)


def schedule_join(network: CanelyNetwork, node_id: int, at: int) -> None:
    """Issue a join request for ``node_id`` at time ``at``."""
    network.sim.schedule_at(at, network.node(node_id).join)


def schedule_leave(network: CanelyNetwork, node_id: int, at: int) -> None:
    """Issue a leave request for ``node_id`` at time ``at``."""
    network.sim.schedule_at(at, network.node(node_id).leave)


def first_change_with_failed(
    network: CanelyNetwork, failed_node: int, after: int = 0
) -> Optional[int]:
    """Time of the first membership-change notifying ``failed_node``."""
    for record in network.sim.trace.select(category="msh.change"):
        if record.time >= after and failed_node in record.data["failed"]:
            return record.time
    return None


def detection_latencies(
    network: CanelyNetwork, crash_times: dict
) -> dict:
    """Failure-notification latency per crashed node, in ticks.

    ``crash_times`` maps node id -> crash time; the result maps node id ->
    (first notification time - crash time), or ``None`` if never notified.
    All latencies are computed in one pass over the ``msh.change`` trace,
    not one full scan per crashed node.
    """
    latencies = {node_id: None for node_id in crash_times}
    pending = set(crash_times)
    for record in network.sim.trace.select(category="msh.change"):
        if not pending:
            break
        failed = record.data["failed"]
        for node_id in [n for n in pending if n in failed]:
            if record.time >= crash_times[node_id]:
                latencies[node_id] = record.time - crash_times[node_id]
                pending.discard(node_id)
    return latencies
