"""Scenario scripting helpers shared by tests, examples and benchmarks.

.. deprecated::
    The free-function construction surface (:func:`bootstrap_network`,
    :func:`schedule_crash`, :func:`schedule_join`, :func:`schedule_leave`)
    is deprecated in favour of the fluent
    :class:`~repro.workloads.builder.ScenarioBuilder` reachable as
    ``network.scenario()``; the functions remain as thin wrappers emitting
    :class:`DeprecationWarning` and will be removed in a future major
    version. The trace-query helpers (:func:`first_change_with_failed`,
    :func:`detection_latencies`) are *not* deprecated.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.core.stack import CanelyNetwork
from repro.workloads.builder import DEFAULT_SETTLE_CYCLES


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def bootstrap_network(
    network: CanelyNetwork, settle_cycles: float = DEFAULT_SETTLE_CYCLES
) -> None:
    """Cold-start: every node joins, then the network settles.

    .. deprecated:: use ``network.scenario().bootstrap()``.

    After this returns, all nodes are full members with an agreed view,
    ready for scenario injection; :class:`~repro.errors.ScenarioError` is
    raised on non-convergence so campaign workers can classify bootstrap
    failures without pattern-matching assertion text.
    """
    _deprecated("bootstrap_network()", "network.scenario().bootstrap()")
    network.scenario().bootstrap(settle_cycles=settle_cycles)


def schedule_crash(network: CanelyNetwork, node_id: int, at: int) -> None:
    """Crash ``node_id`` at absolute simulation time ``at``.

    .. deprecated:: use ``network.scenario().crash(node_id, at=offset)``
       (builder times are offsets from the current instant).
    """
    _deprecated("schedule_crash()", "network.scenario().crash()")
    network.scenario().crash(node_id, at=at - network.sim.now)


def schedule_join(network: CanelyNetwork, node_id: int, at: int) -> None:
    """Issue a join request for ``node_id`` at time ``at``.

    .. deprecated:: use ``network.scenario().join(node_id, at=offset)``.
    """
    _deprecated("schedule_join()", "network.scenario().join()")
    network.scenario().join(node_id, at=at - network.sim.now)


def schedule_leave(network: CanelyNetwork, node_id: int, at: int) -> None:
    """Issue a leave request for ``node_id`` at time ``at``.

    .. deprecated:: use ``network.scenario().leave(node_id, at=offset)``.
    """
    _deprecated("schedule_leave()", "network.scenario().leave()")
    network.scenario().leave(node_id, at=at - network.sim.now)


def first_change_with_failed(
    network: CanelyNetwork, failed_node: int, after: int = 0
) -> Optional[int]:
    """Time of the first membership-change notifying ``failed_node``."""
    for record in network.sim.trace.select(category="msh.change"):
        if record.time >= after and failed_node in record.data["failed"]:
            return record.time
    return None


def detection_latencies(
    network: CanelyNetwork, crash_times: dict
) -> dict:
    """Failure-notification latency per crashed node, in ticks.

    ``crash_times`` maps node id -> crash time; the result maps node id ->
    (first notification time - crash time), or ``None`` if never notified.
    A thin convenience over the shared one-pass extraction in
    :func:`repro.analysis.latency.measured_detection_latencies`.
    """
    from repro.analysis.latency import measured_detection_latencies

    return measured_detection_latencies(network.sim.trace, dict(crash_times))
