"""The fluent scenario-construction API.

:class:`ScenarioBuilder` replaces the scattered free functions that used to
live in :mod:`repro.workloads.scenarios` (``bootstrap_network``,
``schedule_crash``, ``schedule_join``, ``schedule_leave``) with one chainable
surface reachable from any network as ``net.scenario()``::

    net = CanelyNetwork(node_count=8)
    (net.scenario(seed=7)
        .bootstrap()
        .crash(3, at=ms(50))
        .omit(frame=FrameMatch(mtype="FDA"), inconsistent=True, accepting=[2])
        .run_until_settled())

Builder calls execute *eagerly*, in order: ``bootstrap()`` drives the
cold-start to convergence right away, ``crash``/``join``/``leave`` schedule
their action ``at`` ticks after the current simulation instant, ``omit``
arms the network's :class:`~repro.can.errormodel.FaultInjector`, and the
``run_*`` methods advance the clock. Because every builder call maps to the
exact simulator/injector calls the legacy helpers made, scenarios written
either way produce byte-identical traces (pinned by the golden-equivalence
tests).

The builder is the construction surface shared by the systematic checker
(:mod:`repro.check`), the campaign worker and the examples; the legacy free
functions survive as thin deprecated wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.can.errormodel import FaultKind
from repro.can.frame import CanFrame
from repro.can.identifiers import MessageType
from repro.errors import ScenarioError

#: Default number of membership cycles a cold-start settles for.
DEFAULT_SETTLE_CYCLES = 6.0

#: Default for the analytic idle-skip of :meth:`run_until_settled` —
#: named so the bench report's ``environment.toggles`` block can record
#: it alongside the other switchable fast paths.
DEFAULT_IDLE_SKIP = True


@dataclass(frozen=True)
class FrameMatch:
    """A plain-data frame selector for :meth:`ScenarioBuilder.omit`.

    Selects the ``nth`` (0-based) frame — counted from the moment the fault
    is armed — whose message type is ``mtype`` and, when ``node`` is given,
    whose message identifier names that node. Being plain data (no
    closures), a :class:`FrameMatch` serializes into check/campaign
    artifacts and crosses process boundaries, which a bare predicate
    cannot.
    """

    mtype: str
    node: Optional[int] = None
    nth: int = 0

    def __post_init__(self) -> None:
        if self.mtype not in MessageType.__members__:
            raise ScenarioError(
                f"unknown message type {self.mtype!r}; expected one of "
                f"{sorted(MessageType.__members__)}"
            )
        if self.nth < 0:
            raise ScenarioError(f"nth must be >= 0: {self.nth}")

    def predicate(self) -> Callable[[CanFrame], bool]:
        """Compile to a stateful frame predicate for the fault injector."""
        mtype = MessageType[self.mtype]
        node = self.node
        remaining = [self.nth]

        def match(frame: CanFrame) -> bool:
            mid = frame.mid
            if mid.mtype is not mtype:
                return False
            if node is not None and mid.node != node:
                return False
            if remaining[0] > 0:
                remaining[0] -= 1
                return False
            return True

        return match


FrameSelector = Union[FrameMatch, Callable[[CanFrame], bool]]


class ScenarioBuilder:
    """Fluent scenario scripting over one simulated network.

    Every method returns the builder, so a whole scenario chains into one
    expression. ``seed`` is purely declarative — it labels the scenario so
    non-convergence errors (and check/campaign reports built on them) are
    reproducible from the message alone.
    """

    def __init__(self, network, seed: Optional[int] = None) -> None:
        self._net = network
        self.seed = seed
        #: Latest absolute time at which a scripted action fires; the
        #: settling loop will not declare stability before this instant.
        self._last_action_at = network.sim.now

    @property
    def network(self):
        """The underlying network (for queries after the chain ends)."""
        return self._net

    # -- cold start ---------------------------------------------------------

    def bootstrap(
        self,
        settle_cycles: float = DEFAULT_SETTLE_CYCLES,
        nodes: Optional[Sequence[int]] = None,
    ) -> "ScenarioBuilder":
        """Cold-start: the given ``nodes`` (default: all) join, then the
        network settles for ``settle_cycles`` membership cycles.

        Raises :class:`~repro.errors.ScenarioError` on non-convergence; the
        message carries the settle-cycle count and the builder's ``seed``
        so campaign/check failures are reproducible from the message alone.
        """
        net = self._net
        if nodes is None:
            net.join_all()
            expected = set(net.nodes)
        else:
            expected = set(nodes)
            for node_id in nodes:
                net.node(node_id).join()
        net.run_for(net.config.tjoin_wait)
        net.run_cycles(settle_cycles)
        views = net.member_views()
        if set(views) != expected or not net.views_agree():
            raise ScenarioError(
                f"bootstrap did not converge: members={sorted(views)} "
                f"expected={sorted(expected)} "
                f"(settle_cycles={settle_cycles}, seed={self.seed!r})"
            )
        self._last_action_at = net.sim.now
        return self

    # -- timed node actions --------------------------------------------------

    def _schedule(self, at: int, action: Callable[[], None]) -> None:
        when = self._net.sim.now + at
        if at < 0:
            raise ScenarioError(f"cannot schedule {at} ticks in the past")
        self._last_action_at = max(self._last_action_at, when)
        self._net.sim.schedule_at(when, action)

    def crash(self, node_id: int, at: int = 0) -> "ScenarioBuilder":
        """Crash ``node_id`` (fail-silent) ``at`` ticks from now."""
        self._schedule(at, self._net.node(node_id).crash)
        return self

    def join(self, node_id: int, at: int = 0) -> "ScenarioBuilder":
        """Issue a join request for ``node_id`` ``at`` ticks from now."""
        self._schedule(at, self._net.node(node_id).join)
        return self

    def leave(self, node_id: int, at: int = 0) -> "ScenarioBuilder":
        """Issue a leave request for ``node_id`` ``at`` ticks from now."""
        self._schedule(at, self._net.node(node_id).leave)
        return self

    def recover(self, node_id: int, at: int = 0) -> "ScenarioBuilder":
        """Reboot crashed ``node_id`` ``at`` ticks from now (it stays
        silent until a later :meth:`join`)."""
        self._schedule(at, self._net.node(node_id).recover)
        return self

    def at(self, at: int, action: Callable[[], None]) -> "ScenarioBuilder":
        """Escape hatch: run ``action()`` ``at`` ticks from now."""
        self._schedule(at, action)
        return self

    # -- network faults --------------------------------------------------------

    def omit(
        self,
        frame: Optional[FrameSelector] = None,
        tx_index: Optional[int] = None,
        inconsistent: bool = False,
        accepting: Sequence[int] = (),
        count: int = 1,
        crash_sender: bool = False,
        segment: int = 0,
    ) -> "ScenarioBuilder":
        """Arm an omission fault on the network's fault injector.

        ``frame`` selects by content — a :class:`FrameMatch` or a bare
        ``CanFrame -> bool`` predicate; ``tx_index`` selects the n-th
        physical transmission instead. ``inconsistent=True`` makes the
        ``accepting`` subset of nodes accept the frame while everyone else
        (sender included) sees an error — the paper's last-two-bits
        scenario; combined with ``crash_sender=True`` the sender dies
        before the automatic retransmission. On a multi-segment network,
        ``segment`` picks the bus whose injector is armed (default: the
        first — the one a single-bus network's scripted faults drive).
        """
        if (frame is None) == (tx_index is None):
            raise ScenarioError("omit() needs exactly one of frame/tx_index")
        kind = (
            FaultKind.INCONSISTENT_OMISSION
            if inconsistent
            else FaultKind.CONSISTENT_OMISSION
        )
        if accepting and not inconsistent:
            raise ScenarioError(
                "an accepting subset only makes sense for inconsistent "
                "omissions"
            )
        injector = self._segment_bus(segment).injector
        if tx_index is not None:
            injector.fault_on_transmission(
                tx_index, kind, accepting=accepting, crash_sender=crash_sender
            )
        else:
            predicate = (
                frame.predicate() if isinstance(frame, FrameMatch) else frame
            )
            injector.fault_on_frame(
                predicate,
                kind,
                accepting=accepting,
                crash_sender=crash_sender,
                count=count,
            )
        return self

    def _segment_bus(self, segment: int):
        """The bus of one segment; index 0 is ``net.bus`` everywhere."""
        if segment == 0:
            return self._net.bus
        segments = getattr(self._net, "segments", None)
        if segments is None or not 0 <= segment < len(segments):
            raise ScenarioError(
                f"network has no segment {segment} "
                f"(seed={self.seed!r})"
            )
        return segments[segment]

    def inaccessibility(
        self, bits: int, at: int = 0, segment: int = 0
    ) -> "ScenarioBuilder":
        """Inject a ``bits``-long bus inaccessibility window ``at`` ticks
        from now (on ``segment``, for multi-segment networks)."""
        bus = self._segment_bus(segment)
        self._schedule(at, lambda: bus.inject_inaccessibility(bits))
        return self

    # -- advancing the clock -----------------------------------------------------

    def run_for(self, duration: int) -> "ScenarioBuilder":
        """Advance the simulation by ``duration`` ticks."""
        self._net.run_for(duration)
        return self

    def run_cycles(self, cycles: float) -> "ScenarioBuilder":
        """Advance by a number of membership cycle periods."""
        self._net.run_cycles(cycles)
        return self

    def _silent_cycles_ahead(self, cycle_ticks: int, limit: int) -> int:
        """Whole membership cycles that are provably event-free from now.

        The analytic idle-skip guard: when every bus is quiescent (idle
        wire, no pending arbitration, empty TX queues), nothing can happen
        before the kernel's next scheduled event, so every whole cycle
        that ends strictly before it is silent. Returns 0 whenever any bus
        could still act — and, in a live network, almost always: heartbeat
        and membership-cycle timers keep the next deadline within ``Thb``.
        The skip pays off in degenerate tails (every node crashed or
        departed) where the queue runs dry.
        """
        if limit <= 0 or cycle_ticks <= 0:
            return 0
        net = self._net
        buses = getattr(net, "buses", None)
        if buses is None:
            buses = (net.bus,)
        if not all(bus.quiescent for bus in buses):
            return 0
        sim = net.sim
        next_time = sim.next_event_time()
        if next_time is None:
            return limit
        ahead = (next_time - sim.now - 1) // cycle_ticks
        return int(min(limit, max(0, ahead)))

    def run_until_settled(
        self,
        max_cycles: int = 60,
        stable_cycles: int = 2,
        idle_skip: bool = DEFAULT_IDLE_SKIP,
    ) -> "ScenarioBuilder":
        """Run until every scripted action has fired and the surviving full
        members agree on an unchanged view for ``stable_cycles`` consecutive
        membership cycles.

        With ``idle_skip`` (the default) provably silent cycles — every bus
        quiescent and the next scheduled event beyond the cycle boundary —
        are leapt analytically instead of being simulated: the clock jumps
        whole cycles at once and each leapt cycle counts as an unchanged
        snapshot (nothing fired, so no view can have moved). Simulated
        outcomes are identical with the skip off; only wall-clock differs.

        Raises :class:`~repro.errors.ScenarioError` (carrying the seed)
        when the network has not settled within ``max_cycles`` cycles.
        """
        net = self._net
        if net.sim.now < self._last_action_at:
            net.sim.run_until(self._last_action_at)
        cycle_ticks = round(net.config.tm)
        stable = 0
        previous = None
        cycles_run = 0
        while cycles_run < max_cycles:
            if idle_skip and previous is not None:
                # Leave at least one real cycle so the post-leap snapshot
                # below is always taken by simulation, not assumption.
                leap = self._silent_cycles_ahead(
                    cycle_ticks, max_cycles - cycles_run - 1
                )
                if leap > 0:
                    net.sim.run_until(net.sim.now + leap * cycle_ticks)
                    cycles_run += leap
                    if previous[0] is not None:
                        # Last snapshot was agreed; silence preserves it.
                        stable += leap
                        if stable >= stable_cycles:
                            return self
            net.run_cycles(1)
            cycles_run += 1
            views = net.member_views()
            members = set(views)
            agreed = views and all(
                view == next(iter(views.values())) for view in views.values()
            )
            snapshot = (
                frozenset(next(iter(views.values()))) if agreed else None,
                frozenset(members),
            )
            if agreed and snapshot == previous:
                stable += 1
                if stable >= stable_cycles:
                    return self
            else:
                stable = 0
            previous = snapshot
        raise ScenarioError(
            f"network did not settle within {max_cycles} membership cycles "
            f"(stable_cycles={stable_cycles}, seed={self.seed!r})"
        )
