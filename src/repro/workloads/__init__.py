"""Workload generation: traffic sources and scenario scripting."""

from repro.workloads.builder import FrameMatch, ScenarioBuilder
from repro.workloads.scenarios import (
    bootstrap_network,
    detection_latencies,
    first_change_with_failed,
    schedule_crash,
    schedule_join,
    schedule_leave,
)
from repro.workloads.traffic import PeriodicSource, SporadicSource, TrafficSet

__all__ = [
    "FrameMatch",
    "PeriodicSource",
    "ScenarioBuilder",
    "SporadicSource",
    "TrafficSet",
    "bootstrap_network",
    "detection_latencies",
    "first_change_with_failed",
    "schedule_crash",
    "schedule_join",
    "schedule_leave",
]
