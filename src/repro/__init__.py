"""CANELy — node failure detection and site membership for CAN.

A full reproduction of *"Node Failure Detection and Membership in CANELy"*
(Rufino, Veríssimo, Arroz — DSN 2003): a discrete-event CAN fieldbus
simulator with the paper's fault model (including inconsistent omissions),
the CAN standard layer of Fig. 4, the FDA/RHA micro-protocols and the
failure-detection and site-membership protocols of Figs. 6-9, the companion
reliable-broadcast and clock-synchronization services, the related-work
baselines (CAL node guarding, OSEK NM), and the analytical models behind
the paper's evaluation figures.

Quickstart::

    from repro import CanelyNetwork
    from repro.sim import ms

    net = CanelyNetwork(node_count=8)
    net.join_all()
    net.run_for(ms(400))
    print(sorted(net.agreed_view()))     # [0, 1, ..., 7]

    net.node(3).crash()
    net.run_for(ms(100))
    print(sorted(net.agreed_view()))     # node 3 consistently removed
"""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork, CanelyNode
from repro.core.views import MembershipChange, MembershipView
from repro.util.sets import NodeSet

__version__ = "1.0.0"

__all__ = [
    "CanelyConfig",
    "CanelyNetwork",
    "CanelyNode",
    "MembershipChange",
    "MembershipView",
    "NodeSet",
    "__version__",
]
