"""CANELy — node failure detection and site membership for CAN.

A full reproduction of *"Node Failure Detection and Membership in CANELy"*
(Rufino, Veríssimo, Arroz — DSN 2003): a discrete-event CAN fieldbus
simulator with the paper's fault model (including inconsistent omissions),
the CAN standard layer of Fig. 4, the FDA/RHA micro-protocols and the
failure-detection and site-membership protocols of Figs. 6-9, the companion
reliable-broadcast and clock-synchronization services, the related-work
baselines (CAL node guarding, OSEK NM), and the analytical models behind
the paper's evaluation figures.

Quickstart::

    from repro import CanelyNetwork
    from repro.sim import ms

    net = CanelyNetwork(node_count=8)
    net.scenario().bootstrap().crash(3, at=ms(50)).run_until_settled()
    print(sorted(net.agreed_view()))     # node 3 consistently removed

The package front door re-exports every stable entry point — the core
stack eagerly, the tooling subsystems (scenario builder, campaigns,
systematic checking, observability, benchmarks) lazily via module
``__getattr__`` (PEP 562), so ``import repro`` stays light::

    from repro import ScenarioBuilder, CheckSweep, explore, run_campaign
"""

from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork, CanelyNode
from repro.core.views import MembershipChange, MembershipView
from repro.util.sets import NodeSet

__version__ = "1.2.0"

#: Lazily re-exported name -> home module (PEP 562). Importing ``repro``
#: must not drag in multiprocessing (campaign), the benchmark corpus
#: (perf) or the checker; attribute access resolves them on first use.
_LAZY_EXPORTS = {
    # membership backends (repro.core.backend, repro.swim) and the
    # multi-segment gateway (repro.can.gateway)
    "MembershipBackend": "repro.core.backend",
    "CanelyBackend": "repro.core.backend",
    "backend_names": "repro.core.backend",
    "register_backend": "repro.core.backend",
    "resolve_backend": "repro.core.backend",
    "SwimBackend": "repro.swim",
    "SwimConfig": "repro.swim",
    "SwimNode": "repro.swim",
    "CanGateway": "repro.can.gateway",
    # head-to-head backend QoS (repro.analysis.comparison)
    "BackendQoS": "repro.analysis.comparison",
    "compare_backends": "repro.analysis.comparison",
    "probe_backend": "repro.analysis.comparison",
    # scenario builder (repro.workloads) — the fluent scripting API
    "FrameMatch": "repro.workloads",
    "ScenarioBuilder": "repro.workloads",
    # campaigns (repro.campaign)
    "CampaignReport": "repro.campaign",
    "CampaignSpec": "repro.campaign",
    "CheckpointStore": "repro.campaign",
    "Executor": "repro.campaign",
    "FingerprintStore": "repro.campaign",
    "LocalPoolExecutor": "repro.campaign",
    "RemoteQueueExecutor": "repro.campaign",
    "ScenarioResult": "repro.campaign",
    "SerialExecutor": "repro.campaign",
    "default_workers": "repro.campaign",
    "load_checkpoint": "repro.campaign",
    "run_campaign": "repro.campaign",
    "run_worker_agent": "repro.campaign",
    "schedule_key": "repro.campaign",
    # systematic checking (repro.check)
    "CheckResult": "repro.check",
    "CheckSweep": "repro.check",
    "CoverageReport": "repro.check",
    "Fault": "repro.check",
    "FaultSchedule": "repro.check",
    "ScheduleBatch": "repro.check",
    "ScheduleSpace": "repro.check",
    "enumerate_schedules": "repro.check",
    "explore": "repro.check",
    "explore_coverage": "repro.check",
    "minimize_schedule": "repro.check",
    "mutate_schedule": "repro.check",
    "replay_artifact": "repro.check",
    "run_schedule": "repro.check",
    "run_selftest": "repro.check",
    "sample_schedules": "repro.check",
    "write_artifact": "repro.check",
    # observability (repro.obs)
    "CrashDetection": "repro.obs",
    "CriticalPath": "repro.obs",
    "DetectionLatencyMonitor": "repro.obs",
    "DuplicateFailureSignMonitor": "repro.obs",
    "InvariantMonitor": "repro.obs",
    "InvariantViolation": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "Mistake": "repro.obs",
    "PhantomRemovalMonitor": "repro.obs",
    "QoSMetrics": "repro.obs",
    "Span": "repro.obs",
    "SpanTracer": "repro.obs",
    "ViewAgreementMonitor": "repro.obs",
    "compute_qos": "repro.obs",
    "detection_path": "repro.obs",
    "export_chrome_trace": "repro.obs",
    "network_qos": "repro.obs",
    "notification_path": "repro.obs",
    "render_msc": "repro.obs",
    "render_span_tree": "repro.obs",
    "standard_monitors": "repro.obs",
    "validate_chrome_trace": "repro.obs",
    "view_update_path": "repro.obs",
    # named scenario catalog + QoS reports (repro.scenarios)
    "QoSReport": "repro.scenarios",
    "ScenarioOutcome": "repro.scenarios",
    "ScenarioRecipe": "repro.scenarios",
    "register_recipe": "repro.scenarios",
    "resolve_recipe": "repro.scenarios",
    "run_catalog": "repro.scenarios",
    "run_recipe": "repro.scenarios",
    "scenario_names": "repro.scenarios",
    # benchmarks (repro.perf)
    "compare_reports": "repro.perf",
    "load_report": "repro.perf",
    "run_benchmarks": "repro.perf",
    "write_report": "repro.perf",
}

__all__ = [
    "CanelyConfig",
    "CanelyNetwork",
    "CanelyNode",
    "MembershipChange",
    "MembershipView",
    "NodeSet",
    "__version__",
] + sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    """Resolve the lazy re-exports on first attribute access (PEP 562)."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    """Make the lazy names discoverable by ``dir(repro)`` and tooling."""
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
