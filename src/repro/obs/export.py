"""Span and trace exporters: Chrome trace-event JSON and text MSC.

``chrome_trace_events`` projects the causal span trace onto the Chrome
trace-event format (the JSON consumed by Perfetto / ``chrome://tracing``):
one *process* per node (pid 0 is the bus / global track, pid ``n + 1`` is
node ``n``), one *thread* per protocol layer, and one complete (``"X"``)
event per span. Parent links can additionally be emitted as flow events
(``"s"``/``"f"``) so the causal tree renders as arrows across tracks.

Output is fully deterministic for a seeded run: spans are visited in id
order, events are sorted on a total key, and the JSON is serialized with
sorted keys — two runs with the same seed produce byte-identical files,
which is what lets campaign artifacts be diffed and golden-pinned.

``render_msc`` renders a text message sequence chart from the flat trace —
one lifeline column per node, one row per bus transmission, crash or view
install — for examples, docs and quick terminal diagnosis.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanTracer
from repro.sim.trace import TraceRecorder

__all__ = [
    "CHROME_CATEGORIES",
    "chrome_trace_events",
    "export_chrome_trace",
    "render_msc",
    "validate_chrome_trace",
]

#: Layer -> Chrome "thread" id, in stack order (top of the stack first).
CHROME_CATEGORIES: Tuple[str, ...] = (
    "node",
    "msh",
    "rha",
    "fd",
    "fda",
    "llc",
    "timers",
    "can",
    "bus",
)


def _ts(ticks: int) -> float:
    """Kernel ticks (ns) to trace-event microseconds."""
    return ticks / 1000.0


def chrome_trace_events(
    tracer: SpanTracer, flows: bool = False
) -> List[Dict[str, Any]]:
    """The span trace as a list of Chrome trace-event dicts.

    Spans still open (e.g. the queue span of a crashed node) are closed at
    the trace's maximum timestamp and tagged ``"open": true``. With
    ``flows=True``, every cross-track parent link becomes an ``s``/``f``
    flow pair so the viewer draws causal arrows.
    """
    close_at = tracer.max_time()
    thread_ids = {category: tid for tid, category in enumerate(CHROME_CATEGORIES)}
    tracks: Dict[Tuple[int, int], str] = {}
    events: List[Dict[str, Any]] = []
    for span in tracer:
        pid = span.node + 1
        tid = thread_ids.get(span.category, len(CHROME_CATEGORIES))
        tracks.setdefault((pid, tid), span.category)
        end = close_at if span.end is None else span.end
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "node": span.node,
        }
        if span.parent is not None:
            args["parent"] = span.parent
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        if span.events:
            args["events"] = [[time, label] for time, label in span.events]
        if span.end is None:
            args["open"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": _ts(span.start),
                "dur": _ts(end - span.start),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        if flows and span.parent is not None:
            parent = tracer.get(span.parent)
            parent_pid = parent.node + 1
            parent_tid = thread_ids.get(
                parent.category, len(CHROME_CATEGORIES)
            )
            if (parent_pid, parent_tid) != (pid, tid):
                parent_end = close_at if parent.end is None else parent.end
                flow = {
                    "name": "causal",
                    "cat": "causal",
                    "id": span.span_id,
                    "pid": parent_pid,
                    "tid": parent_tid,
                    "ts": _ts(min(parent_end, span.start)),
                }
                events.append(dict(flow, ph="s"))
                events.append(
                    dict(
                        flow,
                        ph="f",
                        bp="e",
                        pid=pid,
                        tid=tid,
                        ts=_ts(span.start),
                    )
                )
    # Deterministic total order: track, then time, then span id.
    events.sort(
        key=lambda e: (
            e["pid"],
            e["tid"],
            e["ts"],
            e.get("args", {}).get("span_id", e.get("id", -1)),
            e["ph"],
        )
    )
    metadata: List[Dict[str, Any]] = []
    for pid in sorted({pid for pid, _tid in tracks}):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "bus" if pid == 0 else f"node {pid - 1}"},
            }
        )
    for (pid, tid), category in sorted(tracks.items()):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": category},
            }
        )
    return metadata + events


def export_chrome_trace(
    tracer: SpanTracer, path: Optional[str] = None, flows: bool = False
) -> str:
    """Serialize the span trace to Chrome trace-event JSON.

    Returns the JSON text; additionally writes it to ``path`` when given.
    Serialization is canonical (sorted keys, fixed separators), so equal
    span traces produce byte-identical files.
    """
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer, flows=flows),
    }
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
    return text


def validate_chrome_trace(
    events: Any, strict_ts: bool = False
) -> List[str]:
    """Check a trace-event payload against the format's invariants.

    ``events`` may be the JSON text, the payload dict, or the raw event
    list. Checks: required keys per phase, non-negative durations,
    non-decreasing (``strict_ts``: strictly increasing) ``ts`` within each
    ``(pid, tid)`` track, matched ``B``/``E`` pairs per track, and every
    flow finish (``f``) carrying a flow start (``s``) with the same id no
    later in time (viewers bind flows by timestamp, not document order).
    Returns the list of problems — empty means the payload validates.
    """
    if isinstance(events, (str, bytes)):
        events = json.loads(events)
    if isinstance(events, dict):
        events = events.get("traceEvents", [])
    problems: List[str] = []
    last_ts: Dict[Tuple[int, int], float] = {}
    open_begins: Dict[Tuple[int, int], int] = {}
    # Flow starts are gathered up front: document order within the event
    # list is track-major, so a finish may legitimately precede its start.
    flow_starts: Dict[Any, float] = {}
    for event in events:
        if event.get("ph") == "s":
            fid = event.get("id")
            ts = event.get("ts", 0)
            if fid not in flow_starts or ts < flow_starts[fid]:
                flow_starts[fid] = ts
    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph is None:
            problems.append(f"event #{index}: missing 'ph'")
            continue
        for key in ("pid", "tid"):
            if key not in event:
                problems.append(f"event #{index} ({ph}): missing {key!r}")
        if ph == "M":
            if "name" not in event or "args" not in event:
                problems.append(f"event #{index}: malformed metadata event")
            continue
        if "ts" not in event:
            problems.append(f"event #{index} ({ph}): missing 'ts'")
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event["ts"]
        previous = last_ts.get(track)
        if previous is not None:
            if ts < previous or (strict_ts and ts == previous):
                problems.append(
                    f"event #{index} ({event.get('name')!r}): ts {ts} not "
                    f"{'strictly ' if strict_ts else ''}increasing on track "
                    f"pid={track[0]} tid={track[1]} (previous {previous})"
                )
        last_ts[track] = ts
        if ph == "X":
            if event.get("dur", 0) < 0:
                problems.append(
                    f"event #{index} ({event.get('name')!r}): negative dur"
                )
        elif ph == "B":
            open_begins[track] = open_begins.get(track, 0) + 1
        elif ph == "E":
            depth = open_begins.get(track, 0)
            if depth <= 0:
                problems.append(
                    f"event #{index}: 'E' without matching 'B' on track "
                    f"pid={track[0]} tid={track[1]}"
                )
            else:
                open_begins[track] = depth - 1
        elif ph == "f":
            fid = event.get("id")
            if fid not in flow_starts:
                problems.append(
                    f"event #{index}: flow finish without start "
                    f"(id={fid!r})"
                )
            elif ts < flow_starts[fid]:
                problems.append(
                    f"event #{index}: flow finish at {ts} precedes its "
                    f"start at {flow_starts[fid]} (id={fid!r})"
                )
    for track, depth in sorted(open_begins.items()):
        if depth:
            problems.append(
                f"track pid={track[0]} tid={track[1]}: {depth} unmatched "
                "'B' event(s)"
            )
    return problems


def render_msc(
    trace: TraceRecorder,
    nodes: Optional[Sequence[int]] = None,
    start: Optional[int] = None,
    end: Optional[int] = None,
    max_rows: int = 80,
) -> List[str]:
    """A text message sequence chart of the bus traffic.

    One lifeline column per node; one row per physical transmission
    (sender ``o``, receivers ``>``, silent/dead nodes ``.``), node crash /
    recovery (``X`` / ``^``) and view install (``V``). ``nodes`` restricts
    the columns, ``start``/``end`` the time window; at most ``max_rows``
    rows are rendered (the tail is summarized).
    """
    lo = start if start is not None else 0
    hi = end if end is not None else trace.last_time
    records = [
        r
        for r in trace.window(lo, hi)
        if r.category in ("bus.tx", "bus.deliver", "node.crash",
                          "node.recover", "msh.view")
    ] if len(trace) else []
    if nodes is None:
        seen = set()
        for record in records:
            if record.category == "bus.tx":
                seen.update(record.data.get("senders", ()))
            elif record.node >= 0:
                seen.add(record.node)
        columns = sorted(seen)
    else:
        columns = sorted(nodes)
    if not columns:
        return ["(no traffic in window)"]
    index = {node: i for i, node in enumerate(columns)}
    width = 6
    header = f"{'time':>14}  " + "".join(f"{f'n{n}':^{width}}" for n in columns)
    lines = [header]

    # Deliveries are folded into their transmission's row.
    deliveries: Dict[Tuple[int, str], List[int]] = {}
    for record in records:
        if record.category == "bus.deliver":
            key = (record.time, str(record.data.get("mid")))
            deliveries.setdefault(key, []).append(record.node)

    def row(time: int, cells: Dict[int, str], label: str) -> str:
        body = "".join(
            f"{cells.get(n, '.'):^{width}}" for n in columns
        )
        return f"{time:>14}  {body}  {label}"

    rows = 0
    for record in records:
        if rows >= max_rows:
            lines.append(f"... ({len(records)} records in window, truncated)")
            break
        category = record.category
        if category == "bus.tx":
            senders = set(record.data.get("senders", ()))
            received = deliveries.get(
                (record.time, str(record.data.get("mid"))), []
            )
            cells = {n: ">" for n in received if n in index}
            for sender in senders:
                if sender in index:
                    cells[sender] = "o"
            kind = record.data.get("kind", "none")
            label = f"{record.data.get('mid')}"
            if record.data.get("remote"):
                label += " (rtr)"
            if kind != "none":
                label += f" [{kind}]"
            lines.append(row(record.time, cells, label))
            rows += 1
        elif category == "node.crash":
            if record.node in index:
                lines.append(row(record.time, {record.node: "X"}, "crash"))
                rows += 1
        elif category == "node.recover":
            if record.node in index:
                lines.append(row(record.time, {record.node: "^"}, "recover"))
                rows += 1
        elif category == "msh.view":
            if record.node in index:
                members = sorted(record.data.get("members", ()))
                lines.append(
                    row(record.time, {record.node: "V"}, f"view {members}")
                )
                rows += 1
    return lines
