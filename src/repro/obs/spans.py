"""Causal span tracing: who caused what, and how long each phase took.

The flat :class:`~repro.sim.trace.TraceRecorder` answers *what happened*;
spans answer *why it took that long*. A :class:`Span` is a named interval
``[start, end]`` attributed to one node and one protocol layer, carrying a
``parent`` link to the span that caused it. The instrumented stack — timer
service, CAN bus/controller/driver, EDCAN, FDA, RHA, failure detection and
membership — opens spans along every causal chain, so a node-failure
detection becomes a *tree* rooted at the missed life-sign: the surveillance
timer span whose expiry spawned the ``fd.detect`` span, whose FDA
failure-sign frame span spawned a bus transmission span, whose per-node
receive spans spawned the ``fda.nty`` deliveries and membership change
notifications.

Tracing is **off by default** and zero-overhead when off: every
instrumentation site guards on :attr:`SpanTracer.enabled` (one attribute
load and branch, the same discipline as ``trace.wants(...)``), so the
PR-3 perf gate is unaffected. Enable it per run::

    net = CanelyNetwork(node_count=8, spans=True)   # or:
    net.sim.spans.enabled = True

Causality crosses simulated time through two mechanisms:

* **handles** — a transmit request carries the id of its frame span, a
  pending alarm the id of its timer span, so the completion path ends the
  span the submission path opened;
* **context** — the tracer keeps an explicit stack of "current" span ids;
  dispatch sites (timer expiry, per-node frame delivery, ``.nty`` fan-out)
  push the causing span around the callbacks they invoke, and every span
  opened without an explicit parent adopts the top of the stack.

Downstream consumers: :mod:`repro.obs.critical_path` decomposes detection
and membership latency into segments that sum exactly to the observed
latency, and :mod:`repro.obs.export` renders Chrome trace-event JSON
(one "process" per node, one "thread" per layer) and text message
sequence charts.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "Span",
    "SpanTracer",
    "render_span_tree",
]


class Span:
    """One node-and-layer-attributed interval in the causal trace.

    Attributes:
        span_id: dense id, assigned in creation order (deterministic for a
            seeded run).
        name: dotted span kind, e.g. ``"can.tx"`` or ``"fd.surveillance"``.
        category: the layer the span belongs to (``"timers"``, ``"bus"``,
            ``"can"``, ``"llc"``, ``"fd"``, ``"fda"``, ``"rha"``, ``"msh"``,
            ``"node"``) — the Chrome-trace "thread" of the span.
        node: node identifier the span concerns (-1 for bus-global spans).
        start: opening time, kernel ticks.
        end: closing time, or ``None`` while the span is open.
        parent: ``span_id`` of the causing span, or ``None`` for a root.
        attrs: free-form attributes (merged from begin and end).
        events: ``(time, label)`` point events inside the span, e.g. one
            ``"arb-loss"`` per lost arbitration round of a frame span.
    """

    __slots__ = (
        "span_id",
        "name",
        "category",
        "node",
        "start",
        "end",
        "parent",
        "attrs",
        "events",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        node: int,
        start: int,
        parent: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end: Optional[int] = None
        self.parent = parent
        self.attrs = attrs
        self.events: List[Tuple[int, str]] = []

    @property
    def duration(self) -> Optional[int]:
        """``end - start``, or ``None`` while the span is open."""
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:
        end = "open" if self.end is None else self.end
        return (
            f"Span(#{self.span_id} {self.name} node={self.node} "
            f"[{self.start}..{end}] parent={self.parent})"
        )


def span_to_dict(span: Span) -> Dict[str, Any]:
    """A JSON-serializable projection of ``span``."""
    return {
        "span_id": span.span_id,
        "name": span.name,
        "category": span.category,
        "node": span.node,
        "start": span.start,
        "end": span.end,
        "parent": span.parent,
        "attrs": dict(span.attrs),
        "events": list(span.events),
    }


class SpanTracer:
    """Collects :class:`Span` objects and the causal context stack.

    Construction does not enable tracing: flip :attr:`enabled` (or pass
    ``spans=True`` to :class:`~repro.core.stack.CanelyNetwork`). The clock
    is bound by the owning :class:`~repro.sim.kernel.Simulator`; call sites
    that have the current time at hand pass it via ``at=`` to skip the
    clock call.
    """

    __slots__ = ("enabled", "_clock", "_spans", "_stack")

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self.enabled = False
        self._clock: Callable[[], int] = clock if clock is not None else lambda: 0
        self._spans: List[Span] = []
        self._stack: List[int] = []

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Set the time source used when ``at`` is not given."""
        self._clock = clock

    # -- recording ---------------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        node: int = -1,
        parent: Optional[int] = None,
        at: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id.

        ``parent`` defaults to the current context span (top of the stack),
        making causality free wherever the dispatch site pushed context.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        span_id = len(self._spans)
        self._spans.append(
            Span(
                span_id,
                name,
                category,
                node,
                self._clock() if at is None else at,
                parent,
                attrs,
            )
        )
        return span_id

    def end(
        self, span_id: Optional[int], at: Optional[int] = None, **attrs: Any
    ) -> None:
        """Close an open span (``None`` ids and double-ends are no-ops)."""
        if span_id is None:
            return
        span = self._spans[span_id]
        if span.end is not None:
            return
        span.end = self._clock() if at is None else at
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        category: str,
        node: int = -1,
        parent: Optional[int] = None,
        at: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """A zero-duration span (point event that can still parent others)."""
        span_id = self.begin(
            name, category, node=node, parent=parent, at=at, **attrs
        )
        span = self._spans[span_id]
        span.end = span.start
        return span_id

    def event(
        self, span_id: Optional[int], label: str, at: Optional[int] = None
    ) -> None:
        """Attach a point event to an existing span (``None`` id: no-op)."""
        if span_id is None:
            return
        self._spans[span_id].events.append(
            (self._clock() if at is None else at, label)
        )

    # -- causal context -----------------------------------------------------------

    def push(self, span_id: int) -> None:
        """Make ``span_id`` the implicit parent of spans opened next."""
        self._stack.append(span_id)

    def pop(self) -> None:
        """Undo the matching :meth:`push`."""
        self._stack.pop()

    @property
    def current(self) -> Optional[int]:
        """The span id new spans will adopt as parent, or ``None``."""
        return self._stack[-1] if self._stack else None

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def get(self, span_id: int) -> Span:
        """The span with the given id."""
        return self._spans[span_id]

    def select(
        self,
        name: Optional[str] = None,
        category: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[Span], bool]] = None,
    ) -> List[Span]:
        """Spans matching every given filter, in creation order."""
        result = []
        for span in self._spans:
            if name is not None and span.name != name:
                continue
            if category is not None and span.category != category:
                continue
            if node is not None and span.node != node:
                continue
            if predicate is not None and not predicate(span):
                continue
            result.append(span)
        return result

    def children(self, span_id: int) -> List[Span]:
        """Direct children of ``span_id``, in creation order."""
        return [span for span in self._spans if span.parent == span_id]

    def ancestors(self, span_id: int) -> List[Span]:
        """The parent chain of ``span_id``, nearest first (excludes self)."""
        chain: List[Span] = []
        parent = self._spans[span_id].parent
        while parent is not None:
            span = self._spans[parent]
            chain.append(span)
            parent = span.parent
        return chain

    def root(self, span_id: int) -> Span:
        """The root of the tree containing ``span_id``."""
        chain = self.ancestors(span_id)
        return chain[-1] if chain else self._spans[span_id]

    def open_spans(self) -> List[Span]:
        """Spans never closed (e.g. the frame queue of a crashed node)."""
        return [span for span in self._spans if span.end is None]

    def max_time(self) -> int:
        """Largest timestamp recorded on any span edge or event."""
        latest = 0
        for span in self._spans:
            latest = max(latest, span.start if span.end is None else span.end)
        return latest

    def summary(self) -> Dict[Tuple[str, str], int]:
        """Span count per ``(category, name)``, sorted."""
        counts: Dict[Tuple[str, str], int] = {}
        for span in self._spans:
            key = (span.category, span.name)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        """Drop every span and the context stack (keeps ``enabled``)."""
        self._spans.clear()
        self._stack.clear()


#: Shared disabled tracer: the default for components constructed without a
#: simulator (standalone controllers, substrate-only tests). Never enable
#: it — wire a real, clock-bound tracer instead.
NULL_TRACER = SpanTracer()


def render_span_tree(
    tracer: SpanTracer,
    root_id: int,
    format_time: Optional[Callable[[int], str]] = None,
    max_depth: int = 12,
) -> List[str]:
    """ASCII rendering of the span tree rooted at ``root_id``.

    One line per span: indentation is causal depth, then the interval, the
    span name, node, and duration — the quickest way to *see* why a
    detection took as long as it did.
    """
    fmt = format_time if format_time is not None else str
    lines: List[str] = []

    def _walk(span: Span, depth: int) -> None:
        if depth > max_depth:
            return
        duration = "open" if span.end is None else fmt(span.duration)
        label = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        lines.append(
            f"{'  ' * depth}{fmt(span.start):>12}  {span.name} "
            f"node={span.node} ({duration})"
            + (f" [{label}]" if label else "")
        )
        for child in tracer.children(span.span_id):
            _walk(child, depth + 1)

    _walk(tracer.get(root_id), 0)
    return lines
