"""Runtime metrics: counters, gauges and fixed-bucket histograms.

De Florio & Blondia's failure-detection design survey argues a detector
should expose its timing behavior as *queryable signals*, not buried logs;
this module is that surface for the whole stack. Every
:class:`~repro.sim.kernel.Simulator` owns a :class:`MetricsRegistry`
(``sim.metrics``) and the hot paths — bus arbitration, life-sign handling,
FDA dissemination, membership cycles — update it inline, so a running
campaign can be observed without replaying the trace.

Metrics are keyed by name plus optional labels
(``registry.counter("fd.detect", node=3)``); histograms use fixed bucket
boundaries chosen at creation, so observing a value is O(log buckets) and
rendering never needs the raw samples.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Default histogram boundaries, in kernel ticks (ns): 100 µs .. 500 ms.
#: Sized for the protocol latencies of the paper's Section 6.5 regime
#: (heartbeats of ~10 ms, membership cycles of tens of ms).
DEFAULT_LATENCY_BUCKETS: Tuple[int, ...] = (
    100_000,  # 100 µs
    1_000_000,  # 1 ms
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    500_000_000,  # 500 ms
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. current utilization)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-boundary histogram of observations.

    ``boundaries`` are the inclusive upper edges of the finite buckets; an
    implicit overflow bucket catches everything beyond the last edge.
    """

    __slots__ = ("boundaries", "bucket_counts", "total", "count", "_min", "_max")

    def __init__(
        self, boundaries: Sequence[Union[int, float]] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        edges = tuple(boundaries)
        if not edges:
            raise ValueError("a histogram needs at least one bucket boundary")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"boundaries must strictly increase: {edges}")
        self.boundaries = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> Optional[float]:
        """Smallest observation, or ``None`` when empty."""
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        """Largest observation, or ``None`` when empty."""
        return self._max

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket edge containing the ``q``-quantile observation.

        Bucket-resolution only (that is the histogram trade-off), except at
        the edges: ``q == 0.0`` returns the exact minimum, ``q == 1.0`` the
        exact maximum (also used for the overflow bucket). ``None`` when
        empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if not self.count:
            return None
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * self.count
        cumulative = 0
        for edge, bucket in zip(self.boundaries, self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                return edge
        return self._max

    def summary(self) -> Dict[str, Optional[float]]:
        """The standard digest: count, mean, min, max, p50, p99.

        Quantiles are bucket-resolution upper bounds (see :meth:`quantile`);
        every value is ``None``-free except on an empty histogram.
        """
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


def _key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named metrics, created on first use and shared by name+labels."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, key: str, factory, kind) -> Metric:
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``name`` (+ labels)."""
        return self._get_or_create(_key(name, labels), Counter, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``name`` (+ labels)."""
        return self._get_or_create(_key(name, labels), Gauge, Gauge)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[Union[int, float]]] = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram registered under ``name`` (+ labels).

        ``boundaries`` only applies on first creation; later calls reuse
        the existing buckets.
        """
        edges = boundaries if boundaries is not None else DEFAULT_LATENCY_BUCKETS
        return self._get_or_create(
            _key(name, labels), lambda: Histogram(edges), Histogram
        )

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump of every metric, keyed by full name."""
        out: Dict[str, Any] = {}
        for key, metric in self:
            if isinstance(metric, (Counter, Gauge)):
                out[key] = metric.value
            else:
                out[key] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "mean": metric.mean,
                    "min": metric.minimum,
                    "max": metric.maximum,
                    "buckets": dict(
                        zip(
                            [*map(str, metric.boundaries), "+inf"],
                            metric.bucket_counts,
                        )
                    ),
                }
        return out

    def render(self) -> str:
        """Human-readable one-metric-per-line rendering."""
        lines: List[str] = []
        for key, metric in self:
            if isinstance(metric, Counter):
                lines.append(f"{key} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{key} = {metric.value:.6g}")
            else:
                lines.append(
                    f"{key} count={metric.count} mean={metric.mean:.6g} "
                    f"min={metric.minimum} max={metric.maximum} "
                    f"p95<={metric.quantile(0.95)}"
                )
        return "\n".join(lines)

    def clear(self) -> None:
        """Forget every metric."""
        self._metrics.clear()
