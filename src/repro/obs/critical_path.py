"""Critical-path latency attribution over the causal span trace.

The paper's headline numbers are latency *bounds* — worst-case node failure
detection and membership-change notification. The span tracer
(:mod:`repro.obs.spans`) records why each individual detection took as long
as it did; this module turns one detection's span tree into an exact
decomposition: a sequence of named, contiguous :class:`Segment` intervals
from the crash instant to the observed event whose durations **sum exactly**
(integer ticks) to the end-to-end latency.

The decomposition walks the ancestor chain of the target span back to the
surveillance-timer span whose expiry started the detection:

* ``surveillance-wait`` — crash until the detector's surveillance timer for
  the failed node expired (the ``Thb + Ttd`` silence bound of MCAN4).
* ``bus-access`` — failure-sign submitted until it won arbitration (queueing
  plus arbitration losses plus bus load; one per diffusion round).
* ``transmission`` — the failure-sign frame occupying the wire.
* ``delivery`` / ``notification`` — wire end until the ``fda-can.nty`` /
  ``msh-can.nty`` upcall at the observer (zero in the common case, dropped
  when empty).
* ``cycle-wait`` / ``rha-settle`` / ``view-install`` — for view updates:
  the wait for the membership cycle boundary, the RHA execution, and the
  final view processing.

Zero-length phases are dropped, so every rendered segment carries real
time; the sum invariant is asserted at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.obs.spans import Span, SpanTracer

__all__ = [
    "CriticalPath",
    "Segment",
    "detection_path",
    "notification_path",
    "view_update_path",
]


@dataclass(frozen=True)
class Segment:
    """One named phase of an end-to-end latency, ``[start, end]`` ticks."""

    name: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


class CriticalPathError(ValueError):
    """The span trace does not contain the requested causal chain."""


@dataclass(frozen=True)
class CriticalPath:
    """An exact decomposition of one observed latency.

    ``segments`` are contiguous (each starts where the previous ended) and
    span ``[start, end]`` without gaps, so their durations always sum to
    ``total`` — the invariant is checked at construction time.
    """

    kind: str
    failed: int
    observer: int
    start: int
    end: int
    segments: Tuple[Segment, ...]

    def __post_init__(self) -> None:
        at = self.start
        for segment in self.segments:
            if segment.start != at:
                raise CriticalPathError(
                    f"gap in critical path: segment {segment.name!r} starts "
                    f"at {segment.start}, expected {at}"
                )
            if segment.end < segment.start:
                raise CriticalPathError(
                    f"negative segment {segment.name!r}: "
                    f"[{segment.start}..{segment.end}]"
                )
            at = segment.end
        if at != self.end:
            raise CriticalPathError(
                f"critical path ends at {at}, expected {self.end}"
            )

    @property
    def total(self) -> int:
        """The end-to-end latency; always equals the segment sum."""
        return self.end - self.start

    def render(
        self, format_time: Optional[Callable[[int], str]] = None
    ) -> List[str]:
        """Human-readable table: one line per segment plus the total."""
        fmt = format_time if format_time is not None else str
        total = self.total
        lines = [
            f"{self.kind} of node {self.failed} observed at node "
            f"{self.observer}: {fmt(total)}"
        ]
        for segment in self.segments:
            share = 100.0 * segment.duration / total if total else 0.0
            lines.append(
                f"  {segment.name:<20} {fmt(segment.duration):>14} "
                f"({share:5.1f}%)"
            )
        return lines


def _first(
    tracer: SpanTracer,
    name: str,
    failed: int,
    observer: Optional[int],
) -> Span:
    for span in tracer:
        if span.name != name:
            continue
        if observer is not None and span.node != observer:
            continue
        attr = span.attrs.get("failed")
        if isinstance(attr, (list, tuple)):
            if failed not in attr:
                continue
        elif attr != failed:
            continue
        return span
    raise CriticalPathError(
        f"no {name!r} span for failed node {failed}"
        + (f" at node {observer}" if observer is not None else "")
    )


def _crash_time(tracer: SpanTracer, failed: int, before: int) -> int:
    crashed_at = None
    for span in tracer.select(name="node.crash", node=failed):
        if span.start <= before:
            crashed_at = span.start
    if crashed_at is None:
        raise CriticalPathError(
            f"no node.crash span for node {failed} at or before {before}"
        )
    return crashed_at


def _detection_chain(tracer: SpanTracer, target: Span) -> List[Span]:
    """The causal chain from the surveillance-timer expiry to ``target``.

    Root-first slice of ``target``'s ancestry, starting at the
    ``fd.surveillance`` span whose expiry triggered the nearest
    ``fd.detect`` ancestor.
    """
    chain = [target] + tracer.ancestors(target.span_id)
    chain.reverse()  # root first
    for index, span in enumerate(chain):
        if span.name == "fd.detect":
            if index == 0 or chain[index - 1].name != "fd.surveillance":
                raise CriticalPathError(
                    f"fd.detect span #{span.span_id} is not parented to a "
                    "surveillance timer span"
                )
            return chain[index - 1 :]
    raise CriticalPathError(
        f"span #{target.span_id} has no fd.detect ancestor: "
        "was the failure detected while span tracing was enabled?"
    )


def _segments_from_milestones(
    start: int, milestones: List[Tuple[int, str]]
) -> Tuple[Segment, ...]:
    segments: List[Segment] = []
    at = start
    for time, name in milestones:
        if time < at:
            raise CriticalPathError(
                f"milestone {name!r} at {time} precedes {at}"
            )
        if time > at:
            segments.append(Segment(name, at, time))
            at = time
    return tuple(segments)


def _diffusion_milestones(
    chain: List[Span], target_time: int, final_name: str
) -> List[Tuple[int, str]]:
    """Milestones from surveillance expiry through every bus round.

    ``chain[0]`` is the surveillance timer span; each ``can.tx`` span in
    the chain is one physical transmission of the (possibly echoed)
    failure-sign, contributing a ``bus-access`` / ``transmission`` pair —
    numbered from the second round on, which only exist when the diffusion
    needed an echo or a retransmission.
    """
    surveillance = chain[0]
    milestones: List[Tuple[int, str]] = [
        (surveillance.end if surveillance.end is not None else surveillance.start,
         "surveillance-wait"),
    ]
    round_index = 0
    for span in chain[1:]:
        if span.name != "can.tx":
            continue
        round_index += 1
        suffix = "" if round_index == 1 else f"-{round_index}"
        milestones.append((span.start, f"bus-access{suffix}"))
        end = span.end if span.end is not None else span.start
        milestones.append((end, f"transmission{suffix}"))
    milestones.append((target_time, final_name))
    return milestones


def detection_path(
    tracer: SpanTracer, failed: int, observer: Optional[int] = None
) -> CriticalPath:
    """Decompose the crash-to-failure-sign-delivery latency of ``failed``.

    The target is the first ``fda.nty`` span naming ``failed`` (at
    ``observer`` when given, at the earliest-notified node otherwise) —
    the same instant the ``fd.detection_latency_ticks`` histogram and the
    :class:`~repro.obs.monitors.DetectionLatencyMonitor` measure.
    """
    target = _first(tracer, "fda.nty", failed, observer)
    start = _crash_time(tracer, failed, target.start)
    chain = _detection_chain(tracer, target)
    milestones = _diffusion_milestones(chain, target.start, "delivery")
    return CriticalPath(
        kind="detection",
        failed=failed,
        observer=target.node,
        start=start,
        end=target.start,
        segments=_segments_from_milestones(start, milestones),
    )


def notification_path(
    tracer: SpanTracer, failed: int, observer: Optional[int] = None
) -> CriticalPath:
    """Decompose the crash-to-membership-change-notification latency.

    The target is the first ``msh.change`` span whose failed set names
    ``failed`` — the immediate s15 notification of the paper's Fig. 9.
    """
    target = _first(tracer, "msh.change", failed, observer)
    start = _crash_time(tracer, failed, target.start)
    chain = _detection_chain(tracer, target)
    milestones = _diffusion_milestones(chain, target.start, "notification")
    return CriticalPath(
        kind="notification",
        failed=failed,
        observer=target.node,
        start=start,
        end=target.start,
        segments=_segments_from_milestones(start, milestones),
    )


def view_update_path(
    tracer: SpanTracer, failed: int, observer: Optional[int] = None
) -> CriticalPath:
    """Decompose the crash-to-view-install latency of ``failed``.

    The target is the first ``msh.view`` span folding ``failed`` out of the
    membership view. The path extends the notification decomposition at
    the installing node with the wait for the cycle boundary
    (``cycle-wait``), the RHA execution when one ran (``rha-settle``) and
    the final ``view-install`` step.
    """
    target = _first(tracer, "msh.view", failed, observer)
    start = _crash_time(tracer, failed, target.start)
    # The failure-sign delivery *at the installing node* anchors the local
    # part of the path.
    nty = _first(tracer, "fda.nty", failed, target.node)
    chain = _detection_chain(tracer, nty)
    milestones = _diffusion_milestones(chain, nty.start, "delivery")
    # Between the notification and the view install: the membership cycle
    # boundary and, when join/leave requests were pending, an RHA execution.
    rha_span: Optional[Span] = None
    for span in tracer.select(name="rha.execution", node=target.node):
        if span.end is None:
            continue
        if nty.start <= span.start and span.end <= target.start:
            rha_span = span
            break
    if rha_span is not None:
        milestones.append((rha_span.start, "cycle-wait"))
        milestones.append((rha_span.end, "rha-settle"))
    else:
        milestones.append((target.start, "cycle-wait"))
    milestones.append((target.start, "view-install"))
    return CriticalPath(
        kind="view-update",
        failed=failed,
        observer=target.node,
        start=start,
        end=target.start,
        segments=_segments_from_milestones(start, milestones),
    )
