"""Online invariant monitors over the live trace stream.

Post-hoc assertions (``tests/``, :mod:`repro.llc.properties`) only tell you
a week-long campaign went wrong *after* it finished. These monitors
subscribe to the :class:`~repro.sim.trace.TraceRecorder` as streaming
sinks and check MCAN/LCAN-style protocol properties on every record, so a
violation stops the run at the offending instant — and the raised
:class:`InvariantViolation` carries the trace slice around it, which is
usually the whole diagnosis.

Monitors watch these record categories (emitted by the instrumented
protocol layers):

* ``fda.nty`` — failure-sign delivered upward at a node (``node`` is the
  receiver, ``data["failed"]`` the failed identifier).
* ``fda.reset`` — FDA counters retired for one failed identifier.
* ``msh.view`` — a node installed a membership view.
* ``node.crash`` / ``node.recover`` — fault scripting events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import format_time
from repro.sim.trace import TraceRecord, TraceRecorder

#: How much context (in ticks) around a violation goes into the report.
_SLICE_MARGIN = 2_000_000  # 2 ms

#: Agreement bookkeeping horizon: rounds this far behind the newest one
#: are settled and dropped, bounding monitor memory on long campaigns.
_ROUND_HORIZON = 16


class InvariantViolation(AssertionError):
    """An online monitor caught a protocol property violation.

    Attributes:
        monitor: name of the violated invariant.
        records: the offending trace slice (chronological).
    """

    def __init__(
        self, monitor: str, message: str, records: List[TraceRecord]
    ) -> None:
        self.monitor = monitor
        self.records = records
        lines = [f"[{monitor}] {message}"]
        if records:
            lines.append("offending trace slice:")
            for record in records:
                lines.append(
                    f"  {format_time(record.time):>12}  {record.category}"
                    f" node={record.node} {record.data}"
                )
        super().__init__("\n".join(lines))


class InvariantMonitor:
    """Base class: a named trace sink that can fail fast."""

    name = "invariant"

    def __init__(self) -> None:
        self._trace: Optional[TraceRecorder] = None
        self.records_seen = 0

    def attach(self, trace: TraceRecorder) -> "InvariantMonitor":
        """Subscribe to ``trace``; returns self for chaining."""
        self._trace = trace
        trace.add_sink(self.observe)
        return self

    def detach(self) -> None:
        """Unsubscribe from the trace."""
        if self._trace is not None:
            self._trace.remove_sink(self.observe)
            self._trace = None

    def observe(self, record: TraceRecord) -> None:
        """Inspect one record; must raise :class:`InvariantViolation` on
        a property violation."""
        raise NotImplementedError

    def fail(self, message: str, start: int, end: int) -> None:
        """Raise a violation carrying the trace slice ``[start, end]``."""
        records: List[TraceRecord] = []
        if self._trace is not None:
            records = self._trace.window(
                max(0, start - _SLICE_MARGIN), end + _SLICE_MARGIN
            )
        raise InvariantViolation(self.name, message, records)


class DuplicateFailureSignMonitor(InvariantMonitor):
    """No node delivers two failure-signs for the same failed identifier.

    The FDA duplicate counters (Fig. 6, r01-r02) guarantee at-most-once
    upward delivery per failed node until the membership layer retires the
    counters (``fda.reset``) or the receiver reboots. A second ``fda.nty``
    in between means the dedup state was lost or corrupted.
    """

    name = "no-duplicate-failure-sign"

    def __init__(self) -> None:
        super().__init__()
        # (receiver, failed) -> time of the first delivery.
        self._delivered: Dict[Tuple[int, int], int] = {}

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if record.category == "fda.nty":
            key = (record.node, record.data["failed"])
            first = self._delivered.get(key)
            if first is not None:
                self.fail(
                    f"node {record.node} delivered a second failure-sign "
                    f"for node {record.data['failed']} at "
                    f"{format_time(record.time)} (first at "
                    f"{format_time(first)})",
                    first,
                    record.time,
                )
            self._delivered[key] = record.time
        elif record.category in ("fda.reset", "fda.evict"):
            self._delivered.pop((record.node, record.data["failed"]), None)
        elif record.category == "node.recover":
            for key in [k for k in self._delivered if k[0] == record.node]:
                del self._delivered[key]


class ViewAgreementMonitor(InvariantMonitor):
    """Views installed at the same membership round agree across nodes.

    Two nodes are only compared when each one's reported view contains both
    of them — i.e. both believe they share full membership for that round.
    This sidesteps the benign cases (late joiners whose local round counter
    lags, rebooted nodes) while still catching the property the paper's
    Fig. 9 exists to enforce: full members never install divergent views.
    """

    name = "view-agreement"

    def __init__(self) -> None:
        super().__init__()
        # round_index -> {node: (time, frozenset(members))}
        self._rounds: Dict[int, Dict[int, Tuple[int, frozenset]]] = {}
        self._max_round = 0

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if record.category != "msh.view":
            return
        round_index = record.data["round_index"]
        members = frozenset(record.data["members"])
        peers = self._rounds.setdefault(round_index, {})
        for peer, (peer_time, peer_members) in peers.items():
            mutual = (
                record.node in peer_members
                and peer in members
                and record.node in members
                and peer in peer_members
            )
            if mutual and members != peer_members:
                self.fail(
                    f"round {round_index}: node {record.node} installed "
                    f"{sorted(members)} but node {peer} installed "
                    f"{sorted(peer_members)}",
                    min(peer_time, record.time),
                    record.time,
                )
        peers[record.node] = (record.time, members)
        if round_index > self._max_round:
            self._max_round = round_index
            for settled in [
                r for r in self._rounds if r < round_index - _ROUND_HORIZON
            ]:
                del self._rounds[settled]


class DetectionLatencyMonitor(InvariantMonitor):
    """A member crash is signalled within the analytical latency bound.

    ``bound`` is the worst-case crash-to-failure-sign-delivery latency:
    ``Thb + Ttd`` silence detection (MCAN4) plus the FDA dissemination
    slack. Every observed latency also lands in the
    ``fd.detection_latency_ticks`` histogram of ``metrics``, making the
    detector's timing behavior a queryable signal.
    """

    name = "detection-latency"

    def __init__(
        self, bound: int, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        super().__init__()
        self.bound = bound
        self._metrics = metrics
        self._crash_times: Dict[int, int] = {}
        self._members_ever: Set[int] = set()

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if record.category == "msh.view":
            self._members_ever.update(record.data["members"])
        elif record.category == "node.crash":
            self._crash_times.setdefault(record.node, record.time)
        elif record.category == "node.recover":
            self._crash_times.pop(record.node, None)
        elif record.category == "fda.nty":
            failed = record.data["failed"]
            crashed_at = self._crash_times.get(failed)
            if crashed_at is None or failed not in self._members_ever:
                return
            latency = record.time - crashed_at
            if self._metrics is not None:
                self._metrics.histogram(
                    "fd.detection_latency_ticks", node=failed
                ).observe(latency)
            if latency > self.bound:
                self.fail(
                    f"failure-sign for node {failed} reached node "
                    f"{record.node} {format_time(latency)} after the crash "
                    f"(bound {format_time(self.bound)})",
                    crashed_at,
                    record.time,
                )


def standard_monitors(
    trace: TraceRecorder,
    detection_bound: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[InvariantMonitor]:
    """Attach the standard monitor set to ``trace`` and return it.

    ``detection_bound`` enables the latency monitor; without it only the
    structural invariants (duplicate failure-signs, view agreement) run.
    """
    monitors: List[InvariantMonitor] = [
        DuplicateFailureSignMonitor().attach(trace),
        ViewAgreementMonitor().attach(trace),
    ]
    if detection_bound is not None:
        monitors.append(
            DetectionLatencyMonitor(detection_bound, metrics).attach(trace)
        )
    return monitors
