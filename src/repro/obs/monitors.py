"""Online invariant monitors over the live trace stream.

Post-hoc assertions (``tests/``, :mod:`repro.llc.properties`) only tell you
a week-long campaign went wrong *after* it finished. These monitors
subscribe to the :class:`~repro.sim.trace.TraceRecorder` as streaming
sinks and check MCAN/LCAN-style protocol properties on every record, so a
violation stops the run at the offending instant — and the raised
:class:`InvariantViolation` carries the trace slice around it, which is
usually the whole diagnosis.

Monitors watch these record categories (emitted by the instrumented
protocol layers):

* ``fda.nty`` — failure-sign delivered upward at a node (``node`` is the
  receiver, ``data["failed"]`` the failed identifier).
* ``fda.reset`` — FDA counters retired for one failed identifier.
* ``msh.view`` — a node installed a membership view.
* ``node.crash`` / ``node.recover`` — fault scripting events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import format_time
from repro.sim.trace import TraceRecord, TraceRecorder

#: How much context (in ticks) around a violation goes into the report.
_SLICE_MARGIN = 2_000_000  # 2 ms

#: Agreement bookkeeping horizon: per pair, view changes this far behind
#: the newest are settled and dropped, bounding memory on long campaigns.
_ROUND_HORIZON = 16


class InvariantViolation(AssertionError):
    """An online monitor caught a protocol property violation.

    Attributes:
        monitor: name of the violated invariant.
        records: the offending trace slice (chronological).
    """

    def __init__(
        self, monitor: str, message: str, records: List[TraceRecord]
    ) -> None:
        self.monitor = monitor
        self.records = records
        lines = [f"[{monitor}] {message}"]
        if records:
            lines.append("offending trace slice:")
            for record in records:
                lines.append(
                    f"  {format_time(record.time):>12}  {record.category}"
                    f" node={record.node} {record.data}"
                )
        super().__init__("\n".join(lines))


class InvariantMonitor:
    """Base class: a named trace sink that can fail fast."""

    name = "invariant"

    def __init__(self) -> None:
        self._trace: Optional[TraceRecorder] = None
        self.records_seen = 0

    def attach(self, trace: TraceRecorder) -> "InvariantMonitor":
        """Subscribe to ``trace``; returns self for chaining."""
        self._trace = trace
        trace.add_sink(self.observe)
        return self

    def detach(self) -> None:
        """Unsubscribe from the trace."""
        if self._trace is not None:
            self._trace.remove_sink(self.observe)
            self._trace = None

    def observe(self, record: TraceRecord) -> None:
        """Inspect one record; must raise :class:`InvariantViolation` on
        a property violation."""
        raise NotImplementedError

    def fail(self, message: str, start: int, end: int) -> None:
        """Raise a violation carrying the trace slice ``[start, end]``."""
        records: List[TraceRecord] = []
        if self._trace is not None:
            records = self._trace.window(
                max(0, start - _SLICE_MARGIN), end + _SLICE_MARGIN
            )
        raise InvariantViolation(self.name, message, records)


class DuplicateFailureSignMonitor(InvariantMonitor):
    """No node delivers two failure-signs for the same failed identifier.

    The FDA duplicate counters (Fig. 6, r01-r02) guarantee at-most-once
    upward delivery per failed node until the membership layer retires the
    counters (``fda.reset``) or the receiver reboots. A second ``fda.nty``
    in between means the dedup state was lost or corrupted.
    """

    name = "no-duplicate-failure-sign"

    def __init__(self) -> None:
        super().__init__()
        # (receiver, failed) -> time of the first delivery.
        self._delivered: Dict[Tuple[int, int], int] = {}

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if record.category == "fda.nty":
            key = (record.node, record.data["failed"])
            first = self._delivered.get(key)
            if first is not None:
                self.fail(
                    f"node {record.node} delivered a second failure-sign "
                    f"for node {record.data['failed']} at "
                    f"{format_time(record.time)} (first at "
                    f"{format_time(first)})",
                    first,
                    record.time,
                )
            self._delivered[key] = record.time
        elif record.category in ("fda.reset", "fda.evict"):
            self._delivered.pop((record.node, record.data["failed"]), None)
        elif record.category == "node.recover":
            for key in [k for k in self._delivered if k[0] == record.node]:
                del self._delivered[key]


class ViewAgreementMonitor(InvariantMonitor):
    """Mutual members install the same *sequence* of views.

    The ``round_index`` in a ``msh.view`` record is a *local* counter —
    nodes that bootstrap in the same cycle share it, but a late joiner
    misses installations while its join is in flight, so round numbers are
    not comparable across nodes. What virtual synchrony (the paper's
    Fig. 9) actually demands is content, not numbering: while two nodes
    each consider the other a full member, the succession of *distinct*
    views they install must be identical.

    Per pair the monitor therefore logs each side's view changes starting
    from the view that made the pair mutual (the one introducing the later
    of the two — both sides install that same logical view, so the logs
    are anchored), collapses the per-cycle reinstalls of an unchanged
    view, and compares the two logs position by position. The pair is
    retired whenever either node installs a view excluding the other (or
    reboots), so a later reintegration re-anchors cleanly.
    """

    name = "view-agreement"

    def __init__(self) -> None:
        super().__init__()
        # (a, b) with a < b  ->  {node: [dropped, [(time, members), ...]]}
        # ``dropped`` counts horizon-pruned entries so positions stay
        # comparable as absolute indices into the change sequence.
        self._pairs: Dict[Tuple[int, int], Dict[int, list]] = {}

    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if record.category == "node.recover":
            # A rebooted node restarts its protocol state; everything it
            # installed before the reboot is history. Re-anchor its pairs.
            for key in [k for k in self._pairs if record.node in k]:
                del self._pairs[key]
            return
        if record.category != "msh.view":
            return
        node = record.node
        members = frozenset(record.data["members"])
        if node not in members:
            # A passive tracker's view is not authoritative; nothing to
            # anchor or compare until it believes itself a member.
            return
        # Views that drop a peer retire the pair: a reintegrated peer is
        # a fresh pair, anchored at its new introducing view.
        for key in [k for k in self._pairs if node in k]:
            peer = key[0] if key[1] == node else key[1]
            if peer not in members:
                del self._pairs[key]
        for peer in members:
            if peer == node:
                continue
            logs = self._pairs.setdefault(self._key(node, peer), {})
            mine = logs.setdefault(node, [0, []])
            entries = mine[1]
            if entries and entries[-1][1] == members:
                continue  # the per-cycle reinstall of an unchanged view
            entries.append((record.time, members))
            if len(entries) > _ROUND_HORIZON:
                del entries[0]
                mine[0] += 1
            index = mine[0] + len(entries) - 1
            theirs = logs.get(peer)
            if theirs is None:
                continue  # the peer has not seen a mutual view yet
            slot = index - theirs[0]
            if not 0 <= slot < len(theirs[1]):
                continue  # the peer is behind (or the slot was pruned)
            peer_time, peer_members = theirs[1][slot]
            if peer_members != members:
                self.fail(
                    f"view change #{index} of the pair ({node}, {peer}): "
                    f"node {node} installed {sorted(members)} but node "
                    f"{peer} installed {sorted(peer_members)}",
                    min(peer_time, record.time),
                    record.time,
                )


class PhantomRemovalMonitor(InvariantMonitor):
    """No correct node is ever notified as *failed*.

    The failure-notification path (FDA failure-sign -> ``msh.change`` with a
    non-empty ``failed`` set) must only ever name nodes that actually
    crashed: a failure notification for a live node means a surveillance
    timer fired early, a failure-sign was forged or corrupted, or the FDA
    dedup state leaked across identifiers — the membership *validity*
    property of the paper's Fig. 9.

    A node that leaves voluntarily learns of its own withdrawal through a
    change notification whose ``failed`` set names itself (Fig. 9,
    a13-a15); that self-notification is the one benign case and is skipped.
    """

    name = "no-phantom-removal"

    def __init__(self) -> None:
        super().__init__()
        self._crashed: Set[int] = set()

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        category = record.category
        if category == "node.crash":
            self._crashed.add(record.node)
        elif category == "node.recover":
            self._crashed.discard(record.node)
        elif category == "msh.change":
            for failed in record.data["failed"]:
                if failed == record.node:
                    continue  # a13-a15: voluntary-leave self-notification
                if failed not in self._crashed:
                    self.fail(
                        f"node {record.node} was notified at "
                        f"{format_time(record.time)} that node {failed} "
                        f"failed, but node {failed} never crashed",
                        record.time,
                        record.time,
                    )


class DetectionLatencyMonitor(InvariantMonitor):
    """A member crash is signalled within the analytical latency bound.

    ``bound`` is the worst-case crash-to-failure-sign-delivery latency:
    ``Thb + Ttd`` silence detection (MCAN4) plus the FDA dissemination
    slack. Every observed latency also lands in the
    ``fd.detection_latency_ticks`` histogram of ``metrics``, making the
    detector's timing behavior a queryable signal.
    """

    name = "detection-latency"

    def __init__(
        self, bound: int, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        super().__init__()
        self.bound = bound
        self._metrics = metrics
        self._crash_times: Dict[int, int] = {}
        self._members_ever: Set[int] = set()

    def observe(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if record.category == "msh.view":
            self._members_ever.update(record.data["members"])
        elif record.category == "node.crash":
            self._crash_times.setdefault(record.node, record.time)
        elif record.category == "node.recover":
            self._crash_times.pop(record.node, None)
        elif record.category == "fda.nty":
            failed = record.data["failed"]
            crashed_at = self._crash_times.get(failed)
            if crashed_at is None or failed not in self._members_ever:
                return
            latency = record.time - crashed_at
            if self._metrics is not None:
                self._metrics.histogram(
                    "fd.detection_latency_ticks", node=failed
                ).observe(latency)
            if latency > self.bound:
                self.fail(
                    f"failure-sign for node {failed} reached node "
                    f"{record.node} {format_time(latency)} after the crash "
                    f"(bound {format_time(self.bound)})",
                    crashed_at,
                    record.time,
                )


def standard_monitors(
    trace: TraceRecorder,
    detection_bound: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[InvariantMonitor]:
    """Attach the standard monitor set to ``trace`` and return it.

    ``detection_bound`` enables the latency monitor; without it only the
    structural invariants (duplicate failure-signs, view agreement, no
    phantom removals) run.
    """
    monitors: List[InvariantMonitor] = [
        DuplicateFailureSignMonitor().attach(trace),
        ViewAgreementMonitor().attach(trace),
        PhantomRemovalMonitor().attach(trace),
    ]
    if detection_bound is not None:
        monitors.append(
            DetectionLatencyMonitor(detection_bound, metrics).attach(trace)
        )
    return monitors
