"""Failure-detector QoS metrics computed from recorded traces.

The paper argues CANELy's failure detector in terms of *bounded detection
time* and *membership consistency*; the related work (Duarte's
unreliable-FD diagnosis model, Sens' partial-connectivity detectors, and
the Chen/Toueg/Aguilera QoS framework they build on) frames detector
quality as a small set of measurable figures. This module computes those
figures from a finished run's trace — heap or columnar, via the bulk
:meth:`~repro.sim.trace.TraceRecorder.category_columns` accessor — so
every backend comparison in the repo can quote them:

* **detection time** — per crash, the distribution of crash-to-
  notification latencies across the surviving observers (first, last,
  and nearest-rank quantiles);
* **mistake rate** ``λ_M`` — wrongful removals (a node dropped from a
  view while the ground truth says it was up) per observer-second;
* **mistake duration** ``T_M`` — how long a wrongful removal stands
  before the detector corrects itself (the node is re-added), the
  subject genuinely goes down, or the run ends (censored);
* **query-accuracy probability** ``P_A`` — the probability that asking
  any observer about any node at a uniformly random instant returns the
  ground truth, computed by exact time-integration of the per-entry
  view/truth agreement (all-integer arithmetic, so deterministic);
* **completeness / accuracy** — crashes eventually detected by every
  expected observer, and genuine removals over total removals, under
  join/leave churn.

Ground truth comes from the trace's ``node.crash`` records plus the
scripted ``leave_times`` / ``join_times`` the caller passes (the trace
has no join/leave category — intent lives in the scenario script). The
model is one membership spell per node: initial members are in from
``start``; a late joiner enters at its join time; a node exits at its
first crash or scripted leave. That covers the whole scenario catalog;
crash-recover-rejoin cycles are out of scope and documented as such.

Everything serializes deterministically: :meth:`QoSMetrics.to_dict`
emits plain data with stable key order and :meth:`QoSMetrics.to_json`
uses sorted keys, so same-seed runs produce byte-identical reports (the
contract the CI smoke job enforces).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.clock import ms
from repro.sim.trace import TraceRecorder

#: The detection-time quantiles every report quotes.
QUANTILES = (0.50, 0.90, 0.99)


def quantile(values: Sequence[float], fraction: float):
    """The ``fraction``-quantile by nearest-rank; ``None`` when empty.

    Same rule as the campaign report's percentile so the two surfaces
    quote comparable numbers.
    """
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _to_ms(ticks) -> Optional[float]:
    if ticks is None:
        return None
    return round(ticks / ms(1), 6)


def distribution_ms(latencies: Sequence[int]) -> Dict[str, object]:
    """Summary statistics of a latency sample, in milliseconds.

    Nearest-rank quantiles over the tick-valued sample, converted to ms
    only at the edge so the summary is exact and deterministic.
    """
    values = sorted(latencies)
    summary: Dict[str, object] = {"count": len(values)}
    summary["min_ms"] = _to_ms(values[0]) if values else None
    for fraction in QUANTILES:
        key = f"p{int(fraction * 100)}_ms"
        summary[key] = _to_ms(quantile(values, fraction))
    summary["max_ms"] = _to_ms(values[-1]) if values else None
    summary["mean_ms"] = (
        _to_ms(sum(values) / len(values)) if values else None
    )
    return summary


@dataclass(frozen=True)
class CrashDetection:
    """One crash's detection record across the surviving observers.

    Attributes:
        node: the crashed node.
        crash_time: crash instant, in ticks.
        expected: observers that could have learned of the crash
            (correct members still up at the crash instant).
        latencies: per-observer crash-to-notification latencies, sorted,
            in ticks; shorter than ``expected`` when the run ended with
            some observers never notified.
    """

    node: int
    crash_time: int
    expected: int
    latencies: Tuple[int, ...]

    @property
    def notified(self) -> int:
        """Observers that learned of the crash before the run ended."""
        return len(self.latencies)

    @property
    def first(self) -> Optional[int]:
        """Crash-to-*first*-notification latency, in ticks."""
        return self.latencies[0] if self.latencies else None

    @property
    def last(self) -> Optional[int]:
        """Crash-to-*everyone-notified* latency; ``None`` while any
        expected observer remains uninformed."""
        if self.latencies and self.notified == self.expected:
            return self.latencies[-1]
        return None

    @property
    def complete(self) -> bool:
        """True when every expected observer was notified."""
        return self.expected > 0 and self.notified == self.expected

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node,
            "crash_ms": _to_ms(self.crash_time),
            "expected": self.expected,
            "notified": self.notified,
            "complete": self.complete,
            "first_ms": _to_ms(self.first),
            "last_ms": _to_ms(self.last),
            "detection_ms": distribution_ms(self.latencies),
        }


@dataclass(frozen=True)
class Mistake:
    """One wrongful removal: ``observer`` dropped ``subject`` while the
    ground truth had it up.

    ``end`` is the refutation instant (the observer re-added the
    subject); ``None`` when the mistake was never refuted — the duration
    is then censored at the subject's genuine exit or the window end.
    """

    observer: int
    subject: int
    start: int
    end: Optional[int]

    @property
    def refuted(self) -> bool:
        return self.end is not None

    def duration(self, horizon: int) -> int:
        """The mistake's standing time, censored at ``horizon``."""
        return (self.end if self.end is not None else horizon) - self.start

    def to_dict(self, horizon: int) -> Dict[str, object]:
        return {
            "observer": self.observer,
            "subject": self.subject,
            "start_ms": _to_ms(self.start),
            "end_ms": _to_ms(self.end),
            "refuted": self.refuted,
            "duration_ms": _to_ms(self.duration(horizon)),
        }


@dataclass(frozen=True)
class QoSMetrics:
    """The full QoS readout of one run's observation window.

    All times are kernel ticks; conversion to milliseconds happens only
    in :meth:`to_dict`. ``agreement_ticks`` / ``total_ticks`` are the
    exact integer integrals behind ``P_A``.
    """

    start: int
    end: int
    population: Tuple[int, ...]
    observers: Tuple[int, ...]
    crashes: Tuple[CrashDetection, ...]
    mistakes: Tuple[Mistake, ...]
    removals: int
    flaps: int
    agreement_ticks: int
    total_ticks: int
    observer_ticks: int
    mistake_horizons: Tuple[int, ...]
    segment_latencies: Mapping[int, Tuple[int, ...]]

    # -- derived figures ---------------------------------------------------

    @property
    def detection_latencies(self) -> List[int]:
        """Every observer detection latency in the window, sorted."""
        return sorted(
            value for crash in self.crashes for value in crash.latencies
        )

    @property
    def completeness(self) -> Optional[float]:
        """Fraction of crashes every expected observer learned about."""
        if not self.crashes:
            return None
        complete = sum(1 for crash in self.crashes if crash.complete)
        return complete / len(self.crashes)

    @property
    def accuracy(self) -> Optional[float]:
        """Genuine removals over total removals; ``None`` without any."""
        if not self.removals:
            return None
        return (self.removals - len(self.mistakes)) / self.removals

    @property
    def mistake_rate(self) -> float:
        """``λ_M``: wrongful removals per observer-second."""
        if not self.observer_ticks:
            return 0.0
        seconds = self.observer_ticks / ms(1000)
        return len(self.mistakes) / seconds

    @property
    def mistake_durations(self) -> List[int]:
        """``T_M`` sample: each mistake's standing time, in ticks."""
        return sorted(
            mistake.duration(horizon)
            for mistake, horizon in zip(self.mistakes, self.mistake_horizons)
        )

    @property
    def query_accuracy(self) -> Optional[float]:
        """``P_A``: probability a random (observer, node, instant) query
        agrees with the ground truth."""
        if not self.total_ticks:
            return None
        return self.agreement_ticks / self.total_ticks

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data readout with deterministic content and key order."""
        durations = self.mistake_durations
        refuted = sum(1 for mistake in self.mistakes if mistake.refuted)
        return {
            "window_ms": {
                "start": _to_ms(self.start),
                "end": _to_ms(self.end),
                "duration": _to_ms(self.end - self.start),
            },
            "population": len(self.population),
            "observers": len(self.observers),
            "crashes": [crash.to_dict() for crash in self.crashes],
            "detection_ms": distribution_ms(self.detection_latencies),
            "completeness": _round(self.completeness),
            "accuracy": _round(self.accuracy),
            "removals": self.removals,
            "flaps": self.flaps,
            "mistakes": {
                "count": len(self.mistakes),
                "refuted": refuted,
                "rate_per_node_s": _round(self.mistake_rate),
                "duration_ms": distribution_ms(durations),
                "events": [
                    mistake.to_dict(horizon)
                    for mistake, horizon in zip(
                        self.mistakes, self.mistake_horizons
                    )
                ],
            },
            "query_accuracy": _round(self.query_accuracy),
            "per_segment": {
                str(segment): distribution_ms(latencies)
                for segment, latencies in sorted(
                    self.segment_latencies.items()
                )
            },
        }

    def to_json(self) -> str:
        """Byte-identical across same-seed runs: sorted keys, no floats
        beyond the fixed rounding in :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> Dict[str, object]:
        """Flat one-level projection of the headline figures.

        The compact embedding campaign checkpoints and ``repro compare``
        records carry — same values as :meth:`to_dict`, no nesting.
        """
        readout = self.to_dict()
        detection = readout["detection_ms"]
        mistakes = readout["mistakes"]
        return {
            "detection_p50_ms": detection["p50_ms"],
            "detection_p90_ms": detection["p90_ms"],
            "detection_p99_ms": detection["p99_ms"],
            "mistakes": mistakes["count"],
            "mistake_rate_per_node_s": mistakes["rate_per_node_s"],
            "mistake_duration_mean_ms": mistakes["duration_ms"]["mean_ms"],
            "flaps": readout["flaps"],
            "query_accuracy": readout["query_accuracy"],
            "completeness": readout["completeness"],
            "accuracy": readout["accuracy"],
        }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


def compute_qos(
    trace: TraceRecorder,
    *,
    nodes: Sequence[int],
    start: int = 0,
    end: Optional[int] = None,
    crash_times: Optional[Dict[int, int]] = None,
    leave_times: Optional[Mapping[int, int]] = None,
    join_times: Optional[Mapping[int, int]] = None,
    segment_of: Optional[Mapping[int, int]] = None,
) -> QoSMetrics:
    """Compute the FD QoS figures for one run's observation window.

    Args:
        trace: the run's trace (heap or columnar).
        nodes: the initial full members — the agreed view at ``start``
            (callers pass the bootstrapped membership and a ``start`` at
            or after convergence).
        start: window start, ticks. Views are assumed to agree on
            ``nodes`` here; membership changes before ``start`` are
            outside the window.
        end: window end, ticks; defaults to the last trace event.
        crash_times: node -> crash instant; read from the trace's
            ``node.crash`` records when omitted.
        leave_times: node -> scripted voluntary-leave instant (ground
            truth the trace cannot carry).
        join_times: node -> scripted late-join instant; the node becomes
            an *expected* member from that instant (its admission lag
            counts against ``P_A``, exactly like detection lag does).
        segment_of: node -> segment index, for per-segment detection
            aggregation on bridged topologies.

    Returns:
        The :class:`QoSMetrics` readout.
    """
    # Imported here: repro.analysis pulls in the CAN layer, whose modules
    # import the simulator kernel, which imports repro.obs — importing at
    # module scope would make ``import repro.obs`` circular.
    from repro.analysis.latency import (
        crash_notification_times,
        measured_crash_times,
    )

    if crash_times is None:
        crash_times = measured_crash_times(trace)
    leave_times = dict(leave_times or {})
    join_times = dict(join_times or {})

    initial = sorted(set(nodes))
    population = sorted(set(initial) | set(join_times))

    # One membership spell per node: [in_time, out_time).
    in_time: Dict[int, int] = {node: start for node in initial}
    in_time.update(join_times)
    out_time: Dict[int, int] = {}
    for node, when in crash_times.items():
        out_time[node] = min(out_time.get(node, when), when)
    for node, when in leave_times.items():
        out_time[node] = min(out_time.get(node, when), when)

    # Pull every in-window membership change once, grouped per observer.
    times, record_nodes, payloads = trace.category_columns("msh.change")
    if end is None:
        end = max(
            [start]
            + [times[-1]] * (1 if len(times) else 0)
            + list(crash_times.values())
        )
    changes: Dict[int, List[Tuple[int, frozenset]]] = {}
    for index in range(len(times)):
        time = times[index]
        if time <= start or time > end:
            continue
        observer = record_nodes[index]
        active = payloads[index]["active"]
        changes.setdefault(observer, []).append((time, frozenset(active)))

    observers = list(initial)
    horizon: Dict[int, int] = {
        node: min(end, out_time.get(node, end)) for node in observers
    }

    def expected_at(subject: int, time: int) -> bool:
        entered = in_time.get(subject)
        if entered is None or time < entered:
            return False
        exited = out_time.get(subject)
        return exited is None or time < exited

    # Ground-truth transition instants inside the window, for the P_A sweep.
    truth_events = sorted(
        {
            when
            for when in list(in_time.values()) + list(out_time.values())
            if start < when < end
        }
    )

    agreement_ticks = 0
    total_ticks = 0
    observer_ticks = 0
    removals = 0
    flaps = 0
    mistakes: List[Mistake] = []
    mistake_horizons: List[int] = []

    population_size = len(population)
    initial_view = frozenset(initial)

    for observer in observers:
        stop = horizon[observer]
        if stop <= start:
            continue
        observer_ticks += stop - start
        total_ticks += (stop - start) * population_size

        view_changes = changes.get(observer, [])
        # Merge view changes and truth transitions into one time-ordered
        # sweep; between events both the view and the truth are constant,
        # so the disagreement integral is exact integer arithmetic.
        view = initial_view
        truth = frozenset(
            node for node in population if expected_at(node, start)
        )
        previous = start
        wrong = len(view ^ truth)
        open_mistakes: Dict[int, Mistake] = {}
        removed_ever: set = set()
        events: List[Tuple[int, int, object]] = [
            (time, 0, None) for time in truth_events if time < stop
        ] + [
            (time, 1, new_view)
            for time, new_view in view_changes
            if time <= stop
        ]
        events.sort(key=lambda event: (event[0], event[1]))
        for time, kind, new_view in events:
            agreement_ticks += (time - previous) * (population_size - wrong)
            previous = time
            if kind == 0:
                truth = frozenset(
                    node for node in population if expected_at(node, time)
                )
            else:
                removed = view - new_view
                added = new_view - view
                for subject in sorted(removed):
                    removals += 1
                    removed_ever.add(subject)
                    if expected_at(subject, time) and subject not in (
                        open_mistakes
                    ):
                        open_mistakes[subject] = Mistake(
                            observer=observer,
                            subject=subject,
                            start=time,
                            end=None,
                        )
                for subject in sorted(added):
                    if subject in removed_ever:
                        flaps += 1
                    opened = open_mistakes.pop(subject, None)
                    if opened is not None:
                        mistakes.append(
                            Mistake(
                                observer=opened.observer,
                                subject=opened.subject,
                                start=opened.start,
                                end=time,
                            )
                        )
                        mistake_horizons.append(stop)
                view = new_view
            wrong = len(view ^ truth)
        agreement_ticks += (stop - previous) * (population_size - wrong)
        for subject in sorted(open_mistakes):
            opened = open_mistakes[subject]
            mistakes.append(opened)
            # An unrefuted mistake stops standing when the subject
            # genuinely exits, or at the observer's horizon.
            mistake_horizons.append(min(stop, out_time.get(subject, stop)))

    # Detection distributions, via the shared crash-event extraction.
    window_crashes = {
        node: when
        for node, when in crash_times.items()
        if start <= when <= end
    }
    notifications = crash_notification_times(trace, window_crashes)
    crashes: List[CrashDetection] = []
    segment_latencies: Dict[int, List[int]] = {}
    for node in sorted(window_crashes):
        crashed_at = window_crashes[node]
        # Completeness quantifies over *correct* observers: a node that
        # itself crashes or leaves before the window ends is not required
        # to have learned of anyone (it may have had no time to).
        expected = [
            observer
            for observer in observers
            if observer != node
            and horizon[observer] > crashed_at
            and out_time.get(observer, end) >= end
        ]
        latencies = []
        for observer in expected:
            notified_at = notifications.get(node, {}).get(observer)
            if notified_at is None or notified_at > horizon[observer]:
                continue
            latency = notified_at - crashed_at
            latencies.append(latency)
            if segment_of is not None:
                segment = segment_of.get(observer)
                if segment is not None:
                    segment_latencies.setdefault(segment, []).append(latency)
        crashes.append(
            CrashDetection(
                node=node,
                crash_time=crashed_at,
                expected=len(expected),
                latencies=tuple(sorted(latencies)),
            )
        )

    order = sorted(
        range(len(mistakes)),
        key=lambda i: (mistakes[i].start, mistakes[i].observer,
                       mistakes[i].subject),
    )
    return QoSMetrics(
        start=start,
        end=end,
        population=tuple(population),
        observers=tuple(observers),
        crashes=tuple(crashes),
        mistakes=tuple(mistakes[i] for i in order),
        removals=removals,
        flaps=flaps,
        agreement_ticks=agreement_ticks,
        total_ticks=total_ticks,
        observer_ticks=observer_ticks,
        mistake_horizons=tuple(mistake_horizons[i] for i in order),
        segment_latencies={
            segment: tuple(sorted(values))
            for segment, values in segment_latencies.items()
        },
    )


def network_qos(
    network,
    *,
    start: int = 0,
    crash_times: Optional[Dict[int, int]] = None,
    leave_times: Optional[Mapping[int, int]] = None,
    join_times: Optional[Mapping[int, int]] = None,
) -> QoSMetrics:
    """:func:`compute_qos` over a live network's trace and topology.

    ``nodes`` is the network's full population, the window ends *now*,
    and on bridged topologies the per-segment aggregation follows the
    network's segment map.
    """
    return compute_qos(
        network.sim.trace,
        nodes=sorted(network.nodes),
        start=start,
        end=network.sim.now,
        crash_times=crash_times,
        leave_times=leave_times,
        join_times=join_times,
        segment_of=getattr(network, "segment_map", None),
    )
