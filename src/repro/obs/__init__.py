"""Observability: metrics registry and online invariant monitors.

``repro.obs`` is the runtime counterpart of the post-hoc trace queries:
:mod:`repro.obs.metrics` exposes counters, gauges and fixed-bucket
histograms that the hot paths update inline (reachable as ``sim.metrics``),
and :mod:`repro.obs.monitors` checks protocol invariants on the live trace
stream, failing fast with the offending trace slice.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.monitors import (
    DetectionLatencyMonitor,
    DuplicateFailureSignMonitor,
    InvariantMonitor,
    InvariantViolation,
    PhantomRemovalMonitor,
    ViewAgreementMonitor,
    standard_monitors,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DetectionLatencyMonitor",
    "DuplicateFailureSignMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "PhantomRemovalMonitor",
    "ViewAgreementMonitor",
    "standard_monitors",
]
