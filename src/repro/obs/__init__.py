"""Observability: metrics, invariant monitors, causal spans and exporters.

``repro.obs`` is the runtime counterpart of the post-hoc trace queries:
:mod:`repro.obs.metrics` exposes counters, gauges and fixed-bucket
histograms that the hot paths update inline (reachable as ``sim.metrics``),
and :mod:`repro.obs.monitors` checks protocol invariants on the live trace
stream, failing fast with the offending trace slice.

:mod:`repro.obs.spans` adds a causal span tracer (``sim.spans``, disabled
by default) that links every protocol action to its cause;
:mod:`repro.obs.critical_path` decomposes one detection or membership
update into named segments that sum exactly to the observed latency; and
:mod:`repro.obs.export` serializes spans to Chrome trace-event JSON and
renders text message sequence charts.

:mod:`repro.obs.qos` computes the classic failure-detector QoS metrics
(detection-time distribution, mistake rate λ_M, mistake duration T_M,
query accuracy P_A, completeness/accuracy under churn) from a finished
trace, deterministically.
"""

from repro.obs.critical_path import (
    CriticalPath,
    Segment,
    detection_path,
    notification_path,
    view_update_path,
)
from repro.obs.export import (
    CHROME_CATEGORIES,
    chrome_trace_events,
    export_chrome_trace,
    render_msc,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.qos import (
    CrashDetection,
    Mistake,
    QoSMetrics,
    compute_qos,
    network_qos,
)
from repro.obs.monitors import (
    DetectionLatencyMonitor,
    DuplicateFailureSignMonitor,
    InvariantMonitor,
    InvariantViolation,
    PhantomRemovalMonitor,
    ViewAgreementMonitor,
    standard_monitors,
)
from repro.obs.spans import (
    NULL_TRACER,
    Span,
    SpanTracer,
    render_span_tree,
    span_to_dict,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "CHROME_CATEGORIES",
    "Counter",
    "CrashDetection",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Mistake",
    "NULL_TRACER",
    "QoSMetrics",
    "Segment",
    "Span",
    "SpanTracer",
    "DetectionLatencyMonitor",
    "DuplicateFailureSignMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "PhantomRemovalMonitor",
    "ViewAgreementMonitor",
    "chrome_trace_events",
    "compute_qos",
    "detection_path",
    "export_chrome_trace",
    "network_qos",
    "notification_path",
    "render_msc",
    "render_span_tree",
    "span_to_dict",
    "standard_monitors",
    "validate_chrome_trace",
    "view_update_path",
]
