"""Bit-level CAN frame encoding: CRC-15 and bit stuffing.

The simulator charges every transmission its *exact* wire length, obtained by
laying out the frame fields and applying CAN bit stuffing (a complement bit
after five consecutive equal bits, from start-of-frame through the CRC
sequence). The classic worst-case closed forms used by schedulability
analysis (Tindell & Burns) are also provided and tested against the exact
encoder.

Two implementations coexist:

* The **reference** path (:func:`crc15`, :func:`stuff`, :func:`destuff`,
  :func:`frame_body_bits`) works on explicit bit lists. It is the readable
  specification, the decode/inject substrate, and the oracle the fast path
  is validated against.
* The **fast** path behind :func:`exact_frame_bits` lays the frame out as a
  single integer, runs the CRC through a 256-entry byte table and counts
  stuff bits with a precomputed run-state table — no per-bit Python loop,
  no list allocation. Results are memoized in a bounded FIFO cache keyed by
  ``(identifier, data, remote, extended)``, so the steady-state cost of the
  dominant simulator operation (exact wire length of a repeated frame) is
  one dict hit. :func:`reference_encoding` forces the reference path, which
  is how the golden-trace equivalence tests prove both agree.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass as _dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import FrameError

#: CAN CRC-15 generator polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
CRC15_POLY = 0x4599

#: Fixed tail after the stuffed region: CRC delimiter, ACK slot,
#: ACK delimiter, end-of-frame (7 bits).
FRAME_TAIL_BITS = 1 + 1 + 1 + 7

#: Interframe space (intermission) between consecutive frames.
INTERFRAME_BITS = 3

#: Error frame (error-active): 6-bit error flag + up to 8 echo bits
#: allowance folded into the delimiter + 8-bit error delimiter.
ERROR_FLAG_BITS = 6
ERROR_DELIMITER_BITS = 8
ERROR_FRAME_BITS = ERROR_FLAG_BITS + ERROR_DELIMITER_BITS

#: Suspend transmission penalty an error-passive sender pays before retry.
SUSPEND_TRANSMISSION_BITS = 8


def crc15(bits: Sequence[int]) -> int:
    """CAN CRC-15 over a bit sequence (MSB-first shift register).

    This is the bit-level reference implementation; the fast path in
    :func:`exact_frame_bits` uses the byte table built from the same
    recurrence. Input is validated once up front so the shift loop stays
    branch-lean.
    """
    for bit in bits:
        if bit not in (0, 1):
            raise FrameError(f"bit must be 0 or 1, got {bit}")
    crc = 0
    for bit in bits:
        crc_next = bit ^ (crc >> 14 & 1)
        crc = (crc << 1) & 0x7FFF
        if crc_next:
            crc ^= CRC15_POLY
    return crc


def _build_crc15_table() -> Tuple[int, ...]:
    """CRC of each byte fed MSB-first into a zeroed 15-bit register."""
    table = []
    for byte in range(256):
        crc = (byte << 7) & 0x7FFF
        for _ in range(8):
            crc_next = crc & 0x4000
            crc = (crc << 1) & 0x7FFF
            if crc_next:
                crc ^= CRC15_POLY
        table.append(crc)
    return tuple(table)


_CRC15_TABLE = _build_crc15_table()


def _crc15_int(value: int, nbits: int) -> int:
    """CRC-15 of the ``nbits``-wide big-endian bit pattern in ``value``.

    The leading ``nbits % 8`` bits go through the bit recurrence to align
    the remainder on a byte boundary; everything after that is one table
    lookup per byte.
    """
    crc = 0
    rem = nbits & 7
    shift = nbits - rem
    if rem:
        chunk = value >> shift
        for index in range(rem - 1, -1, -1):
            crc_next = ((chunk >> index) & 1) ^ (crc >> 14 & 1)
            crc = (crc << 1) & 0x7FFF
            if crc_next:
                crc ^= CRC15_POLY
    table = _CRC15_TABLE
    while shift:
        shift -= 8
        crc = ((crc << 8) & 0x7FFF) ^ table[
            ((crc >> 7) & 0xFF) ^ ((value >> shift) & 0xFF)
        ]
    return crc


def stuff(bits: Sequence[int]) -> List[int]:
    """Apply CAN bit stuffing: insert a complement after 5 equal bits."""
    stuffed: List[int] = []
    run_value = None
    run_length = 0
    for bit in bits:
        stuffed.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            stuffed.append(1 - bit)
            run_value = 1 - bit
            run_length = 1
    return stuffed


def destuff(bits: Sequence[int]) -> List[int]:
    """Remove stuff bits inserted by :func:`stuff`."""
    destuffed: List[int] = []
    run_value = None
    run_length = 0
    skip_next = False
    for bit in bits:
        if skip_next:
            skip_next = False
            run_value = bit
            run_length = 1
            continue
        destuffed.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            skip_next = True
            run_length = 0
            run_value = None
    return destuffed


def _int_to_bits(value: int, width: int) -> List[int]:
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


# -- fast stuffed-length machinery ------------------------------------------------
#
# Stuffing only ever looks at the current run (value, length <= 4: a fifth
# equal bit triggers the insertion and the stuff bit starts a fresh run of
# the complement). That is 9 states: 0 = no run yet, 1..4 = run of zeros of
# that length, 5..8 = run of ones. Counting stuff bits therefore reduces to
# walking a (state x byte) transition table — the inserted bits change the
# *output* alignment but never the input scan, and only the count matters.


def _stuff_step(state: int, bit: int) -> Tuple[int, int]:
    if state == 0:
        value, length = bit, 1
    else:
        value = 0 if state <= 4 else 1
        length = state if state <= 4 else state - 4
        if bit == value:
            length += 1
        else:
            value, length = bit, 1
    if length == 5:
        # Insert the complement; it opens a new run of length one.
        return 1, (1 if value else 5)
    return 0, (length if value == 0 else 4 + length)


def _build_stuff_tables():
    bit_table = tuple(
        tuple(_stuff_step(state, bit) for bit in (0, 1)) for state in range(9)
    )
    byte_table = []
    for state in range(9):
        row = []
        for byte in range(256):
            added = 0
            current = state
            for index in range(7, -1, -1):
                step, current = bit_table[current][(byte >> index) & 1]
                added += step
            row.append((added, current))
        byte_table.append(tuple(row))
    return bit_table, tuple(byte_table)


_STUFF_BIT, _STUFF_BYTE = _build_stuff_tables()


def _stuffed_length(value: int, nbits: int) -> int:
    """Length after stuffing of the ``nbits``-wide pattern in ``value``."""
    extra = 0
    state = 0
    rem = nbits & 7
    shift = nbits - rem
    if rem:
        chunk = value >> shift
        bit_table = _STUFF_BIT
        for index in range(rem - 1, -1, -1):
            added, state = bit_table[state][(chunk >> index) & 1]
            extra += added
    byte_table = _STUFF_BYTE
    while shift:
        shift -= 8
        added, state = byte_table[state][(value >> shift) & 0xFF]
        extra += added
    return nbits + extra


def _frame_body_value(
    identifier: int, data: bytes, remote: bool, extended: bool
) -> Tuple[int, int]:
    """The SOF..CRC stuff region as ``(big-endian value, bit count)``.

    Integer twin of ``frame_body_bits`` (same field layout, same
    validation); the CRC is computed with the byte table.
    """
    if remote and data:
        raise FrameError("remote frames carry no data")
    dlc = len(data)
    if dlc > 8:
        raise FrameError(f"CAN data field is at most 8 bytes, got {dlc}")
    if extended:
        # SOF(0) id[28:18] SRR(1) IDE(1) id[17:0] RTR r1(0) r0(0) DLC
        value = identifier >> 18
        value = (value << 2) | 0b11
        value = (value << 18) | (identifier & 0x3FFFF)
        value = (value << 1) | (1 if remote else 0)
        value = (value << 6) | dlc
        nbits = 39
    else:
        if identifier >= 1 << 11:
            raise FrameError(
                f"identifier {identifier:#x} does not fit the standard format"
            )
        # SOF(0) id[10:0] RTR IDE(0) r0(0) DLC
        value = (identifier << 1) | (1 if remote else 0)
        value = (value << 6) | dlc
        nbits = 19
    if data:
        value = (value << (8 * dlc)) | int.from_bytes(data, "big")
        nbits += 8 * dlc
    crc = _crc15_int(value, nbits)
    return (value << 15) | crc, nbits + 15


def frame_body_bits(
    identifier: int,
    data: bytes,
    remote: bool,
    extended: bool = True,
    dlc: int = None,
) -> List[int]:
    """Lay out the stuff-eligible region: SOF through CRC sequence.

    For a remote frame ``data`` must be empty and ``dlc`` carries the data
    length code of the *requested* frame (0 for CANELy control messages).
    """
    if remote and data:
        raise FrameError("remote frames carry no data")
    if len(data) > 8:
        raise FrameError(f"CAN data field is at most 8 bytes, got {len(data)}")
    if dlc is None:
        dlc = len(data)
    if not 0 <= dlc <= 8:
        raise FrameError(f"DLC out of range: {dlc}")

    bits: List[int] = [0]  # SOF (dominant)
    if extended:
        bits += _int_to_bits(identifier >> 18, 11)  # base identifier
        bits += [1, 1]  # SRR, IDE (both recessive)
        bits += _int_to_bits(identifier & ((1 << 18) - 1), 18)
        bits += [1 if remote else 0]  # RTR
        bits += [0, 0]  # r1, r0
    else:
        if identifier >= 1 << 11:
            raise FrameError(
                f"identifier {identifier:#x} does not fit the standard format"
            )
        bits += _int_to_bits(identifier, 11)
        bits += [1 if remote else 0]  # RTR
        bits += [0, 0]  # IDE, r0
    bits += _int_to_bits(dlc, 4)
    for byte in data:
        bits += _int_to_bits(byte, 8)
    bits += _int_to_bits(crc15(bits), 15)
    return bits


#: Upper bound on memoized wire lengths; FIFO eviction past this point.
WIRE_CACHE_MAX = 4096

_wire_cache: Dict[Tuple[int, bytes, bool, bool], int] = {}
_wire_cache_hits = 0
_wire_cache_misses = 0
_fast_encoding = True


def exact_frame_bits_reference(
    identifier: int,
    data: bytes,
    remote: bool,
    extended: bool = True,
    with_interframe: bool = True,
) -> int:
    """Exact wire length via the bit-list reference path (no cache)."""
    body = stuff(frame_body_bits(identifier, data, remote, extended))
    total = len(body) + FRAME_TAIL_BITS
    if with_interframe:
        total += INTERFRAME_BITS
    return total


def exact_frame_bits(
    identifier: int,
    data: bytes,
    remote: bool,
    extended: bool = True,
    with_interframe: bool = True,
) -> int:
    """Exact wire length of a frame in bit-times, including stuffing.

    Memoized: repeated frames (heartbeats, clustered failure-signs, the
    periodic traffic of a campaign) cost one dict lookup after the first
    encoding. The cache is bounded (:data:`WIRE_CACHE_MAX`, FIFO) and keyed
    by ``(identifier, data, remote, extended)``.
    """
    global _wire_cache_hits, _wire_cache_misses
    if not _fast_encoding:
        return exact_frame_bits_reference(
            identifier, data, remote, extended, with_interframe
        )
    key = (identifier, data, remote, extended)
    cache = _wire_cache
    total = cache.get(key)
    if total is None:
        _wire_cache_misses += 1
        value, nbits = _frame_body_value(identifier, data, remote, extended)
        total = _stuffed_length(value, nbits) + FRAME_TAIL_BITS
        if len(cache) >= WIRE_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[key] = total
    else:
        _wire_cache_hits += 1
    return total + INTERFRAME_BITS if with_interframe else total


def clear_encoding_cache() -> None:
    """Empty the wire-length memo cache and reset its statistics."""
    global _wire_cache_hits, _wire_cache_misses
    _wire_cache.clear()
    _wire_cache_hits = 0
    _wire_cache_misses = 0


def encoding_cache_info() -> Dict[str, int]:
    """Size/capacity/hit/miss statistics of the wire-length cache."""
    return {
        "size": len(_wire_cache),
        "max_size": WIRE_CACHE_MAX,
        "hits": _wire_cache_hits,
        "misses": _wire_cache_misses,
    }


@contextmanager
def reference_encoding() -> Iterator[None]:
    """Force the bit-list reference path (and bypass the cache) within.

    The golden-trace equivalence tests run whole scenarios under this to
    prove the fast path changes no simulated outcome.
    """
    global _fast_encoding
    previous = _fast_encoding
    _fast_encoding = False
    try:
        yield
    finally:
        _fast_encoding = previous


@_dataclass(frozen=True)
class DecodedFrame:
    """Result of parsing a frame's stuff-region bit pattern."""

    identifier: int
    data: bytes
    remote: bool
    extended: bool
    crc_ok: bool


def decode_frame_bits(stuffed: Sequence[int]) -> DecodedFrame:
    """Parse a stuffed SOF..CRC bit pattern back into its fields.

    The inverse of ``stuff(frame_body_bits(...))``; verifies the CRC-15.
    Raises :class:`~repro.errors.FrameError` on structural violations
    (wrong SOF, truncated fields, DLC/data mismatch).
    """
    bits = destuff(stuffed)
    if len(bits) < 19:
        raise FrameError(f"frame too short: {len(bits)} bits")
    if bits[0] != 0:
        raise FrameError("missing dominant start-of-frame bit")

    def take(count: int, cursor: int) -> Tuple[int, int]:
        if cursor + count > len(bits):
            raise FrameError("truncated frame")
        value = 0
        for bit in bits[cursor : cursor + count]:
            value = (value << 1) | bit
        return value, cursor + count

    cursor = 1
    base_id, cursor = take(11, cursor)
    flag1, cursor = take(1, cursor)  # RTR (standard) / SRR (extended)
    ide, cursor = take(1, cursor)
    extended = bool(ide)
    if extended:
        ext_id, cursor = take(18, cursor)
        identifier = (base_id << 18) | ext_id
        rtr, cursor = take(1, cursor)
        _, cursor = take(2, cursor)  # r1, r0
    else:
        identifier = base_id
        rtr = flag1
        _, cursor = take(1, cursor)  # r0
    dlc, cursor = take(4, cursor)
    if dlc > 8:
        raise FrameError(f"DLC out of range: {dlc}")
    payload = bytearray()
    if not rtr:
        for _ in range(dlc):
            byte, cursor = take(8, cursor)
            payload.append(byte)
    crc, cursor = take(15, cursor)
    if cursor != len(bits):
        raise FrameError(f"{len(bits) - cursor} trailing bits after the CRC")
    crc_ok = crc15(bits[: cursor - 15]) == crc
    return DecodedFrame(
        identifier=identifier,
        data=bytes(payload),
        remote=bool(rtr),
        extended=extended,
        crc_ok=crc_ok,
    )


def worst_case_frame_bits(
    dlc: int,
    extended: bool = True,
    with_interframe: bool = True,
) -> int:
    """Worst-case stuffed frame length (Tindell-Burns closed form).

    Standard format: ``8*dlc + 44 + floor((34 + 8*dlc - 1) / 4)``;
    extended format: ``8*dlc + 64 + floor((54 + 8*dlc - 1) / 4)``;
    plus the 3-bit interframe space when requested.
    """
    if not 0 <= dlc <= 8:
        raise FrameError(f"DLC out of range: {dlc}")
    if extended:
        unstuffed = 8 * dlc + 64
        stuff_region = 54 + 8 * dlc
    else:
        unstuffed = 8 * dlc + 44
        stuff_region = 34 + 8 * dlc
    total = unstuffed + (stuff_region - 1) // 4
    if with_interframe:
        total += INTERFRAME_BITS
    return total
