"""Bit-level CAN frame encoding: CRC-15 and bit stuffing.

The simulator charges every transmission its *exact* wire length, obtained by
laying out the frame fields and applying CAN bit stuffing (a complement bit
after five consecutive equal bits, from start-of-frame through the CRC
sequence). The classic worst-case closed forms used by schedulability
analysis (Tindell & Burns) are also provided and tested against the exact
encoder.
"""

from __future__ import annotations

from dataclasses import dataclass as _dataclass
from typing import List, Sequence, Tuple

from repro.errors import FrameError

#: CAN CRC-15 generator polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
CRC15_POLY = 0x4599

#: Fixed tail after the stuffed region: CRC delimiter, ACK slot,
#: ACK delimiter, end-of-frame (7 bits).
FRAME_TAIL_BITS = 1 + 1 + 1 + 7

#: Interframe space (intermission) between consecutive frames.
INTERFRAME_BITS = 3

#: Error frame (error-active): 6-bit error flag + up to 8 echo bits
#: allowance folded into the delimiter + 8-bit error delimiter.
ERROR_FLAG_BITS = 6
ERROR_DELIMITER_BITS = 8
ERROR_FRAME_BITS = ERROR_FLAG_BITS + ERROR_DELIMITER_BITS

#: Suspend transmission penalty an error-passive sender pays before retry.
SUSPEND_TRANSMISSION_BITS = 8


def crc15(bits: Sequence[int]) -> int:
    """CAN CRC-15 over a bit sequence (MSB-first shift register)."""
    crc = 0
    for bit in bits:
        if bit not in (0, 1):
            raise FrameError(f"bit must be 0 or 1, got {bit}")
        crc_next = bit ^ (crc >> 14 & 1)
        crc = (crc << 1) & 0x7FFF
        if crc_next:
            crc ^= CRC15_POLY
    return crc


def stuff(bits: Sequence[int]) -> List[int]:
    """Apply CAN bit stuffing: insert a complement after 5 equal bits."""
    stuffed: List[int] = []
    run_value = None
    run_length = 0
    for bit in bits:
        stuffed.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            stuffed.append(1 - bit)
            run_value = 1 - bit
            run_length = 1
    return stuffed


def destuff(bits: Sequence[int]) -> List[int]:
    """Remove stuff bits inserted by :func:`stuff`."""
    destuffed: List[int] = []
    run_value = None
    run_length = 0
    skip_next = False
    for bit in bits:
        if skip_next:
            skip_next = False
            run_value = bit
            run_length = 1
            continue
        destuffed.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == 5:
            skip_next = True
            run_length = 0
            run_value = None
    return destuffed


def _int_to_bits(value: int, width: int) -> List[int]:
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def frame_body_bits(
    identifier: int,
    data: bytes,
    remote: bool,
    extended: bool = True,
    dlc: int = None,
) -> List[int]:
    """Lay out the stuff-eligible region: SOF through CRC sequence.

    For a remote frame ``data`` must be empty and ``dlc`` carries the data
    length code of the *requested* frame (0 for CANELy control messages).
    """
    if remote and data:
        raise FrameError("remote frames carry no data")
    if len(data) > 8:
        raise FrameError(f"CAN data field is at most 8 bytes, got {len(data)}")
    if dlc is None:
        dlc = len(data)
    if not 0 <= dlc <= 8:
        raise FrameError(f"DLC out of range: {dlc}")

    bits: List[int] = [0]  # SOF (dominant)
    if extended:
        bits += _int_to_bits(identifier >> 18, 11)  # base identifier
        bits += [1, 1]  # SRR, IDE (both recessive)
        bits += _int_to_bits(identifier & ((1 << 18) - 1), 18)
        bits += [1 if remote else 0]  # RTR
        bits += [0, 0]  # r1, r0
    else:
        if identifier >= 1 << 11:
            raise FrameError(
                f"identifier {identifier:#x} does not fit the standard format"
            )
        bits += _int_to_bits(identifier, 11)
        bits += [1 if remote else 0]  # RTR
        bits += [0, 0]  # IDE, r0
    bits += _int_to_bits(dlc, 4)
    for byte in data:
        bits += _int_to_bits(byte, 8)
    bits += _int_to_bits(crc15(bits), 15)
    return bits


def exact_frame_bits(
    identifier: int,
    data: bytes,
    remote: bool,
    extended: bool = True,
    with_interframe: bool = True,
) -> int:
    """Exact wire length of a frame in bit-times, including stuffing."""
    body = stuff(frame_body_bits(identifier, data, remote, extended))
    total = len(body) + FRAME_TAIL_BITS
    if with_interframe:
        total += INTERFRAME_BITS
    return total


@_dataclass(frozen=True)
class DecodedFrame:
    """Result of parsing a frame's stuff-region bit pattern."""

    identifier: int
    data: bytes
    remote: bool
    extended: bool
    crc_ok: bool


def decode_frame_bits(stuffed: Sequence[int]) -> DecodedFrame:
    """Parse a stuffed SOF..CRC bit pattern back into its fields.

    The inverse of ``stuff(frame_body_bits(...))``; verifies the CRC-15.
    Raises :class:`~repro.errors.FrameError` on structural violations
    (wrong SOF, truncated fields, DLC/data mismatch).
    """
    bits = destuff(stuffed)
    if len(bits) < 19:
        raise FrameError(f"frame too short: {len(bits)} bits")
    if bits[0] != 0:
        raise FrameError("missing dominant start-of-frame bit")

    def take(count: int, cursor: int) -> Tuple[int, int]:
        if cursor + count > len(bits):
            raise FrameError("truncated frame")
        value = 0
        for bit in bits[cursor : cursor + count]:
            value = (value << 1) | bit
        return value, cursor + count

    cursor = 1
    base_id, cursor = take(11, cursor)
    flag1, cursor = take(1, cursor)  # RTR (standard) / SRR (extended)
    ide, cursor = take(1, cursor)
    extended = bool(ide)
    if extended:
        ext_id, cursor = take(18, cursor)
        identifier = (base_id << 18) | ext_id
        rtr, cursor = take(1, cursor)
        _, cursor = take(2, cursor)  # r1, r0
    else:
        identifier = base_id
        rtr = flag1
        _, cursor = take(1, cursor)  # r0
    dlc, cursor = take(4, cursor)
    if dlc > 8:
        raise FrameError(f"DLC out of range: {dlc}")
    payload = bytearray()
    if not rtr:
        for _ in range(dlc):
            byte, cursor = take(8, cursor)
            payload.append(byte)
    crc, cursor = take(15, cursor)
    if cursor != len(bits):
        raise FrameError(f"{len(bits) - cursor} trailing bits after the CRC")
    crc_ok = crc15(bits[: cursor - 15]) == crc
    return DecodedFrame(
        identifier=identifier,
        data=bytes(payload),
        remote=bool(rtr),
        extended=extended,
        crc_ok=crc_ok,
    )


def worst_case_frame_bits(
    dlc: int,
    extended: bool = True,
    with_interframe: bool = True,
) -> int:
    """Worst-case stuffed frame length (Tindell-Burns closed form).

    Standard format: ``8*dlc + 44 + floor((34 + 8*dlc - 1) / 4)``;
    extended format: ``8*dlc + 64 + floor((54 + 8*dlc - 1) / 4)``;
    plus the 3-bit interframe space when requested.
    """
    if not 0 <= dlc <= 8:
        raise FrameError(f"DLC out of range: {dlc}")
    if extended:
        unstuffed = 8 * dlc + 64
        stuff_region = 54 + 8 * dlc
    else:
        unstuffed = 8 * dlc + 44
        stuff_region = 34 + 8 * dlc
    total = unstuffed + (stuff_region - 1) // 4
    if with_interframe:
        total += INTERFRAME_BITS
    return total
