"""CAN fieldbus simulator substrate.

Implements a discrete-event model of a CAN 2.0 network at bit-time
resolution: frames with exact stuffed lengths, priority arbitration with
wired-AND clustering of identical remote frames, the standard-layer driver
interface of the paper's Fig. 4 (``.req``/``.cnf``/``.ind`` plus the
``.nty`` extension), fault confinement (TEC/REC, error-active/passive/
bus-off) and a fault injector able to produce the *inconsistent omission*
failure mode the CANELy protocols are designed around.
"""

from repro.can.bus import CanBus
from repro.can.channels import DualChannelLayer
from repro.can.controller import CanController, ControllerState
from repro.can.driver import CanStandardLayer
from repro.can.errormodel import FaultInjector, FaultKind, FaultVerdict
from repro.can.filters import AcceptanceFilter, FilterBank
from repro.can.frame import CanFrame
from repro.can.identifiers import MessageId, MessageType
from repro.can.phy import BitTiming, max_bus_length_m
from repro.can.redundancy import MediaSet

__all__ = [
    "AcceptanceFilter",
    "BitTiming",
    "CanBus",
    "CanController",
    "CanFrame",
    "CanStandardLayer",
    "ControllerState",
    "DualChannelLayer",
    "FaultInjector",
    "FaultKind",
    "FaultVerdict",
    "FilterBank",
    "MediaSet",
    "MessageId",
    "MessageType",
    "max_bus_length_m",
]
