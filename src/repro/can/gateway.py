"""Store-and-forward gateway bridging CAN bus segments.

One CANELy network does not have to be one physical bus: a gateway with a
port (controller) on each segment receives every frame a segment carries
and re-queues it on the others, so the protocol suite above sees a single
logical broadcast domain spanning segments. This is the standard CAN
interconnection topology (bridges/gateways between bus segments) and what
lets scenarios scale past the electrical limits of one bus.

The model is deliberately faithful to a real CAN gateway:

* **store and forward** — a frame is forwarded only after it completed on
  the source segment, plus a configurable relay ``latency``; the copy
  then contends in normal arbitration on the target segment, so bridging
  adds real, observable delay that surveillance timeouts must cover;
* **identifier filters** — an optional :class:`~repro.can.filters.FilterBank`
  per port limits what crosses the bridge (installed as the port
  controller's acceptance filters, so filtered traffic is not even
  delivered to the gateway under FILTERED_DELIVERY);
* **bounded queues** — at most ``queue_limit`` frames may be outstanding
  (relay-scheduled or queued in the port controller) per target port;
  beyond that the gateway drops, counts the drop and traces it
  (``gw.drop``), exactly how real bridges lose bursts.

Forwarded copies are suppressed from re-forwarding when they echo back on
the target port (a gateway must not reflect its own relays), keyed by
frame identity — so identical remote frames may still cluster with local
transmissions on the target segment, preserving the wired-AND semantics
end to end. A single multi-port gateway bridges any number of segments
loop-free; building rings out of several gateways is the caller's
responsibility to keep acyclic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.frame import CanFrame
from repro.errors import BusError

#: Default node identifier gateways attach under. Outside every CANELy
#: population (configs cap capacity well below it), so a gateway port
#: never collides with a member node and never appears in a view.
GATEWAY_NODE_ID = 255

#: Frame identity for echo suppression: everything the wire carries.
_FrameKey = Tuple[int, bool, bytes]


class GatewayStats:
    """Per-gateway forwarding accounting."""

    __slots__ = ("forwarded", "dropped", "forwarded_by_port", "dropped_by_port")

    def __init__(self) -> None:
        self.forwarded = 0
        self.dropped = 0
        #: target-port index -> frames relayed onto that segment.
        self.forwarded_by_port: Dict[int, int] = {}
        #: target-port index -> frames dropped at that segment's queue.
        self.dropped_by_port: Dict[int, int] = {}


class _Port:
    """One gateway attachment: a controller on one segment."""

    __slots__ = ("index", "bus", "controller", "inflight", "scheduled")

    def __init__(self, index: int, bus: CanBus, controller: CanController) -> None:
        self.index = index
        self.bus = bus
        self.controller = controller
        #: Frames this port relayed that have not echoed back yet.
        self.inflight: Dict[_FrameKey, int] = {}
        #: Relay events scheduled but not yet submitted to the controller.
        self.scheduled = 0


class CanGateway:
    """A store-and-forward bridge between two or more :class:`CanBus`
    segments."""

    def __init__(
        self,
        sim,
        *,
        latency: int = 0,
        queue_limit: int = 64,
        node_id: int = GATEWAY_NODE_ID,
        name: str = "gw",
    ) -> None:
        if latency < 0:
            raise BusError(f"gateway latency must be non-negative: {latency}")
        if queue_limit < 1:
            raise BusError(f"gateway queue limit must be positive: {queue_limit}")
        self._sim = sim
        self.latency = latency
        self.queue_limit = queue_limit
        self.node_id = node_id
        self.name = name
        self._ports: List[_Port] = []
        self.stats = GatewayStats()
        metrics = sim.metrics
        self._inc_forwarded = metrics.counter("gw.forwarded").inc
        self._inc_dropped = metrics.counter("gw.dropped").inc

    # -- topology -----------------------------------------------------------

    @property
    def ports(self) -> List[CanController]:
        """The port controllers, in attach order."""
        return [port.controller for port in self._ports]

    @property
    def segments(self) -> List[CanBus]:
        """The bridged segments, in attach order."""
        return [port.bus for port in self._ports]

    def attach(self, bus: CanBus, filters=None) -> CanController:
        """Open a port on ``bus``; returns the port controller.

        ``filters`` optionally installs a
        :class:`~repro.can.filters.FilterBank` as the port's acceptance
        filters: only passing identifiers cross the bridge *from* this
        segment. Attaching invalidates the segment's delivery plans (via
        :meth:`CanBus.attach`), so FILTERED_DELIVERY immediately routes
        matching traffic to the new port.
        """
        for port in self._ports:
            if port.bus is bus:
                raise BusError(f"gateway {self.name} already bridges this bus")
        controller = CanController(self.node_id)
        bus.attach(controller)
        if filters is not None:
            controller.set_filters(filters)
        port = _Port(len(self._ports), bus, controller)
        controller.on_rx = lambda frame, _port=port: self._on_rx(_port, frame)
        self._ports.append(port)
        return controller

    def detach(self, bus: CanBus) -> None:
        """Close the port on ``bus``.

        Detaching goes through :meth:`CanBus.detach`, which drops the
        segment's cached delivery plans — mandatory, or stale plans would
        keep routing frames to the departed port.
        """
        for i, port in enumerate(self._ports):
            if port.bus is bus:
                bus.detach(port.controller)
                del self._ports[i]
                for later in self._ports[i:]:
                    later.index -= 1
                return
        raise BusError(f"gateway {self.name} has no port on this bus")

    # -- forwarding ---------------------------------------------------------

    def _on_rx(self, port: _Port, frame: CanFrame) -> None:
        key = (frame.identifier, frame.remote, frame.data)
        inflight = port.inflight
        count = inflight.get(key, 0)
        if count:
            # Echo of our own relay completing on this segment: consume
            # it instead of reflecting it back where it came from.
            if count == 1:
                del inflight[key]
            else:
                inflight[key] = count - 1
            return
        for target in self._ports:
            if target is port:
                continue
            outstanding = target.scheduled + target.controller.queue_depth
            if outstanding >= self.queue_limit:
                self.stats.dropped += 1
                by_port = self.stats.dropped_by_port
                by_port[target.index] = by_port.get(target.index, 0) + 1
                self._inc_dropped()
                if self._sim.trace.wants("gw.drop"):
                    self._sim.trace.record(
                        self._sim.now,
                        "gw.drop",
                        gateway=self.name,
                        port=target.index,
                        identifier=frame.identifier,
                    )
                continue
            target.scheduled += 1
            if self.latency:
                self._sim.schedule(
                    self.latency,
                    lambda t=target, f=frame, k=key: self._relay(t, f, k),
                )
            else:
                # Zero-latency relay still defers by one kernel event so
                # the copy contends in the target's next start-of-frame
                # window (the same reason CanBus.kick defers arbitration).
                self._sim.schedule(
                    0, lambda t=target, f=frame, k=key: self._relay(t, f, k)
                )

    def _relay(self, target: _Port, frame: CanFrame, key: _FrameKey) -> None:
        target.scheduled -= 1
        request = target.controller.submit(frame)
        if request is None:
            # Port dead (bus-off) — the bridge to this segment is down.
            return
        target.inflight[key] = target.inflight.get(key, 0) + 1
        self.stats.forwarded += 1
        by_port = self.stats.forwarded_by_port
        by_port[target.index] = by_port.get(target.index, 0) + 1
        self._inc_forwarded()
        if self._sim.trace.wants("gw.forward"):
            self._sim.trace.record(
                self._sim.now,
                "gw.forward",
                gateway=self.name,
                port=target.index,
                identifier=frame.identifier,
            )
