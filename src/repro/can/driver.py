"""The CAN standard layer (paper Fig. 4).

Wraps a :class:`CanController` with the primitive interface the CANELy
micro-protocols are written against:

==================  ==========================================================
primitive           semantics
==================  ==========================================================
``can-data.req``    queue a data frame (only one node may transmit a given
                    data frame at a time)
``can-rtr.req``     queue a remote frame (several nodes may transmit the same
                    remote frame simultaneously — wired-AND clustering)
``can-data.cnf`` /  successful transmission of own frame
``can-rtr.cnf``
``can-data.ind`` /  arrival of a data/remote frame, own transmissions included
``can-rtr.ind``
``can-data.nty``    **extension to the standard**: arrival of a data frame,
                    own transmissions included, *without* delivering the data
                    — the hook that lets normal traffic double as life-signs
``can-abort.req``   abort pending (not in-flight) transmit requests
==================  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.can.controller import CanController
from repro.can.frame import CanFrame, data_frame, remote_frame
from repro.can.identifiers import MessageId, MessageType

DataIndListener = Callable[[MessageId, bytes], None]
RtrIndListener = Callable[[MessageId], None]
CnfListener = Callable[[MessageId], None]
NtyListener = Callable[[MessageId], None]


class CanStandardLayer:
    """Per-node standard layer: primitives + listener dispatch."""

    def __init__(self, controller: CanController) -> None:
        self._controller = controller
        # Listener tables are immutable tuples rebuilt on subscription:
        # dispatch runs once per frame per node, and iterating a tuple
        # needs no defensive copy (a listener registered mid-dispatch
        # takes effect from the next frame, as before).
        self._data_ind: Tuple[Tuple[Optional[MessageType], DataIndListener], ...] = ()
        self._rtr_ind: Tuple[Tuple[Optional[MessageType], RtrIndListener], ...] = ()
        self._data_cnf: Tuple[Tuple[Optional[MessageType], CnfListener], ...] = ()
        self._rtr_cnf: Tuple[Tuple[Optional[MessageType], CnfListener], ...] = ()
        self._data_nty: Tuple[NtyListener, ...] = ()
        # Per-message-type dispatch caches: dispatch runs once per frame
        # per node — the hottest fan-out in the stack — and re-checking
        # every listener's type filter per frame costs more than resolving
        # the eligible listeners once per (table, type). Registration
        # invalidates; the filtered tuples preserve registration order.
        self._data_ind_cache: dict = {}
        self._rtr_ind_cache: dict = {}
        self._data_cnf_cache: dict = {}
        self._rtr_cnf_cache: dict = {}
        # Remote frames are immutable value objects fully determined by
        # their mid, and the CANELy control messages (ELS, failure signs,
        # membership signs) are re-requested every cycle — memoizing them
        # skips a frame construction (and its encode) per request.
        # Bounded: application refs roll, so the mid space is unbounded.
        self._rtr_frames: dict = {}
        # Layers are built after ``bus.attach`` rebinds the controller's
        # tracer, so the alias is stable.
        self._spans = controller._spans
        controller.on_rx = self._handle_rx
        controller.on_tx_success = self._handle_cnf

    @property
    def node_id(self) -> int:
        """Identifier of the node this layer serves."""
        return self._controller.node_id

    @property
    def controller(self) -> CanController:
        """The underlying CAN controller."""
        return self._controller

    # -- request primitives -----------------------------------------------------

    def data_req(self, mid: MessageId, data: bytes = b"") -> None:
        """``can-data.req``: queue a data frame for transmission."""
        self._controller.submit(data_frame(mid, data))

    def rtr_req(self, mid: MessageId) -> None:
        """``can-rtr.req``: queue a remote frame for transmission."""
        frame = self._rtr_frames.get(mid)
        if frame is None:
            if len(self._rtr_frames) >= 256:
                self._rtr_frames.clear()
            frame = self._rtr_frames[mid] = remote_frame(mid)
        self._controller.submit(frame)

    def abort_req(self, mid: MessageId) -> bool:
        """``can-abort.req``: drop pending requests for ``mid``."""
        return self._controller.abort(mid)

    def has_pending(self, mid: MessageId) -> bool:
        """True while a transmit request for ``mid`` is queued locally."""
        return self._controller.has_pending(mid)

    # -- listener registration -----------------------------------------------------

    def _invalidate_delivery_plans(self) -> None:
        # The bus's fused delivery plans bake this layer's resolved
        # indication tuples; any registration that changes what a
        # delivery must upcall has to drop them.
        bus = self._controller._bus
        if bus is not None:
            bus.invalidate_delivery_tables()

    def add_data_ind(
        self, listener: DataIndListener, mtype: Optional[MessageType] = None
    ) -> None:
        """Subscribe to ``can-data.ind`` (optionally one message type only)."""
        self._data_ind += ((mtype, listener),)
        self._data_ind_cache.clear()
        self._invalidate_delivery_plans()

    def add_rtr_ind(
        self, listener: RtrIndListener, mtype: Optional[MessageType] = None
    ) -> None:
        """Subscribe to ``can-rtr.ind``."""
        self._rtr_ind += ((mtype, listener),)
        self._rtr_ind_cache.clear()
        self._invalidate_delivery_plans()

    def add_data_cnf(
        self, listener: CnfListener, mtype: Optional[MessageType] = None
    ) -> None:
        """Subscribe to ``can-data.cnf``."""
        self._data_cnf += ((mtype, listener),)
        self._data_cnf_cache.clear()

    def add_rtr_cnf(
        self, listener: CnfListener, mtype: Optional[MessageType] = None
    ) -> None:
        """Subscribe to ``can-rtr.cnf``."""
        self._rtr_cnf += ((mtype, listener),)
        self._rtr_cnf_cache.clear()

    def add_data_nty(self, listener: NtyListener) -> None:
        """Subscribe to the ``can-data.nty`` extension (all data frames)."""
        self._data_nty += (listener,)
        self._invalidate_delivery_plans()

    # -- controller upcalls -----------------------------------------------------

    @staticmethod
    def _resolve(table: tuple, cache: dict, mtype: MessageType) -> tuple:
        """Fill ``cache[mtype]`` with ``table``'s eligible listeners."""
        eligible = cache[mtype] = tuple(
            listener
            for registered, listener in table
            if registered is None or registered is mtype
        )
        return eligible

    def _handle_rx(self, frame: CanFrame) -> None:
        mid = frame.mid
        if frame.remote:
            listeners = self._rtr_ind_cache.get(mid.mtype)
            if listeners is None:
                listeners = self._resolve(
                    self._rtr_ind, self._rtr_ind_cache, mid.mtype
                )
            for listener in listeners:
                listener(mid)
            return
        # The .nty extension fires before .ind: it carries no data and is
        # what the failure-detection protocol taps for implicit life-signs.
        if self._spans.enabled and self._data_nty:
            spans = self._spans
            # Surveillance-timer restarts triggered by this notification
            # parent to the frame that acted as the life-sign — the root a
            # later detection tree hangs from.
            nty_span = spans.instant(
                "can.nty", "can", node=self._controller.node_id, mid=str(mid)
            )
            spans.push(nty_span)
            try:
                for listener in self._data_nty:
                    listener(mid)
            finally:
                spans.pop()
        else:
            for listener in self._data_nty:
                listener(mid)
        listeners = self._data_ind_cache.get(mid.mtype)
        if listeners is None:
            listeners = self._resolve(
                self._data_ind, self._data_ind_cache, mid.mtype
            )
        for listener in listeners:
            listener(mid, frame.data)

    def _handle_cnf(self, frame: CanFrame) -> None:
        mid = frame.mid
        if frame.remote:
            listeners = self._rtr_cnf_cache.get(mid.mtype)
            if listeners is None:
                listeners = self._resolve(
                    self._rtr_cnf, self._rtr_cnf_cache, mid.mtype
                )
        else:
            listeners = self._data_cnf_cache.get(mid.mtype)
            if listeners is None:
                listeners = self._resolve(
                    self._data_cnf, self._data_cnf_cache, mid.mtype
                )
        for listener in listeners:
            listener(mid)
