"""Hardware acceptance filtering.

Real CAN controllers screen incoming frames with code/mask acceptance
filters so the host CPU only sees identifiers it cares about. The model
supports them for application realism, with one important caveat the paper
implies and this module enforces in documentation: **a CANELy node must
not filter out protocol identifiers** — the failure detector's implicit
life-sign mechanism taps *every* data frame via ``can-data.nty``, and the
membership suite needs FDA/ELS/RHA/JOIN/LEAVE traffic. Filters therefore
apply only to what the application layer sees; see
:meth:`repro.can.driver.CanStandardLayer.add_data_ind`'s ``mtype``
parameter for the software-side equivalent.

A frame passes a filter when ``identifier & mask == code & mask`` — mask
bits set to 1 are "must match", 0 bits are "don't care". A controller with
no filters accepts everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.can.identifiers import IDENTIFIER_BITS, MessageId, MessageType
from repro.errors import ConfigurationError

_ID_MASK = (1 << IDENTIFIER_BITS) - 1


@dataclass(frozen=True)
class AcceptanceFilter:
    """One code/mask acceptance filter.

    Attributes:
        code: the reference identifier bits.
        mask: which bits of the identifier must match ``code`` (1 = must
            match, 0 = don't care).
    """

    code: int
    mask: int

    def __post_init__(self) -> None:
        if not 0 <= self.code <= _ID_MASK:
            raise ConfigurationError(f"filter code out of range: {self.code:#x}")
        if not 0 <= self.mask <= _ID_MASK:
            raise ConfigurationError(f"filter mask out of range: {self.mask:#x}")

    def accepts(self, identifier: int) -> bool:
        """True when ``identifier`` passes this filter."""
        return (identifier & self.mask) == (self.code & self.mask)

    @classmethod
    def for_type(cls, mtype: MessageType) -> "AcceptanceFilter":
        """A filter accepting every identifier of one message type."""
        type_shift = IDENTIFIER_BITS - 5
        return cls(code=int(mtype) << type_shift, mask=0b11111 << type_shift)

    @classmethod
    def for_sender(cls, node_id: int) -> "AcceptanceFilter":
        """A filter accepting every identifier from one node."""
        if not 0 <= node_id <= 0xFF:
            raise ConfigurationError(f"node id out of range: {node_id}")
        return cls(code=node_id, mask=0xFF)

    @classmethod
    def exact(cls, mid: MessageId) -> "AcceptanceFilter":
        """A filter accepting exactly one identifier."""
        return cls(code=mid.encode(), mask=_ID_MASK)


class FilterBank:
    """An ordered set of acceptance filters (accept if *any* matches)."""

    def __init__(self, filters: Iterable[AcceptanceFilter] = ()) -> None:
        self._filters: List[AcceptanceFilter] = list(filters)

    def add(self, acceptance_filter: AcceptanceFilter) -> None:
        """Install one more filter."""
        self._filters.append(acceptance_filter)

    def clear(self) -> None:
        """Remove every filter (back to accept-all)."""
        self._filters.clear()

    def __len__(self) -> int:
        return len(self._filters)

    def accepts(self, identifier: int) -> bool:
        """True when the identifier passes the bank (empty bank = all)."""
        if not self._filters:
            return True
        return any(f.accepts(identifier) for f in self._filters)

    def accepts_mid(self, mid: MessageId) -> bool:
        """Convenience wrapper over :meth:`accepts`."""
        return self.accepts(mid.encode())
