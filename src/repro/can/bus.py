"""The CAN bus: arbitration, clustering, transmission and fault resolution.

The bus is a single broadcast channel. Whenever it goes idle, every attached
controller offers its highest-priority pending request; the frame with the
lowest identifier wins (carrier sense multi-access with deterministic
collision resolution). Requests for *bit-identical* frames — in particular
identical remote frames, the CANELy control-message encapsulation — are
transmitted as **one** physical frame thanks to the wired-AND nature of the
medium; every co-sender sees its own request confirmed. This clustering is
what lets the FDA and membership protocols pay one frame for n logical
transmissions.

The fault injector decides the outcome of every physical transmission:
error-free, consistent omission (globalized error frame, automatic
retransmission) or inconsistent omission (a subset of recipients accepts
the frame; everyone else sees the error and the senders retransmit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.can.bitstream import (
    ERROR_FRAME_BITS,
    INTERFRAME_BITS,
    SUSPEND_TRANSMISSION_BITS,
)
from repro.can.controller import (
    BUS_OFF_THRESHOLD,
    CanController,
    ControllerState,
    TxRequest,
)
from repro.can.errormodel import (
    OK_VERDICT,
    FaultInjector,
    FaultKind,
    FaultVerdict,
)
from repro.can.frame import CanFrame
from repro.can.phy import BitTiming
from repro.errors import BusError
from repro.sim.kernel import Simulator

#: When True (the default), delivery resolves recipients through a cached
#: per-identifier dispatch plan instead of offering every frame to every
#: alive controller and re-checking its filter bank inline. The plan holds
#: one entry per accepting controller (so non-accepting nodes cost nothing
#: per delivery) and, for controllers driven by the standard layer, bakes
#: the listener tuples the layer would resolve — delivery then upcalls the
#: listeners directly instead of walking ``deliver`` -> ``on_rx`` ->
#: ``_handle_rx`` per recipient. Observable behaviour is identical to the
#: broadcast path (same deliveries, same REC bookkeeping, same trace
#: records, in the same order); with no filters installed the accepting
#: set is simply "every controller" and the two paths are bit-identical.
#: Read per delivery, so tests can toggle it on a live module.
FILTERED_DELIVERY = True

#: Delivery plans are dropped wholesale past this many distinct
#: identifiers (application refs roll, so the identifier space is not
#: bounded by the node count).
_ACCEPT_TABLE_LIMIT = 4096


@dataclass
class BusStats:
    """Aggregate bus accounting, all in bit-times.

    ``busy_bits`` counts every bit-time the bus was not idle (frames,
    interframe spaces, error frames, suspend penalties); ``bits_by_type``
    attributes frame + overhead bits to the message type that caused them,
    which is what the Fig. 10 bandwidth benchmark reads out.
    ``inaccessibility_bits`` counts injected inaccessibility periods —
    windows where the network refrains from providing service while
    remaining operational ([22]).
    """

    physical_frames: int = 0
    clustered_requests: int = 0
    error_frames: int = 0
    busy_bits: int = 0
    inaccessibility_bits: int = 0
    bus_off_recoveries: int = 0
    bits_by_type: Dict[str, int] = field(default_factory=dict)

    def charge(self, type_name: str, bits: int) -> None:
        self.busy_bits += bits
        self.bits_by_type[type_name] = self.bits_by_type.get(type_name, 0) + bits


@dataclass
class _Transmission:
    frame: CanFrame
    senders: List[CanController]
    requests: List[TxRequest]
    started_at: int
    #: Exact stuffed frame length (no interframe), computed once when
    #: arbitration resolves and reused by the completion path — each
    #: physical frame is encoded at most once.
    wire_bits: int = 0
    #: Causal span covering the wire occupancy of this physical frame
    #: (``None`` while span tracing is disabled).
    span_id: Optional[int] = None


class CanBus:
    """A single-channel CAN broadcast bus."""

    def __init__(
        self,
        sim: Simulator,
        timing: Optional[BitTiming] = None,
        injector: Optional[FaultInjector] = None,
        clustering: bool = True,
        bus_off_recovery: bool = False,
    ) -> None:
        self._sim = sim
        self.timing = timing if timing is not None else BitTiming()
        self.injector = injector if injector is not None else FaultInjector()
        self.clustering = clustering
        #: When True, a controller reaching bus-off rejoins after the ISO
        #: 11898 recovery sequence (128 x 11 recessive bits) instead of
        #: staying silent. Off by default: permanent bus-off is what
        #: enforces the system model's weak-fail-silent assumption.
        self.bus_off_recovery = bus_off_recovery
        self._controllers: Dict[int, CanController] = {}
        #: identifier -> delivery plan: one ``(controller, baked_on_rx,
        #: first_listeners, second_listeners)`` entry per controller whose
        #: acceptance filters pass it, in attach order (the delivery order
        #: of the broadcast path). Data and remote frames plan separately —
        #: the RTR bit is not part of the identifier, but it selects a
        #: different upcall. Aliveness is *not* baked in — it is re-checked
        #: inline at every delivery, so crashes and bus-off need no
        #: invalidation; attach, filter changes and listener registration
        #: do (:meth:`invalidate_delivery_tables`).
        self._plan_data: Dict[int, tuple] = {}
        self._plan_rtr: Dict[int, tuple] = {}
        #: node id -> controller, for controllers that *may* hold a
        #: pending transmit request. A conservative superset, maintained
        #: at the two points requests enter a queue (submit and the
        #: error-retransmission requeue) and pruned lazily when
        #: arbitration finds an empty queue — so arbitration scans the
        #: handful of nodes with traffic instead of the whole membership.
        self._tx_pending: Dict[int, CanController] = {}
        self._busy = False
        self._arbitration_pending = False
        self._inaccessible_until = 0
        self._current: Optional[_Transmission] = None
        self._tx_index = 0
        self.stats = BusStats()
        #: The recorder, aliased once — completion guards every record call
        #: on ``wants(...)`` so disabled traces skip payload construction.
        self._trace = sim.trace
        #: The causal span tracer, aliased once for the same reason; every
        #: span site below guards on ``self._spans.enabled``.
        self._spans = sim.spans
        # Bound metric methods resolved once: the completion path runs per
        # frame, and ``registry.counter(...)`` plus attribute dispatch per
        # frame is measurable at campaign scale.
        metrics = sim.metrics
        self._m_frames_inc = metrics.counter("bus.frames").inc
        self._m_errors_inc = metrics.counter("bus.error_frames").inc
        self._m_clustered_inc = metrics.counter("bus.clustered_requests").inc
        self._m_busy_bits_inc = metrics.counter("bus.busy_bits").inc
        self._m_utilization_set = metrics.gauge("bus.utilization").set

    # -- topology -----------------------------------------------------------

    def attach(self, controller: CanController) -> None:
        """Connect ``controller`` to the bus."""
        if controller.node_id in self._controllers:
            raise BusError(f"node id {controller.node_id} already attached")
        self._controllers[controller.node_id] = controller
        controller._bus = self
        controller._spans = self._spans
        self.invalidate_delivery_tables()

    def detach(self, controller: CanController) -> None:
        """Disconnect ``controller`` from the bus.

        The inverse of :meth:`attach`, used by gateways whose ports come
        and go. The cached delivery plans bake the accepting-controller
        set per identifier, so a detach *must* drop them — otherwise a
        stale plan keeps delivering to (or skipping) the departed port
        and FILTERED_DELIVERY diverges from the broadcast reference.
        """
        attached = self._controllers.get(controller.node_id)
        if attached is not controller:
            raise BusError(
                f"node id {controller.node_id} is not attached to this bus"
            )
        del self._controllers[controller.node_id]
        self._tx_pending.pop(controller.node_id, None)
        controller._bus = None
        self.invalidate_delivery_tables()

    def invalidate_delivery_tables(self) -> None:
        """Drop the cached per-identifier delivery plans.

        Called whenever the accepting set for any identifier — or the
        upcall a delivery must make — may have changed: a controller
        attached, a filter bank was installed, replaced or cleared, or a
        standard layer gained a listener. Plans rebuild lazily on the
        next delivery.
        """
        self._plan_data.clear()
        self._plan_rtr.clear()

    def controller(self, node_id: int) -> CanController:
        """The controller attached as ``node_id``."""
        return self._controllers[node_id]

    @property
    def node_ids(self) -> List[int]:
        """All attached node ids, sorted."""
        return sorted(self._controllers)

    def alive_controllers(self) -> List[CanController]:
        """Controllers currently participating in bus traffic."""
        # ``alive`` inlined (one property call per controller per frame
        # adds up at campaign scale).
        return [
            c
            for c in self._controllers.values()
            if not c.crashed and c.tec <= BUS_OFF_THRESHOLD
        ]

    # -- scheduling ------------------------------------------------------------

    def kick(self) -> None:
        """A controller queued a request: start arbitration if idle.

        Arbitration is deferred by a zero-delay event so every request
        submitted at the same instant (e.g. the echo requests an FDA
        delivery triggers at all recipients) contends in the same start-of-
        frame window — which is what lets identical remote frames cluster.
        """
        if self._busy or self._arbitration_pending:
            return
        self._arbitration_pending = True
        self._sim.schedule(0, self._arbitrate)

    def _arbitrate(self) -> None:
        self._arbitration_pending = False
        if self._busy:
            return
        if self._sim.now < self._inaccessible_until:
            # The network is in an inaccessibility window: service resumes
            # when it closes.
            self._arbitration_pending = True
            self._sim.schedule_at(self._inaccessible_until, self._arbitrate)
            return
        self._start_next()

    def inject_inaccessibility(self, bits: int) -> None:
        """Open an inaccessibility window of ``bits`` bit-times from now.

        Models the aftermath of error signalling ([22]): the network is
        operational but refrains from starting new transmissions. An
        ongoing transmission completes normally (its fate is governed by
        the fault injector); queued requests wait the window out.
        """
        until = self._sim.now + self.timing.bits_to_ticks(bits)
        if until <= self._inaccessible_until:
            return
        self._inaccessible_until = until
        self.stats.inaccessibility_bits += bits
        self._sim.trace.record(
            self._sim.now, "bus.inaccessible", bits=bits, until=until
        )
        self.kick()

    def _start_next(self) -> None:
        # Offers carry their owning controller so the take step below needs
        # no ownership scan (the seed's ``_owner_of`` walked every
        # controller per taken request). Only the pending-transmitter set
        # is polled — the arbitration outcome cannot depend on the scan
        # order because contended offers are totally ordered by
        # ``priority_key`` below.
        pending = self._tx_pending
        offers = []
        stale = None
        for controller in pending.values():
            request = controller.head_request()
            if request is not None:
                offers.append((request, controller))
            elif not controller._queue:
                # Empty queue: nothing to offer until the next submit
                # re-registers the node. (A bus-off or crashed node with
                # queued requests stays registered — it may recover.)
                if stale is None:
                    stale = [controller.node_id]
                else:
                    stale.append(controller.node_id)
        if stale is not None:
            for node_id in stale:
                del pending[node_id]
        if not offers:
            return
        if len(offers) == 1:
            # Uncontended arbitration — the common case on a lightly
            # loaded bus: no sort, no clustering scan.
            winner = offers[0][0]
            taken = offers
        else:
            offers.sort(key=lambda pair: pair[0].priority_key)
            winner = offers[0][0]

            # Wired-AND clustering: bit-identical frames transmit as one.
            taken = [offers[0]]
            for pair in offers[1:]:
                other = pair[0]
                same_id = other.frame.identifier == winner.frame.identifier
                if not same_id:
                    continue
                if other.frame == winner.frame:
                    if self.clustering:
                        taken.append(pair)
                    continue
                if not other.frame.remote and not winner.frame.remote:
                    raise BusError(
                        f"two different data frames contend with identifier "
                        f"{winner.frame.identifier:#x}: {winner.frame!r} vs "
                        f"{other.frame!r}"
                    )
                # Same identifier, one data / one remote: the data frame's
                # dominant RTR bit wins; the remote frame just loses
                # arbitration.

        requests = []
        senders = []
        for request, owner in taken:
            owner.take(request)
            requests.append(request)
            senders.append(owner)

        frame_bits = winner.frame.wire_bits(with_interframe=False)
        self._busy = True
        self._current = _Transmission(
            frame=winner.frame,
            senders=senders,
            requests=requests,
            started_at=self._sim.now,
            wire_bits=frame_bits,
        )
        if self._spans.enabled:
            # Frames that offered but were not taken lost this arbitration
            # round; their queue spans get one "arb-loss" point event each.
            taken_ids = {id(request) for request in requests}
            for offer, _ in offers:
                if id(offer) not in taken_ids:
                    self._spans.event(offer.span_id, "arb-loss")
            self._current.span_id = self._spans.begin(
                "can.tx",
                "bus",
                node=senders[0].node_id,
                parent=winner.span_id,
                mid=str(winner.frame.mid),
                remote=winner.frame.remote,
                cluster=len(requests),
            )
        self.stats.clustered_requests += len(requests) - 1
        if len(requests) > 1:
            self._m_clustered_inc(len(requests) - 1)
        duration = self.timing.bits_to_ticks(frame_bits)
        self._sim.schedule(duration, self._complete)

    def _owner_of(self, request: TxRequest) -> CanController:
        for controller in self._controllers.values():
            if controller.head_request() is request:
                return controller
        raise BusError(f"no controller owns request {request.frame!r}")

    # -- completion --------------------------------------------------------------

    def _complete(self) -> None:
        tx = self._current
        assert tx is not None
        self._current = None
        self._tx_index += 1
        self.stats.physical_frames += 1
        self._m_frames_inc()

        alive = self.alive_controllers()
        sender_ids = [c.node_id for c in tx.senders]
        if self.injector.armed:
            receiver_ids = [c.node_id for c in alive]
            verdict = self.injector.verdict(
                tx.frame, sender_ids, receiver_ids, self._tx_index - 1
            )
        else:
            # Fault-free bus: skip the receiver-id assembly and the
            # verdict scan — per frame, and O(membership) of it.
            verdict = OK_VERDICT
        if tx.span_id is not None:
            self._spans.end(tx.span_id, kind=verdict.kind.value)

        frame_bits = tx.wire_bits
        overhead_bits = INTERFRAME_BITS
        type_name = tx.frame.mid.mtype.name

        if verdict.kind is FaultKind.NONE:
            self._deliver_all(tx, alive)
        else:
            self.stats.error_frames += 1
            self._m_errors_inc()
            overhead_bits += ERROR_FRAME_BITS
            if any(
                s.state is ControllerState.ERROR_PASSIVE and s.alive
                for s in tx.senders
            ):
                overhead_bits += SUSPEND_TRANSMISSION_BITS
            self._resolve_fault(tx, alive, verdict)

        self.stats.charge(type_name, frame_bits + overhead_bits)
        self._m_busy_bits_inc(frame_bits + overhead_bits)
        self._m_utilization_set(self.utilization())
        if self._trace.wants("bus.tx"):
            self._trace.record(
                self._sim.now,
                "bus.tx",
                node=sender_ids[0] if sender_ids else -1,
                mid=tx.frame.mid,
                remote=tx.frame.remote,
                senders=tuple(sender_ids),
                bits=frame_bits + overhead_bits,
                kind=verdict.kind.value,
                attempt=tx.requests[0].attempts,
            )

        # Bus stays busy through the interframe space / error frame.
        self._sim.schedule(
            self.timing.bits_to_ticks(overhead_bits), self._go_idle
        )

    def _deliver_all(self, tx: _Transmission, alive: List[CanController]) -> None:
        for sender, request in zip(tx.senders, tx.requests):
            # ``alive`` inlined, as everywhere on the completion path.
            if not sender.crashed and sender.tec <= BUS_OFF_THRESHOLD:
                sender.finish_success(request)
        # Hoisted out of the per-recipient loop: delivery is the hottest
        # trace site (one record per alive controller per frame). The
        # span-disabled loop is kept branch-free per recipient for the
        # same reason.
        record_delivery = self._trace.wants("bus.deliver")
        if tx.span_id is None:
            frame = tx.frame
            ident = frame.identifier
            mid = frame.mid
            remote = frame.remote
            now = self._sim.now
            trace_record = self._trace.record
            if FILTERED_DELIVERY:
                # Plan path: the filter match and the upcall resolution
                # were paid once, when this identifier's plan was built.
                # Entries whose controller is driven by the standard layer
                # carry its listener tuples baked in, so the loop below
                # upcalls them directly — transcribing ``deliver`` (the
                # REC heal) and ``_handle_rx`` (nty before ind; rtr
                # listeners for remote frames) without the three call
                # frames per recipient. The baked handler is re-validated
                # by identity at every delivery; anything unexpected —
                # a rebound ``on_rx``, a facade, span tracing switched on
                # mid-flight — falls back to the generic ``deliver``.
                plans = self._plan_rtr if remote else self._plan_data
                plan = plans.get(ident)
                if plan is None:
                    plan = self._build_plan(frame, plans)
                data = frame.data
                fused_ok = not self._spans.enabled
                if record_delivery:
                    payload = {"mid": mid, "remote": remote}
                    record_row = self._trace.record_row
                for controller, baked_rx, first, second in plan:
                    # .ind includes own transmissions (paper Fig. 4). The
                    # aliveness re-check guards against a crash triggered
                    # by an earlier recipient's upcall; inlined like above.
                    if (
                        controller.crashed
                        or controller.tec > BUS_OFF_THRESHOLD
                    ):
                        continue
                    if (
                        fused_ok
                        and first is not None
                        and controller.on_rx is baked_rx
                    ):
                        if controller.rec:
                            controller.rec -= 1
                        for listener in first:
                            listener(mid)
                        for listener in second:
                            listener(mid, data)
                    else:
                        controller.deliver(frame)
                    if record_delivery:
                        record_row(
                            now, "bus.deliver", controller.node_id, payload
                        )
                return
            for controller in alive:
                # Broadcast path: same semantics, with the filter bank
                # consulted per delivery instead of per identifier.
                if (
                    not controller.crashed
                    and controller.tec <= BUS_OFF_THRESHOLD
                    and (
                        (bank := controller._filters) is None
                        or bank.accepts(ident)
                    )
                ):
                    controller.deliver(frame)
                    if record_delivery:
                        trace_record(
                            now,
                            "bus.deliver",
                            node=controller.node_id,
                            mid=mid,
                            remote=remote,
                        )
            return
        spans = self._spans
        ident = tx.frame.identifier
        for controller in alive:
            if controller.alive and controller.accepts(ident):
                rx_span = spans.begin(
                    "can.rx",
                    "bus",
                    node=controller.node_id,
                    parent=tx.span_id,
                )
                spans.push(rx_span)
                try:
                    controller.deliver(tx.frame)
                finally:
                    spans.pop()
                    spans.end(rx_span)
                if record_delivery:
                    self._trace.record(
                        self._sim.now,
                        "bus.deliver",
                        node=controller.node_id,
                        mid=tx.frame.mid,
                        remote=tx.frame.remote,
                    )

    def _build_plan(self, frame: CanFrame, plans: Dict[int, tuple]) -> tuple:
        """Compile the delivery plan for ``frame``'s identifier.

        One ``(controller, baked_on_rx, first, second)`` entry per
        accepting controller, in attach order. When the controller's
        ``on_rx`` is the standard layer's ``_handle_rx``, the entry bakes
        the listener tuples that upcall would resolve — ``first`` is the
        nty tuple (data frames) or the rtr-ind tuple (remote frames),
        ``second`` the data-ind tuple (empty for remote) — and the
        delivery loop dispatches straight to them. Any other receiver
        (no handler, a custom handler, a redundancy facade) keeps
        ``first is None`` and the generic ``controller.deliver``
        fallback. Listener registration, filter changes and attach all
        funnel through :meth:`invalidate_delivery_tables`.
        """
        # Deferred import: the driver imports the controller module, and
        # the bus is imported by layers below it — binding at build time
        # keeps the module graph acyclic.
        from repro.can.driver import CanStandardLayer

        handle_rx = CanStandardLayer._handle_rx
        resolve = CanStandardLayer._resolve
        mtype = frame.mid.mtype
        remote = frame.remote
        ident = frame.identifier
        entries = []
        for controller in self._controllers.values():
            if not controller.accepts(ident):
                continue
            handler = controller.on_rx
            first = second = None
            if (
                handler is not None
                and getattr(handler, "__func__", None) is handle_rx
            ):
                layer = handler.__self__
                if remote:
                    first = layer._rtr_ind_cache.get(mtype)
                    if first is None:
                        first = resolve(
                            layer._rtr_ind, layer._rtr_ind_cache, mtype
                        )
                    second = ()
                else:
                    first = layer._data_nty
                    second = layer._data_ind_cache.get(mtype)
                    if second is None:
                        second = resolve(
                            layer._data_ind, layer._data_ind_cache, mtype
                        )
            entries.append((controller, handler, first, second))
        if len(plans) >= _ACCEPT_TABLE_LIMIT:
            plans.clear()
        plan = plans[ident] = tuple(entries)
        return plan

    def _resolve_fault(
        self,
        tx: _Transmission,
        alive: List[CanController],
        verdict: FaultVerdict,
    ) -> None:
        sender_set = {c.node_id for c in tx.senders}
        record_delivery = self._trace.wants("bus.deliver")
        spans = self._spans if tx.span_id is not None else None
        ident = tx.frame.identifier
        for controller in alive:
            if controller.node_id in sender_set:
                continue
            if controller.node_id in verdict.accepting:
                if not controller.accepts(ident):
                    # Error signalling happens at the bit level, *before*
                    # acceptance filtering: this node saw a valid frame
                    # (no REC bump), its filter just dropped it.
                    continue
                if spans is not None:
                    rx_span = spans.begin(
                        "can.rx",
                        "bus",
                        node=controller.node_id,
                        parent=tx.span_id,
                        inconsistent=True,
                    )
                    spans.push(rx_span)
                    try:
                        controller.deliver(tx.frame)
                    finally:
                        spans.pop()
                        spans.end(rx_span)
                else:
                    controller.deliver(tx.frame)
                if record_delivery:
                    self._trace.record(
                        self._sim.now,
                        "bus.deliver",
                        node=controller.node_id,
                        mid=tx.frame.mid,
                        remote=tx.frame.remote,
                        inconsistent=True,
                    )
            else:
                controller.rx_error()
        # Senders see the error and schedule the automatic retransmission.
        for sender, request in zip(tx.senders, tx.requests):
            sender.finish_error(request)
            if (
                self.bus_off_recovery
                and not sender.crashed
                and sender.state is ControllerState.BUS_OFF
            ):
                self._schedule_bus_off_recovery(sender)
        if verdict.crash_sender:
            # The paper's inconsistent-omission scenario: the sender dies
            # before the retransmission goes out.
            for sender in tx.senders:
                sender.crash()
                if spans is not None:
                    spans.instant(
                        "node.crash",
                        "node",
                        node=sender.node_id,
                        parent=tx.span_id,
                    )
                self._sim.trace.record(
                    self._sim.now, "node.crash", node=sender.node_id
                )

    def _go_idle(self) -> None:
        self._busy = False
        self.kick()

    def _schedule_bus_off_recovery(self, controller: CanController) -> None:
        recovery_ticks = self.timing.bits_to_ticks(128 * 11)

        def recover() -> None:
            if controller.crashed:
                return
            controller.tec = 0
            controller.rec = 0
            self.stats.bus_off_recoveries += 1
            self._sim.trace.record(
                self._sim.now, "node.bus_off_recovery", node=controller.node_id
            )
            self.kick()

        self._sim.schedule(recovery_ticks, recover)

    # -- introspection --------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a frame (or its interframe space) occupies the bus."""
        return self._busy

    @property
    def quiescent(self) -> bool:
        """True when the bus has no traffic it could start at this instant.

        Idle wire, no pending arbitration event, no open inaccessibility
        window, and no controller holding a transmit request: any future
        bus activity can only originate from an event already in the
        simulator's queue (a timer expiry, a scheduled workload send).
        This is the guard the analytic idle-skip uses before leaping the
        clock to the next scheduled event.
        """
        if self._busy or self._arbitration_pending:
            return False
        if self._sim.now < self._inaccessible_until:
            return False
        return all(
            controller.head_request() is None
            for controller in self._controllers.values()
        )

    def utilization(self, window_ticks: Optional[int] = None) -> float:
        """Fraction of bus capacity consumed so far (or over ``window_ticks``)."""
        elapsed = window_ticks if window_ticks is not None else self._sim.now
        if elapsed <= 0:
            return 0.0
        return self.timing.bits_to_ticks(self.stats.busy_bits) / elapsed
