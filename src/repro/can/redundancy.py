"""Media redundancy — the "Columbus' egg" scheme of Rufino et al. (FTCS-29).

The CANELy system model assumes the channel never partitions permanently.
The paper enforces that assumption with an extremely simple media-redundancy
scheme: the bus runs over two (or more) physical media carrying the *same*
bits; a media selection unit in front of each controller couples them so the
node keeps operating as long as at least one medium that it can reach is
healthy.

Because the media carry identical traffic, the scheme needs no protocol
changes at all — which is exactly the paper's point. We model it as a
:class:`MediaSet` that tracks per-medium health and answers the only
question the bus needs: *is the channel available between this pair of
nodes?* A partition only occurs when every medium has failed, which the
fault model rules out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import ConfigurationError


@dataclass
class Medium:
    """One physical medium (a twisted-pair cable)."""

    medium_id: int
    healthy: bool = True
    #: Nodes whose tap on this medium has failed (receiver-side fault).
    faulty_taps: Set[int] = field(default_factory=set)

    def reaches(self, node_id: int) -> bool:
        """True when this medium can deliver traffic to ``node_id``."""
        return self.healthy and node_id not in self.faulty_taps


class MediaSet:
    """The replicated media of one CANELy channel."""

    def __init__(self, media_count: int = 2) -> None:
        if media_count < 1:
            raise ConfigurationError("at least one medium is required")
        self._media: List[Medium] = [Medium(i) for i in range(media_count)]

    @property
    def media(self) -> List[Medium]:
        """All media, failed ones included."""
        return list(self._media)

    @property
    def media_count(self) -> int:
        return len(self._media)

    def fail_medium(self, medium_id: int) -> None:
        """Hard failure of an entire medium (e.g. cable cut)."""
        self._medium(medium_id).healthy = False

    def restore_medium(self, medium_id: int) -> None:
        """Repair a medium."""
        self._medium(medium_id).healthy = True

    def fail_tap(self, medium_id: int, node_id: int) -> None:
        """Fail one node's tap on one medium."""
        self._medium(medium_id).faulty_taps.add(node_id)

    def restore_tap(self, medium_id: int, node_id: int) -> None:
        """Repair one node's tap."""
        self._medium(medium_id).faulty_taps.discard(node_id)

    def _medium(self, medium_id: int) -> Medium:
        for medium in self._media:
            if medium.medium_id == medium_id:
                return medium
        raise ConfigurationError(f"no such medium: {medium_id}")

    # -- queries -----------------------------------------------------------------

    def channel_available(self, node_id: int) -> bool:
        """True while at least one medium reaches ``node_id``."""
        return any(medium.reaches(node_id) for medium in self._media)

    def partitioned(self, node_ids) -> bool:
        """True if some node is cut off from the channel entirely.

        The system model forbids this (no permanent channel failure); tests
        assert that single-medium failures never partition a dual-media
        channel.
        """
        return any(not self.channel_available(node_id) for node_id in node_ids)

    def healthy_media_count(self) -> int:
        """Number of fully healthy media."""
        return sum(1 for medium in self._media if medium.healthy)
