"""Network fault injection.

The system model (paper Section 4) constrains network components to be
*weak-fail-silent* with bounded omission degree: in a reference interval at
most ``k`` transmissions suffer omissions (MCAN3) of which at most ``j`` are
*inconsistent* (LCAN4) — the last-two-bits scenario where a subset of the
recipients accepts the frame while the remaining nodes (and the sender) see
an error. The :class:`FaultInjector` produces exactly these failure modes,
either scripted (deterministic schedules keyed on the global transmission
index or on frame predicates) or stochastic (seeded per-transmission draws),
and it enforces/reports the k and j bounds so tests can assert the model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.can.frame import CanFrame
from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """Outcome classes for one physical frame transmission."""

    #: Error-free transmission: every correct node accepts the frame.
    NONE = "none"
    #: Error detected by all nodes: nobody accepts, sender retransmits.
    CONSISTENT_OMISSION = "consistent"
    #: Fault in the last two bits at a subset of nodes: the subset accepts
    #: the frame, everyone else (sender included) sees an error and the
    #: sender retransmits — producing duplicates at the subset, or an
    #: inconsistent omission if the sender crashes first.
    INCONSISTENT_OMISSION = "inconsistent"


@dataclass(frozen=True)
class FaultVerdict:
    """Verdict for one transmission attempt.

    Attributes:
        kind: the outcome class.
        accepting: node ids that accept the frame despite the fault (only
            meaningful for inconsistent omissions).
        crash_sender: when True the bus crashes the sending node(s)
            immediately after this attempt, *before* the automatic
            retransmission — the paper's "sender fails before retransmission"
            inconsistent-omission scenario.
    """

    kind: FaultKind
    accepting: FrozenSet[int] = frozenset()
    crash_sender: bool = False


OK_VERDICT = FaultVerdict(FaultKind.NONE)

FramePredicate = Callable[[CanFrame], bool]


@dataclass
class _ScheduledFault:
    verdict: FaultVerdict
    tx_index: Optional[int] = None
    predicate: Optional[FramePredicate] = None
    remaining: int = 1

    def matches(self, frame: CanFrame, tx_index: int) -> bool:
        if self.remaining <= 0:
            return False
        if self.tx_index is not None and self.tx_index != tx_index:
            return False
        if self.predicate is not None and not self.predicate(frame):
            return False
        return self.tx_index is not None or self.predicate is not None


class FaultInjector:
    """Produces fault verdicts for bus transmissions.

    Faults come from two sources, checked in order:

    1. **Scripted faults** registered with :meth:`fault_on_transmission` or
       :meth:`fault_on_frame` — deterministic, used by unit/integration
       tests and failure-injection benchmarks.
    2. **Stochastic faults** drawn from a seeded RNG with configured
       per-transmission probabilities — used by soak tests and benchmarks.

    The injector also tracks how many omissions (total and inconsistent)
    it has produced, so tests can assert the MCAN3/LCAN4 degree bounds.
    """

    def __init__(
        self,
        rng=None,
        consistent_probability: float = 0.0,
        inconsistent_probability: float = 0.0,
        omission_degree: Optional[int] = None,
        inconsistent_degree: Optional[int] = None,
    ) -> None:
        if consistent_probability < 0 or inconsistent_probability < 0:
            raise ConfigurationError("fault probabilities must be non-negative")
        if consistent_probability + inconsistent_probability > 1:
            raise ConfigurationError("fault probabilities must sum to at most 1")
        if (consistent_probability or inconsistent_probability) and rng is None:
            raise ConfigurationError("stochastic faults require an rng")
        self._rng = rng
        self._p_consistent = consistent_probability
        self._p_inconsistent = inconsistent_probability
        self._omission_degree = omission_degree
        self._inconsistent_degree = inconsistent_degree
        self._scheduled: List[_ScheduledFault] = []
        self.omissions_injected = 0
        self.inconsistent_injected = 0

    # -- scripting ------------------------------------------------------------

    def fault_on_transmission(
        self,
        tx_index: int,
        kind: FaultKind,
        accepting: Sequence[int] = (),
        crash_sender: bool = False,
    ) -> None:
        """Schedule a fault on the ``tx_index``-th physical transmission."""
        self._scheduled.append(
            _ScheduledFault(
                verdict=FaultVerdict(kind, frozenset(accepting), crash_sender),
                tx_index=tx_index,
            )
        )

    def fault_on_frame(
        self,
        predicate: FramePredicate,
        kind: FaultKind,
        accepting: Sequence[int] = (),
        crash_sender: bool = False,
        count: int = 1,
    ) -> None:
        """Schedule a fault on the next ``count`` frames matching ``predicate``."""
        self._scheduled.append(
            _ScheduledFault(
                verdict=FaultVerdict(kind, frozenset(accepting), crash_sender),
                predicate=predicate,
                remaining=count,
            )
        )

    def configure_stochastic(
        self,
        consistent_probability: Optional[float] = None,
        inconsistent_probability: Optional[float] = None,
        rng=None,
    ) -> None:
        """Re-arm the stochastic fault rates mid-run.

        A bounded noise window — the bus-off-storm catalog scenario
        raises the rates for an interval and restores them after —
        cannot be expressed by the constructor alone. ``None`` keeps the
        current value; validation matches the constructor. Counters and
        scripted faults are untouched.
        """
        if rng is not None:
            self._rng = rng
        consistent = (
            self._p_consistent
            if consistent_probability is None
            else consistent_probability
        )
        inconsistent = (
            self._p_inconsistent
            if inconsistent_probability is None
            else inconsistent_probability
        )
        if consistent < 0 or inconsistent < 0:
            raise ConfigurationError("fault probabilities must be non-negative")
        if consistent + inconsistent > 1:
            raise ConfigurationError(
                "fault probabilities must sum to at most 1"
            )
        if (consistent or inconsistent) and self._rng is None:
            raise ConfigurationError("stochastic faults require an rng")
        self._p_consistent = consistent
        self._p_inconsistent = inconsistent

    # -- verdict --------------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while any fault could still be injected.

        The completion hot path consults this before assembling the
        receiver list a verdict would need — on a fault-free bus (the
        common case outside fault campaigns) the whole verdict machinery
        is skipped per frame.
        """
        if self._scheduled:
            return True
        return self._rng is not None and bool(
            self._p_consistent or self._p_inconsistent
        )

    def verdict(
        self,
        frame: CanFrame,
        senders: Sequence[int],
        receivers: Sequence[int],
        tx_index: int,
    ) -> FaultVerdict:
        """Decide the outcome of one physical transmission attempt."""
        for position, fault in enumerate(self._scheduled):
            if fault.matches(frame, tx_index):
                fault.remaining -= 1
                if fault.remaining <= 0:
                    # Evict spent entries so long campaigns do not re-scan
                    # every exhausted fault on each transmission.
                    del self._scheduled[position]
                return self._account(fault.verdict)
        if self._rng is not None and (self._p_consistent or self._p_inconsistent):
            draw = self._rng.random()
            if draw < self._p_inconsistent:
                others = [node for node in receivers if node not in senders]
                if others:
                    size = self._rng.randint(1, len(others))
                    subset = frozenset(self._rng.sample(others, size))
                    return self._account(
                        FaultVerdict(FaultKind.INCONSISTENT_OMISSION, subset)
                    )
                # No receiver other than the sender(s) can accept the frame,
                # so the draw degrades to a consistent omission: everyone
                # sees the error. Returning OK here would silently inject
                # below the configured fault rate.
                return self._account(FaultVerdict(FaultKind.CONSISTENT_OMISSION))
            elif draw < self._p_inconsistent + self._p_consistent:
                return self._account(FaultVerdict(FaultKind.CONSISTENT_OMISSION))
        return OK_VERDICT

    def _account(self, verdict: FaultVerdict) -> FaultVerdict:
        if verdict.kind is FaultKind.NONE:
            return verdict
        self.omissions_injected += 1
        if verdict.kind is FaultKind.INCONSISTENT_OMISSION:
            self.inconsistent_injected += 1
        if (
            self._omission_degree is not None
            and self.omissions_injected > self._omission_degree
        ):
            raise ConfigurationError(
                f"fault schedule exceeds the omission degree bound "
                f"k={self._omission_degree} (MCAN3)"
            )
        if (
            self._inconsistent_degree is not None
            and self.inconsistent_injected > self._inconsistent_degree
        ):
            raise ConfigurationError(
                f"fault schedule exceeds the inconsistent omission degree "
                f"bound j={self._inconsistent_degree} (LCAN4)"
            )
        return verdict
