"""The CAN controller model.

Each node attaches to the bus through a :class:`CanController` that owns a
priority-ordered transmit queue, the standard transmit/receive error
counters (TEC/REC) and the fault-confinement state machine
(error-active -> error-passive -> bus-off). Bus-off enforces the
weak-fail-silent assumption of the system model: a controller that exceeds
its omission degree stops participating.

Frames that lose arbitration or are destroyed by errors are automatically
scheduled for retransmission (ISO 11898), unless aborted or the node crashed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.can.frame import CanFrame
from repro.can.identifiers import MessageId
from repro.errors import BusError
from repro.obs.spans import NULL_TRACER

#: TEC/REC threshold above which the controller goes error-passive.
ERROR_PASSIVE_THRESHOLD = 127
#: TEC threshold above which the controller goes bus-off.
BUS_OFF_THRESHOLD = 255
#: TEC increment on a transmit error (ISO 11898 rule 3).
TX_ERROR_INCREMENT = 8
#: REC increment on a receive error (ISO 11898 rule 1).
RX_ERROR_INCREMENT = 1


class ControllerState(enum.Enum):
    """Fault-confinement states of a CAN controller."""

    ERROR_ACTIVE = "error-active"
    ERROR_PASSIVE = "error-passive"
    BUS_OFF = "bus-off"


@dataclass
class TxRequest:
    """A queued transmission request.

    Attributes:
        frame: the frame to transmit.
        seq: submission order, the FIFO tie-breaker within one priority.
        attempts: physical transmission attempts made so far.
    """

    frame: CanFrame
    seq: int
    attempts: int = 0
    #: Causal span opened at submission, closed when the request leaves the
    #: controller for good (delivered / aborted / dropped). ``None`` while
    #: span tracing is disabled.
    span_id: Optional[int] = None

    def __post_init__(self) -> None:
        # Arbitration order: identifier, then data-before-remote, then
        # FIFO. Precomputed — the key is immutable and every arbitration
        # round sorts on it.
        self.priority_key = (
            self.frame.identifier,
            1 if self.frame.remote else 0,
            self.seq,
        )


class CanController:
    """One node's attachment to the CAN bus."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.tec = 0
        self.rec = 0
        self.crashed = False
        self._queue: List[TxRequest] = []
        self._seq = itertools.count()
        self._bus = None  # set by CanBus.attach
        self._spans = NULL_TRACER  # rebound to the sim's tracer by attach
        #: Hardware acceptance filters; ``None`` means accept-all (the
        #: seed behaviour, and the only correct configuration for a full
        #: CANELy node — see :mod:`repro.can.filters`). Install via
        #: :meth:`set_filters` so the bus drops its delivery tables.
        self._filters = None
        # Delivery hooks, wired by the standard-layer driver.
        self.on_rx: Optional[Callable[[CanFrame], None]] = None
        self.on_tx_success: Optional[Callable[[CanFrame], None]] = None

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> ControllerState:
        """Current fault-confinement state."""
        if self.tec > BUS_OFF_THRESHOLD:
            return ControllerState.BUS_OFF
        if self.tec > ERROR_PASSIVE_THRESHOLD or self.rec > ERROR_PASSIVE_THRESHOLD:
            return ControllerState.ERROR_PASSIVE
        return ControllerState.ERROR_ACTIVE

    @property
    def alive(self) -> bool:
        """True while the node participates in bus traffic.

        Checked several times per frame by the bus; reads the bus-off
        condition (``tec > BUS_OFF_THRESHOLD``) directly instead of
        chaining through the :attr:`state` property.
        """
        return not self.crashed and self.tec <= BUS_OFF_THRESHOLD

    # -- acceptance filtering ---------------------------------------------------

    @property
    def filters(self):
        """The installed :class:`~repro.can.filters.FilterBank`, or ``None``."""
        return self._filters

    def set_filters(self, bank) -> None:
        """Install (or clear, with ``None``/empty) acceptance filters.

        Mutating a bank after installation must go through this method
        again: the bus caches per-identifier delivery tables keyed on the
        installed filter configuration and invalidates them here.
        """
        self._filters = bank if bank is not None and len(bank) else None
        if self._bus is not None:
            self._bus.invalidate_delivery_tables()

    def accepts(self, identifier: int) -> bool:
        """True when this controller's receiver passes ``identifier`` up."""
        bank = self._filters
        return bank is None or bank.accepts(identifier)

    def crash(self) -> None:
        """Fail silent: stop transmitting and receiving, drop the queue.

        Crashing between a failed transmission attempt and its automatic
        retransmission is how the paper's *inconsistent message omission*
        scenario arises.
        """
        self.crashed = True
        if self._spans.enabled:
            for request in self._queue:
                self._spans.end(request.span_id, outcome="crashed")
        self._queue.clear()

    # -- transmit queue --------------------------------------------------------

    def submit(self, frame: CanFrame) -> Optional[TxRequest]:
        """Queue ``frame`` for transmission; returns the request handle.

        Submissions from a crashed or bus-off controller are silently
        discarded (fail-silent behaviour) and return ``None``.
        """
        if not self.alive:
            return None
        request = TxRequest(frame=frame, seq=next(self._seq))
        if self._spans.enabled:
            request.span_id = self._spans.begin(
                "can.frame",
                "can",
                node=self.node_id,
                mid=str(frame.mid),
                remote=frame.remote,
            )
        self._queue.append(request)
        if len(self._queue) > 1:
            self._queue.sort(key=lambda r: r.priority_key)
        bus = self._bus
        if bus is not None:
            bus._tx_pending[self.node_id] = self
            bus.kick()
        return request

    def abort(self, mid: MessageId) -> bool:
        """Abort pending requests carrying ``mid`` (``can-abort.req``).

        Per the standard-layer semantics, only *pending* requests are
        affected: a frame already on the wire completes its attempt. Returns
        True when at least one request was removed.
        """
        before = len(self._queue)
        if self._spans.enabled:
            for request in self._queue:
                if request.frame.mid == mid:
                    self._spans.end(request.span_id, outcome="aborted")
        self._queue = [r for r in self._queue if r.frame.mid != mid]
        return len(self._queue) != before

    def has_pending(self, mid: MessageId) -> bool:
        """True while a request for ``mid`` is queued."""
        return any(r.frame.mid == mid for r in self._queue)

    @property
    def queue_depth(self) -> int:
        """Number of pending transmit requests."""
        return len(self._queue)

    # -- bus-facing interface ----------------------------------------------------

    def head_request(self) -> Optional[TxRequest]:
        """The highest-priority pending request, or None."""
        # ``alive`` inlined: arbitration polls every controller per frame.
        if (
            not self._queue
            or self.crashed
            or self.tec > BUS_OFF_THRESHOLD
        ):
            return None
        return self._queue[0]

    def take(self, request: TxRequest) -> None:
        """Remove ``request`` from the queue: it is now in flight."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise BusError(
                f"node {self.node_id}: request not pending: {request.frame!r}"
            ) from None

    def finish_success(self, request: TxRequest) -> None:
        """Successful transmission: TEC decrement and ``.cnf`` upcall."""
        if self.tec:
            self.tec -= 1
        if request.span_id is not None:
            self._spans.end(
                request.span_id, outcome="delivered", attempts=request.attempts
            )
        if self.on_tx_success is not None:
            self.on_tx_success(request.frame)

    def finish_error(self, request: TxRequest) -> None:
        """Failed transmission: bump TEC and requeue for automatic retry."""
        self.tec += TX_ERROR_INCREMENT
        if request.span_id is not None:
            self._spans.event(request.span_id, "tx-error")
        if not self.alive:
            if request.span_id is not None:
                self._spans.end(
                    request.span_id, outcome="dropped", attempts=request.attempts
                )
            return
        request.attempts += 1
        self._queue.append(request)
        if len(self._queue) > 1:
            self._queue.sort(key=lambda r: r.priority_key)
        if self._bus is not None:
            self._bus._tx_pending[self.node_id] = self

    def deliver(self, frame: CanFrame) -> None:
        """A frame was accepted by this controller's receiver."""
        if self.rec:
            self.rec -= 1
        if self.on_rx is not None:
            self.on_rx(frame)

    def rx_error(self) -> None:
        """This controller detected an error in a received frame."""
        self.rec += RX_ERROR_INCREMENT
