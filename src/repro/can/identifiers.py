"""CAN message identifiers and the CANELy message control field (MID).

The paper (Section 5) defines the *message control field* carried in the CAN
identifier as: a **type** reference, an optional **reference number** and a
**node identifier**. We map it onto the 29-bit extended CAN identifier:

====  ======  =======================================================
bits  field   meaning
====  ======  =======================================================
28-24 type    message type; doubles as the major arbitration priority
23-8  ref     protocol-specific reference (e.g. #RHV for RHA signals)
7-0   node    sending / subject node identifier
====  ======  =======================================================

Because CAN arbitration favours numerically *lower* identifiers, the
enumeration order of :class:`MessageType` is the network-wide priority
order: failure signs (FDA) beat everything, application data yields to every
protocol message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FrameError

TYPE_BITS = 5
REF_BITS = 16
NODE_BITS = 8

MAX_TYPE = (1 << TYPE_BITS) - 1
MAX_REF = (1 << REF_BITS) - 1
MAX_NODE = (1 << NODE_BITS) - 1

#: Total identifier width (CAN 2.0B extended format).
IDENTIFIER_BITS = TYPE_BITS + REF_BITS + NODE_BITS


class MessageType(enum.IntEnum):
    """Protocol message types, ordered by decreasing bus priority."""

    #: Failure Detection Agreement failure-sign (remote frame).
    FDA = 0
    #: Explicit life-sign broadcast (remote frame).
    ELS = 1
    #: Reception History Agreement RHV signal (data frame).
    RHA = 2
    #: Membership join request (remote frame).
    JOIN = 3
    #: Membership leave request (remote frame).
    LEAVE = 4
    #: Clock synchronization resynchronization messages.
    CSYNC = 5
    #: Reliable-broadcast control traffic (RELCAN confirm, TOTCAN accept).
    BCTRL = 6
    #: Baseline network management (CAL node guarding / OSEK NM ring).
    NM = 7
    #: Process group membership announcements.
    GROUP = 8
    #: SWIM-style membership traffic (heartbeats, suspicions, verdicts)
    #: of the rival :mod:`repro.swim` backend — below every CANELy
    #: protocol message, above application data.
    SWIM = 9
    #: Application data (lowest protocol priority).
    DATA = 15


@dataclass(frozen=True)
class MessageId:
    """The CANELy message control field, totally ordered by bus priority.

    Comparison uses the numeric order of the encoded identifier, which is
    CAN arbitration priority: lower sorts first and wins the bus.
    """

    mtype: MessageType
    node: int = 0
    ref: int = 0

    def __post_init__(self) -> None:
        if not 0 <= int(self.mtype) <= MAX_TYPE:
            raise FrameError(f"message type out of range: {self.mtype}")
        if not 0 <= self.node <= MAX_NODE:
            raise FrameError(f"node id out of range: {self.node}")
        if not 0 <= self.ref <= MAX_REF:
            raise FrameError(f"ref out of range: {self.ref}")

    def __lt__(self, other: "MessageId") -> bool:
        if not isinstance(other, MessageId):
            return NotImplemented
        return self.encode() < other.encode()

    def __le__(self, other: "MessageId") -> bool:
        if not isinstance(other, MessageId):
            return NotImplemented
        return self.encode() <= other.encode()

    def __gt__(self, other: "MessageId") -> bool:
        if not isinstance(other, MessageId):
            return NotImplemented
        return self.encode() > other.encode()

    def __ge__(self, other: "MessageId") -> bool:
        if not isinstance(other, MessageId):
            return NotImplemented
        return self.encode() >= other.encode()

    def encode(self) -> int:
        """Pack into the 29-bit extended CAN identifier."""
        return (
            (int(self.mtype) << (REF_BITS + NODE_BITS))
            | (self.ref << NODE_BITS)
            | self.node
        )

    @classmethod
    def decode(cls, identifier: int) -> "MessageId":
        """Unpack a 29-bit identifier produced by :meth:`encode`."""
        if not 0 <= identifier < (1 << IDENTIFIER_BITS):
            raise FrameError(f"identifier out of range: {identifier:#x}")
        mtype_raw = identifier >> (REF_BITS + NODE_BITS)
        try:
            mtype = MessageType(mtype_raw)
        except ValueError as exc:
            raise FrameError(f"unknown message type code {mtype_raw}") from exc
        ref = (identifier >> NODE_BITS) & MAX_REF
        node = identifier & MAX_NODE
        return cls(mtype=mtype, node=node, ref=ref)

    def __repr__(self) -> str:
        return f"MessageId({self.mtype.name}, node={self.node}, ref={self.ref})"
