"""CAN physical-layer timing.

CAN trades bus length for bit rate: the in-frame acknowledgment requires a
bit time longer than twice the end-to-end propagation delay. The table below
reproduces the classic rate/length pairs quoted in the paper (Section 3) and
in CiA DS-102.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.clock import SEC

#: (bit rate in bit/s, maximum bus length in metres) — CiA DS-102 ladder.
RATE_LENGTH_TABLE = (
    (1_000_000, 40),
    (800_000, 50),
    (500_000, 100),
    (250_000, 250),
    (125_000, 500),
    (50_000, 1000),
    (20_000, 2500),
    (10_000, 5000),
)

#: Nominal signal propagation velocity on twisted pair, m/s (~0.66 c).
PROPAGATION_VELOCITY = 2.0e8


def max_bus_length_m(bit_rate: int) -> int:
    """Maximum bus length (m) supported at ``bit_rate``, per CiA DS-102.

    Rates between table entries are conservatively mapped to the next
    *faster* entry's length.
    """
    if bit_rate > RATE_LENGTH_TABLE[0][0]:
        raise ConfigurationError(f"bit rate {bit_rate} exceeds CAN maximum 1 Mbps")
    for rate, length in RATE_LENGTH_TABLE:
        if bit_rate >= rate:
            return length
    return RATE_LENGTH_TABLE[-1][1]


@dataclass(frozen=True)
class BitTiming:
    """Converts between bit-times and kernel ticks for one bus.

    Attributes:
        bit_rate: nominal bit rate in bit/s (default 1 Mbps, 40 m bus).
    """

    bit_rate: int = 1_000_000

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ConfigurationError(f"bit rate must be positive: {self.bit_rate}")
        if SEC % self.bit_rate:
            raise ConfigurationError(
                f"bit rate {self.bit_rate} does not divide 1e9 ns evenly; "
                "pick a rate with an integer bit time"
            )

    @property
    def bit_time(self) -> int:
        """Duration of one bit in kernel ticks."""
        return SEC // self.bit_rate

    def bits_to_ticks(self, bits: int) -> int:
        """Duration of ``bits`` bit-times in kernel ticks."""
        return bits * self.bit_time

    def ticks_to_bits(self, ticks: int) -> float:
        """Convert kernel ticks to (fractional) bit-times."""
        return ticks / self.bit_time

    @property
    def max_length_m(self) -> int:
        """Maximum bus length for this bit rate."""
        return max_bus_length_m(self.bit_rate)
