"""The CAN frame model.

A :class:`CanFrame` is the unit of transmission: a message identifier (the
CANELy MID), an optional data field (data frames) or none (remote frames).
Wire lengths come from the exact bit-stuffed encoding in
:mod:`repro.can.bitstream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can.bitstream import exact_frame_bits, worst_case_frame_bits
from repro.can.identifiers import MessageId
from repro.errors import FrameError


@dataclass(frozen=True)
class CanFrame:
    """An immutable CAN 2.0B frame.

    Attributes:
        mid: the message control field (type, ref, node), also the
            arbitration identifier.
        data: 0-8 bytes of payload; must be empty for remote frames.
        remote: True for remote (RTR) frames — the CANELy control-message
            encapsulation that enables wired-AND clustering.
    """

    mid: MessageId
    data: bytes = b""
    remote: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.data, bytes):
            raise FrameError(f"data must be bytes, got {type(self.data).__name__}")
        if len(self.data) > 8:
            raise FrameError(f"CAN data field is at most 8 bytes, got {len(self.data)}")
        if self.remote and self.data:
            raise FrameError("remote frames carry no data")
        # Arbitration reads the identifier several times per contention
        # round; the frame is immutable, so encode once at construction.
        object.__setattr__(self, "_identifier", self.mid.encode())

    @property
    def dlc(self) -> int:
        """Data length code."""
        return len(self.data)

    @property
    def identifier(self) -> int:
        """Encoded 29-bit arbitration identifier."""
        return self._identifier

    def wire_bits(self, with_interframe: bool = True) -> int:
        """Exact stuffed wire length of this frame in bit-times."""
        return exact_frame_bits(
            self.identifier,
            self.data,
            self.remote,
            extended=True,
            with_interframe=with_interframe,
        )

    def worst_case_bits(self, with_interframe: bool = True) -> int:
        """Worst-case stuffed wire length for this frame's DLC."""
        return worst_case_frame_bits(
            self.dlc, extended=True, with_interframe=with_interframe
        )

    def __repr__(self) -> str:
        kind = "RTR" if self.remote else f"DATA[{self.dlc}]"
        return f"CanFrame({self.mid!r}, {kind})"


def data_frame(mid: MessageId, data: bytes = b"") -> CanFrame:
    """Convenience constructor for a data frame."""
    return CanFrame(mid=mid, data=data, remote=False)


def remote_frame(mid: MessageId) -> CanFrame:
    """Convenience constructor for a remote frame (CANELy control message)."""
    return CanFrame(mid=mid, remote=True)
