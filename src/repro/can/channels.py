"""Optional channel redundancy (Fig. 11: "channel redundancy — yes
(optional)").

Media redundancy (:mod:`repro.can.redundancy`) replicates the *cabling* of
one logical channel; channel redundancy replicates the **whole channel** —
two independent CAN buses, two controllers per node, every transmit request
issued on both. A node stays connected as long as either channel works,
including against babbling or bus-off conditions confined to one channel.

:class:`DualChannelLayer` exposes the same standard-layer interface as
:class:`~repro.can.driver.CanStandardLayer`, so the whole CANELy protocol
suite runs over it unchanged:

* requests (``data_req``/``rtr_req``) are submitted on both channels;
* receptions are deduplicated with *twin suppression*: the second copy of
  the same frame arriving within the pairing window is dropped. The window
  must exceed the worst-case skew between the channels (their independent
  arbitration can reorder traffic) and be shorter than the minimum
  legitimate repetition interval of any identifier;
* confirmation fires on the first channel to confirm;
* aborts apply to both channels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.can.controller import CanController
from repro.can.driver import (
    CanStandardLayer,
    CnfListener,
    DataIndListener,
    NtyListener,
    RtrIndListener,
)
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator


class _DualControllerFacade:
    """Aggregates the two physical controllers behind one node facade."""

    def __init__(self, primary: CanController, secondary: CanController) -> None:
        self._controllers = (primary, secondary)
        # Span tracer facade: both channels share one simulator, hence one
        # tracer; layered protocols reach it via ``layer.controller._spans``.
        self._spans = primary._spans

    @property
    def crashed(self) -> bool:
        return self._controllers[0].crashed

    def crash(self) -> None:
        for controller in self._controllers:
            controller.crash()

    @property
    def tec(self) -> int:
        return max(c.tec for c in self._controllers)

    @tec.setter
    def tec(self, value: int) -> None:
        for controller in self._controllers:
            controller.tec = value

    @property
    def rec(self) -> int:
        return max(c.rec for c in self._controllers)

    @rec.setter
    def rec(self, value: int) -> None:
        for controller in self._controllers:
            controller.rec = value

    @crashed.setter
    def crashed(self, value: bool) -> None:
        for controller in self._controllers:
            controller.crashed = value
        if not value:
            for controller in self._controllers:
                controller.tec = 0
                controller.rec = 0


class DualChannelLayer:
    """A standard-layer facade over two replicated channels."""

    def __init__(
        self,
        sim: Simulator,
        channel_a: CanStandardLayer,
        channel_b: CanStandardLayer,
        pairing_window: int,
    ) -> None:
        if channel_a.node_id != channel_b.node_id:
            raise ConfigurationError(
                "both channels must serve the same node: "
                f"{channel_a.node_id} vs {channel_b.node_id}"
            )
        if pairing_window <= 0:
            raise ConfigurationError(
                f"pairing window must be positive: {pairing_window}"
            )
        self._sim = sim
        self._channels = (channel_a, channel_b)
        self._window = pairing_window
        self.controller = _DualControllerFacade(
            channel_a.controller, channel_b.controller
        )
        # Twin suppression state, per kind of upcall.
        self._last_seen: Dict[Tuple[str, object], int] = {}
        self._data_ind: List[Tuple[Optional[MessageType], DataIndListener]] = []
        self._rtr_ind: List[Tuple[Optional[MessageType], RtrIndListener]] = []
        self._data_cnf: List[Tuple[Optional[MessageType], CnfListener]] = []
        self._rtr_cnf: List[Tuple[Optional[MessageType], CnfListener]] = []
        self._data_nty: List[NtyListener] = []
        for channel in self._channels:
            channel.add_data_ind(self._make_data_ind(channel))
            channel.add_rtr_ind(self._make_rtr_ind(channel))
            channel.add_data_cnf(self._make_cnf(channel, remote=False))
            channel.add_rtr_cnf(self._make_cnf(channel, remote=True))

    @property
    def node_id(self) -> int:
        """Identifier of the node this layer serves."""
        return self._channels[0].node_id

    @property
    def channels(self) -> Tuple[CanStandardLayer, CanStandardLayer]:
        """The underlying per-channel standard layers."""
        return self._channels

    # -- request primitives -------------------------------------------------------

    def data_req(self, mid: MessageId, data: bytes = b"") -> None:
        """Queue a data frame on both channels."""
        for channel in self._channels:
            channel.data_req(mid, data)

    def rtr_req(self, mid: MessageId) -> None:
        """Queue a remote frame on both channels."""
        for channel in self._channels:
            channel.rtr_req(mid)

    def abort_req(self, mid: MessageId) -> bool:
        """Abort pending requests on both channels."""
        aborted = False
        for channel in self._channels:
            aborted = channel.abort_req(mid) or aborted
        return aborted

    def has_pending(self, mid: MessageId) -> bool:
        """True while either channel still queues a request for ``mid``."""
        return any(channel.has_pending(mid) for channel in self._channels)

    # -- listener registration -----------------------------------------------------

    def add_data_ind(self, listener, mtype: Optional[MessageType] = None) -> None:
        self._data_ind.append((mtype, listener))

    def add_rtr_ind(self, listener, mtype: Optional[MessageType] = None) -> None:
        self._rtr_ind.append((mtype, listener))

    def add_data_cnf(self, listener, mtype: Optional[MessageType] = None) -> None:
        self._data_cnf.append((mtype, listener))

    def add_rtr_cnf(self, listener, mtype: Optional[MessageType] = None) -> None:
        self._rtr_cnf.append((mtype, listener))

    def add_data_nty(self, listener) -> None:
        self._data_nty.append(listener)

    # -- twin suppression ------------------------------------------------------------

    def _suppressed(self, kind: str, key: object) -> bool:
        now = self._sim.now
        last = self._last_seen.get((kind, key))
        self._last_seen[(kind, key)] = now
        if len(self._last_seen) > 4096:
            # The table only needs entries younger than the pairing window;
            # prune stale ones so a long-running node stays bounded.
            horizon = now - 4 * self._window
            self._last_seen = {
                entry: seen
                for entry, seen in self._last_seen.items()
                if seen >= horizon
            }
        return last is not None and now - last <= self._window

    def _make_data_ind(self, channel: CanStandardLayer):
        def handler(mid: MessageId, data: bytes) -> None:
            if self._suppressed("data", (mid, data)):
                return
            for listener in list(self._data_nty):
                listener(mid)
            for mtype, listener in list(self._data_ind):
                if mtype is None or mid.mtype is mtype:
                    listener(mid, data)

        return handler

    def _make_rtr_ind(self, channel: CanStandardLayer):
        def handler(mid: MessageId) -> None:
            if self._suppressed("rtr", mid):
                return
            for mtype, listener in list(self._rtr_ind):
                if mtype is None or mid.mtype is mtype:
                    listener(mid)

        return handler

    def _make_cnf(self, channel: CanStandardLayer, remote: bool):
        def handler(mid: MessageId) -> None:
            if self._suppressed("cnf-rtr" if remote else "cnf-data", mid):
                return
            listeners = self._rtr_cnf if remote else self._data_cnf
            for mtype, listener in list(listeners):
                if mtype is None or mid.mtype is mtype:
                    listener(mid)

        return handler
