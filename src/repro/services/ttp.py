"""A miniature Time-Triggered Protocol (TTP/C-style) network.

The paper frames CANELy against TTP (Kopetz & Grunsteidl [10]): fail-silent
nodes on replicated broadcast channels, conflict-free TDMA media access, a
membership service built into the slot structure, and clock synchronization
derived from the global time base. This module implements the slice of TTP
needed to *measure* the comparison columns of Figs. 1 and 11 instead of
quoting them:

* a static **TDMA round**: each node owns one slot per round and transmits
  a frame carrying its membership vector;
* **membership by slot observation**: a node that stays silent in its own
  slot is removed from every receiver's membership at the slot boundary —
  detection latency is therefore bounded by one TDMA round (plus one
  slot);
* **dual channels**: a frame is lost only when *both* channel copies are
  hit, reproducing TTP's omission masking;
* a node that observes itself expelled (e.g. after both copies of its
  frame were lost) turns **passive** — the fail-silent discipline real TTP
  enforces through its bus guardian and clique avoidance.

This is not a complete TTP/C implementation (no cluster startup, no
reintegration, no CRC-of-C-state agreement); it is the behavioural core
that determines membership latency and bandwidth, which is what the
paper's comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator

MembershipCallback = Callable[[int, Set[int]], None]


@dataclass
class TtpStats:
    """Aggregate accounting for one TTP network."""

    rounds_completed: int = 0
    frames_sent: int = 0
    frames_lost: int = 0


class TtpNode:
    """One fail-silent TTP node."""

    def __init__(self, node_id: int, network: "TtpNetwork") -> None:
        self.node_id = node_id
        self._network = network
        self.membership: Set[int] = set(network.node_ids)
        self.crashed = False
        self.passive = False
        self._listeners: List[MembershipCallback] = []

    @property
    def operational(self) -> bool:
        """True while the node transmits in its slot."""
        return not self.crashed and not self.passive

    def crash(self) -> None:
        """Fail silent."""
        self.crashed = True

    def on_membership_change(self, callback: MembershipCallback) -> None:
        """Subscribe to ``(removed_node, new_membership)`` notifications."""
        self._listeners.append(callback)

    def _remove(self, node_id: int) -> None:
        if node_id not in self.membership:
            return
        self.membership.discard(node_id)
        if node_id == self.node_id:
            # Expelled: fail-silent discipline demands passivity.
            self.passive = True
        for listener in list(self._listeners):
            listener(node_id, set(self.membership))


class TtpNetwork:
    """A TDMA cluster of :class:`TtpNode`.

    Args:
        sim: the simulator.
        node_count: cluster size (one slot per node per round).
        slot_time: slot duration in kernel ticks.
        channels: replicated broadcast channels (TTP uses 2).
    """

    def __init__(
        self,
        sim: Simulator,
        node_count: int,
        slot_time: int,
        channels: int = 2,
    ) -> None:
        if node_count < 2:
            raise ConfigurationError("a TTP cluster needs at least two nodes")
        if slot_time <= 0:
            raise ConfigurationError(f"slot time must be positive: {slot_time}")
        if channels < 1:
            raise ConfigurationError("at least one channel is required")
        self._sim = sim
        self.slot_time = slot_time
        self.channels = channels
        self.node_ids = list(range(node_count))
        self.nodes: Dict[int, TtpNode] = {
            node_id: TtpNode(node_id, self) for node_id in self.node_ids
        }
        self.stats = TtpStats()
        self._slot_index = 0
        #: Scripted channel omissions: (round, slot) -> channels hit.
        self._omissions: Dict[tuple, int] = {}
        self._started = False

    @property
    def round_time(self) -> int:
        """Duration of one full TDMA round."""
        return self.slot_time * len(self.node_ids)

    @property
    def round_index(self) -> int:
        """The TDMA round currently in progress."""
        return self._slot_index // len(self.node_ids)

    def start(self) -> None:
        """Begin TDMA operation at the next slot boundary."""
        if self._started:
            return
        self._started = True
        self._sim.schedule(self.slot_time, self._slot_end)

    def script_omission(self, round_index: int, slot: int, channels_hit: int = 1) -> None:
        """Destroy ``channels_hit`` copies of the frame in one future slot.

        With fewer hits than channels the loss is masked (TTP's omission
        handling by replication); hitting every channel expels the sender.
        """
        self._omissions[(round_index, slot)] = channels_hit

    # -- TDMA machinery ----------------------------------------------------------

    def _slot_end(self) -> None:
        node_count = len(self.node_ids)
        round_index, slot = divmod(self._slot_index, node_count)
        owner = self.nodes[self.node_ids[slot]]

        frame_visible = False
        if owner.operational:
            self.stats.frames_sent += 1
            channels_hit = self._omissions.pop((round_index, slot), 0)
            if channels_hit >= self.channels:
                self.stats.frames_lost += 1
            else:
                frame_visible = True

        if not frame_visible:
            # Silence in the owner's slot: every operational receiver (and
            # the owner itself, if it is alive to observe the channels)
            # removes it at the slot boundary.
            for node in self.nodes.values():
                if not node.crashed:
                    node._remove(owner.node_id)

        self._slot_index += 1
        if self._slot_index % node_count == 0:
            self.stats.rounds_completed += 1
        self._sim.schedule(self.slot_time, self._slot_end)

    # -- queries ---------------------------------------------------------------------

    def memberships_agree(self) -> bool:
        """True when every operational node holds the same membership."""
        views = [
            frozenset(node.membership)
            for node in self.nodes.values()
            if node.operational
        ]
        return all(view == views[0] for view in views)

    def agreed_membership(self) -> Set[int]:
        """The common membership; raises on disagreement."""
        views = {
            node.node_id: frozenset(node.membership)
            for node in self.nodes.values()
            if node.operational
        }
        reference = next(iter(views.values()))
        mismatched = {k: v for k, v in views.items() if v != reference}
        if mismatched:
            raise AssertionError(f"TTP memberships disagree: {mismatched}")
        return set(reference)

    def bandwidth_frames_per_second(self) -> float:
        """TDMA frame rate: one frame per slot, always."""
        from repro.sim.clock import SEC

        return SEC / self.slot_time
