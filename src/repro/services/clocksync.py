"""Fault-tolerant clock synchronization on CAN (Rodrigues et al. [15]).

Each node owns a drifting local clock. Synchronization exploits the same
CAN property the membership suite builds on: a frame transmission completes
*quasi-simultaneously* at every node (within propagation and interrupt
jitter), so a designated resynchronization message provides a common event
observed everywhere within a tight window. On reception, every node adjusts
its virtual clock to an agreed value for that round; the achieved precision
is the reception jitter plus the drift accumulated over one round — tens of
microseconds for typical CAN parameters, which is the Fig. 11 claim this
module reproduces.

The resynchronization message is broadcast by every correct node of the
round's expected senders (remote frames cluster, so this is cheap); the
*first* indication of the round is the synchronization event, making the
service tolerant to the failure of any minority of senders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService


@dataclass
class VirtualClock:
    """A drifting local clock.

    ``read(real_now) = offset + (1 + drift) * real_now`` — ``drift`` models
    the oscillator's deviation (e.g. 1e-4 = 100 ppm).
    """

    drift: float = 0.0
    offset: float = 0.0

    def read(self, real_now: int) -> float:
        """Local clock value at real time ``real_now``."""
        return self.offset + (1.0 + self.drift) * real_now

    def adjust_to(self, real_now: int, target: float) -> None:
        """Slew the clock so that it reads ``target`` right now."""
        self.offset += target - self.read(real_now)


class ClockSyncService:
    """Per-node round-based clock synchronization."""

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        clock: VirtualClock,
        resync_period: int,
        reception_jitter_rng: Optional[random.Random] = None,
        max_reception_jitter: int = 2_000,
    ) -> None:
        if resync_period <= 0:
            raise ConfigurationError(f"resync period must be positive: {resync_period}")
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self.clock = clock
        self._period = resync_period
        self._jitter_rng = reception_jitter_rng
        self._max_jitter = max_reception_jitter
        self._round = 0
        self._synced_round = -1
        self.resyncs = 0
        self._running = False
        layer.add_rtr_ind(self._on_resync, mtype=MessageType.CSYNC)

    def start(self) -> None:
        """Begin participating in synchronization rounds."""
        if self._running:
            return
        self._running = True
        self._schedule_round()

    def stop(self) -> None:
        """Stop participating (e.g. on leave)."""
        self._running = False

    def _schedule_round(self) -> None:
        self._timers.start_alarm(self._period, self._on_round_timer)

    def _on_round_timer(self) -> None:
        if not self._running:
            return
        self._round += 1
        # Every node requests the round's resync message; identical remote
        # frames cluster into one physical frame.
        self._layer.rtr_req(MessageId(MessageType.CSYNC, ref=self._round & 0xFFFF))
        self._schedule_round()

    def _on_resync(self, mid: MessageId) -> None:
        round_index = mid.ref
        if round_index <= self._synced_round:
            return  # only the first indication of a round synchronizes
        self._synced_round = round_index
        self._round = max(self._round, round_index)
        # Local processing / interrupt latency before the timestamp is taken.
        jitter = 0
        if self._jitter_rng is not None and self._max_jitter > 0:
            jitter = self._jitter_rng.randint(0, self._max_jitter)
        observation_time = self._sim.now + jitter
        # Agreed value for the round: rounds are numbered from the service
        # epoch, so round k corresponds to k resync periods of virtual time.
        agreed = float(round_index) * self._period
        self.clock.adjust_to(observation_time, agreed)
        self.resyncs += 1


def precision(
    clocks: Dict[int, VirtualClock], real_now: int
) -> float:
    """Worst pairwise clock deviation at ``real_now`` (the precision π)."""
    readings = [clock.read(real_now) for clock in clocks.values()]
    if not readings:
        return 0.0
    return max(readings) - min(readings)
