"""CAL / CANopen network management — the centralized baseline of §6.6.

The CAN Application Layer (CAL), as used by the CANopen communication
profile, detects node crashes with a master-slave scheme: one master
cyclically inquires each slave with a CAN remote frame
(:class:`CalNodeGuarding`); the slave answers with its current state. A
slave that misses its answers for a *node life time* (guard time x life
time factor) is declared failed.

The paper also mentions the alternative producer-consumer model
(:class:`CalHeartbeat`, CANopen's heartbeat protocol): every node
broadcasts a periodic status message; consumers time out producers
individually. It removes the remote-frame polling but keeps the core
weaknesses the paper criticises and the related-work benchmark quantifies:

* node guarding is **centralized** — a master crash disables detection
  entirely; heartbeat consumers are configured statically instead;
* detection latency is governed by configuration-table periods, not by
  the traffic already on the bus (no implicit life-signs);
* there is **no agreement**: consumers time out producers independently,
  with no mechanism making the failure notification consistent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService

#: ``ref`` subtype codes within the NM message type.
_POLL_REF = 0x100
_STATUS_REF = 0x200
_HEARTBEAT_REF = 0x500

FailureCallback = Callable[[int], None]


class CalNodeGuarding:
    """One node's CAL node-guarding entity (master or slave).

    Args:
        layer: the node's CAN standard layer.
        timers: the node's timer service.
        sim: the simulator.
        master_id: identifier of the guarding master.
        slave_ids: identifiers of the guarded slaves.
        guard_time: polling slot duration — the master polls one slave per
            guard slot, round-robin.
        life_time_factor: missed polls tolerated before a slave is declared
            failed (CANopen's lifeTimeFactor).
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        master_id: int,
        slave_ids: List[int],
        guard_time: int,
        life_time_factor: int = 2,
    ) -> None:
        if guard_time <= 0:
            raise ConfigurationError(f"guard time must be positive: {guard_time}")
        if life_time_factor < 1:
            raise ConfigurationError(
                f"life time factor must be >= 1: {life_time_factor}"
            )
        if master_id in slave_ids:
            raise ConfigurationError("the master does not guard itself")
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self.master_id = master_id
        self.slave_ids = list(slave_ids)
        self.guard_time = guard_time
        self.life_time = guard_time * len(slave_ids) * life_time_factor
        self._is_master = layer.node_id == master_id
        self._poll_index = 0
        self._last_seen: Dict[int, int] = {}
        self.detected: Dict[int, int] = {}
        self._listeners: List[FailureCallback] = []
        self.polls_sent = 0
        self.statuses_sent = 0
        self._running = False
        layer.add_rtr_ind(self._on_poll, mtype=MessageType.NM)
        layer.add_data_ind(self._on_status, mtype=MessageType.NM)

    def on_failure(self, callback: FailureCallback) -> None:
        """Register a failure listener (only ever fired at the master)."""
        self._listeners.append(callback)

    def start(self) -> None:
        """Start the guarding service (master begins polling)."""
        if self._running:
            return
        self._running = True
        if self._is_master:
            now = self._sim.now
            for slave in self.slave_ids:
                self._last_seen[slave] = now
            self._timers.start_alarm(self.guard_time, self._poll_next)

    def stop(self) -> None:
        """Stop the service."""
        self._running = False

    # -- master side ---------------------------------------------------------------

    def _poll_next(self) -> None:
        if not self._running:
            return
        slave = self.slave_ids[self._poll_index % len(self.slave_ids)]
        self._poll_index += 1
        self.polls_sent += 1
        self._layer.rtr_req(MessageId(MessageType.NM, node=slave, ref=_POLL_REF))
        self._check_lifetimes()
        self._timers.start_alarm(self.guard_time, self._poll_next)

    def _check_lifetimes(self) -> None:
        now = self._sim.now
        for slave, seen in self._last_seen.items():
            if slave in self.detected:
                continue
            if now - seen > self.life_time:
                self.detected[slave] = now
                for listener in list(self._listeners):
                    listener(slave)

    def _on_status(self, mid: MessageId, data: bytes) -> None:
        if self._is_master and mid.ref == _STATUS_REF:
            self._last_seen[mid.node] = self._sim.now

    # -- slave side -----------------------------------------------------------------

    def _on_poll(self, mid: MessageId) -> None:
        if mid.ref != _POLL_REF or mid.node != self._layer.node_id:
            return
        if not self._running:
            return
        self.statuses_sent += 1
        self._layer.data_req(
            MessageId(MessageType.NM, node=self._layer.node_id, ref=_STATUS_REF),
            bytes([0x05]),  # CANopen "operational" state
        )


class CalHeartbeat:
    """CANopen heartbeat (producer-consumer) node monitoring.

    Every node *produces* a periodic heartbeat status message; each node
    *consumes* the heartbeats of a configured producer set and declares a
    producer failed when nothing arrived for ``consumer_time`` (CANopen
    requires ``consumer_time > producer_time``).

    Args:
        layer: the node's CAN standard layer.
        timers: the node's timer service.
        sim: the simulator.
        producer_time: interval between own heartbeats.
        consumer_time: silence tolerated before a producer is declared
            failed.
        watched: producer node ids this node consumes (default: none).
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        producer_time: int,
        consumer_time: int,
        watched: Optional[List[int]] = None,
    ) -> None:
        if producer_time <= 0:
            raise ConfigurationError(
                f"producer time must be positive: {producer_time}"
            )
        if consumer_time <= producer_time:
            raise ConfigurationError(
                "the consumer time must exceed the producer time "
                f"({consumer_time} <= {producer_time})"
            )
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self.producer_time = producer_time
        self.consumer_time = consumer_time
        self._watched = list(watched or [])
        self._consumer_alarms: Dict[int, object] = {}
        self.detected: Dict[int, int] = {}
        self._listeners: List[FailureCallback] = []
        self.heartbeats_sent = 0
        self._running = False
        layer.add_data_ind(self._on_heartbeat, mtype=MessageType.NM)

    def on_failure(self, callback: FailureCallback) -> None:
        """Register a producer-failure listener (fires only locally)."""
        self._listeners.append(callback)

    def start(self) -> None:
        """Start producing heartbeats and consuming the watched set."""
        if self._running:
            return
        self._running = True
        self._timers.start_alarm(self.producer_time, self._produce)
        for producer in self._watched:
            self._arm(producer)

    def stop(self) -> None:
        """Stop the service."""
        self._running = False

    def _produce(self) -> None:
        if not self._running:
            return
        self.heartbeats_sent += 1
        self._layer.data_req(
            MessageId(
                MessageType.NM, node=self._layer.node_id, ref=_HEARTBEAT_REF
            ),
            bytes([0x05]),  # operational
        )
        self._timers.start_alarm(self.producer_time, self._produce)

    def _arm(self, producer: int) -> None:
        self._timers.cancel_alarm(self._consumer_alarms.get(producer))
        self._consumer_alarms[producer] = self._timers.start_alarm(
            self.consumer_time, lambda p=producer: self._on_timeout(p)
        )

    def _on_heartbeat(self, mid: MessageId, data: bytes) -> None:
        if not self._running or mid.ref != _HEARTBEAT_REF:
            return
        if mid.node in self._consumer_alarms:
            self.detected.pop(mid.node, None)
            self._arm(mid.node)

    def _on_timeout(self, producer: int) -> None:
        if not self._running or producer in self.detected:
            return
        self.detected[producer] = self._sim.now
        for listener in list(self._listeners):
            listener(producer)
