"""OSEK network management — the distributed baseline of Section 6.6.

OSEK NM organizes the active nodes in a **logical ring**: the node holding
the (implicit) token waits ``T_typ`` and then addresses a ring message to
its successor; every node observes every ring message. Failure detection is
driven by *ring progress*: when the addressed node fails to forward the
token within the progress timeout, every observer marks it absent and the
predecessor re-issues the token to the next successor (OSEK's skipped-node
/ ring reconfiguration logic). Nodes announce themselves with alive
messages at startup and whenever they rejoin.

The paper's criticism, which the related-work benchmark quantifies: the
worst-case failure-detection latency is about one full ring circulation —
the token must *reach* the dead node before its silence is observable — so
for ``T_typ = 100 ms`` and a handful of nodes, **about one second**, versus
CANELy's tens of milliseconds; and the ring message traffic runs
continuously regardless of membership activity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.timers import Alarm, TimerService

#: ``ref`` subtype: ring message; the low byte carries the destination.
_RING_REF_BASE = 0x300
#: ``ref`` subtype: alive message (startup / rejoin announcement).
_ALIVE_REF = 0x400

FailureCallback = Callable[[int], None]


class OsekNetworkManagement:
    """One node's OSEK NM entity.

    Args:
        layer: the node's CAN standard layer.
        timers: the node's timer service.
        sim: the simulator.
        ring_nodes: the configured node population, in ring order.
        t_typ: typical time between ring messages (OSEK's ``TTyp``).
        t_progress_factor: progress timeout, in multiples of ``TTyp``; the
            addressed node must forward the token within this window.
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        ring_nodes: List[int],
        t_typ: int,
        t_progress_factor: float = 2.0,
    ) -> None:
        if t_typ <= 0:
            raise ConfigurationError(f"TTyp must be positive: {t_typ}")
        if t_progress_factor <= 1.0:
            raise ConfigurationError(
                "the progress timeout must exceed one TTyp hop: "
                f"{t_progress_factor}"
            )
        if layer.node_id not in ring_nodes:
            raise ConfigurationError("this node is not part of the ring")
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self.ring = sorted(ring_nodes)
        self.t_typ = t_typ
        self.t_progress = round(t_progress_factor * t_typ)
        #: Bootstrap timeout: how long to wait for the first ring message.
        self.t_bootstrap = 2 * t_typ * len(self.ring)
        # Presence is learnt from alive/ring sightings.
        self._present = {layer.node_id}
        self._ring_seen = False
        self._progress_alarm: Optional[Alarm] = None
        self._stalled_once = False
        self._last_ring_sender: Optional[int] = None
        self._last_ring_dest: Optional[int] = None
        self.detected: Dict[int, int] = {}
        self._listeners: List[FailureCallback] = []
        self.ring_messages_sent = 0
        self._running = False
        layer.add_data_ind(self._on_nm_frame, mtype=MessageType.NM)

    def on_failure(self, callback: FailureCallback) -> None:
        """Register an absent-node listener (fires at every correct node)."""
        self._listeners.append(callback)

    @property
    def present_nodes(self) -> List[int]:
        """Nodes this entity currently believes present, sorted."""
        return sorted(self._present)

    def start(self) -> None:
        """Join ring operation; the lowest identifier bootstraps the token."""
        if self._running:
            return
        self._running = True
        # Alive-message startup: announce presence.
        self._layer.data_req(
            MessageId(MessageType.NM, node=self._layer.node_id, ref=_ALIVE_REF),
            b"",
        )
        if self._layer.node_id == min(self.ring):
            self._timers.start_alarm(self.t_typ, self._send_ring)
        # Fallback for a dead bootstrapper: if no ring message ever shows
        # up, the lowest surviving identifier claims the token.
        self._timers.start_alarm(self.t_bootstrap, self._on_bootstrap_timeout)

    def stop(self) -> None:
        """Leave ring operation."""
        self._running = False
        self._timers.cancel_alarm(self._progress_alarm)
        self._progress_alarm = None

    # -- ring operation -----------------------------------------------------------

    def _successor(self, node: int) -> int:
        candidates = sorted(self._present | {self._layer.node_id})
        for candidate in candidates:
            if candidate > node:
                return candidate
        return candidates[0]

    def _send_ring(self) -> None:
        if not self._running:
            return
        dest = self._successor(self._layer.node_id)
        self.ring_messages_sent += 1
        self._layer.data_req(
            MessageId(
                MessageType.NM,
                node=self._layer.node_id,
                ref=_RING_REF_BASE | dest,
            ),
            b"",
        )

    def _on_nm_frame(self, mid: MessageId, data: bytes) -> None:
        if not self._running or mid.ref < _RING_REF_BASE:
            return
        sender = mid.node
        self._present.add(sender)
        # A node suspected absent that speaks again has rejoined.
        self.detected.pop(sender, None)
        if mid.ref == _ALIVE_REF:
            return
        dest = mid.ref & 0xFF
        self._ring_seen = True
        self._stalled_once = False
        self._last_ring_sender = sender
        self._last_ring_dest = dest
        # Ring progress supervision: the destination must forward the token
        # within the progress window, else it is absent.
        self._timers.cancel_alarm(self._progress_alarm)
        self._progress_alarm = self._timers.start_alarm(
            self.t_progress, self._on_progress_timeout
        )
        if dest == self._layer.node_id:
            # We hold the token: forward the ring message after TTyp.
            self._timers.start_alarm(self.t_typ, self._send_ring)

    # -- failure handling ------------------------------------------------------------

    def _on_progress_timeout(self) -> None:
        if not self._running:
            return
        self._progress_alarm = None
        dest = self._last_ring_dest
        if dest is None:
            return
        if not self._stalled_once:
            # First stall on this handoff: the addressed node is absent.
            self._stalled_once = True
            if dest != self._layer.node_id and dest not in self.detected:
                self._detect(dest)
            if self._last_ring_sender == self._layer.node_id:
                # We addressed the dead node: skip it (ring reconfiguration).
                self._send_ring()
            else:
                # Watch for the predecessor's re-send; if the predecessor
                # died too, the second timeout below recovers the ring.
                self._progress_alarm = self._timers.start_alarm(
                    self.t_progress, self._on_progress_timeout
                )
        else:
            # The predecessor never re-sent: it is gone as well. The lowest
            # surviving identifier claims the token.
            sender = self._last_ring_sender
            if sender is not None and sender != self._layer.node_id:
                if sender not in self.detected:
                    self._detect(sender)
            if self._layer.node_id == min(self._present):
                self._send_ring()
            else:
                self._progress_alarm = self._timers.start_alarm(
                    self.t_progress, self._on_progress_timeout
                )

    def _on_bootstrap_timeout(self) -> None:
        if not self._running or self._ring_seen:
            return
        bootstrapper = min(self.ring)
        if bootstrapper != self._layer.node_id:
            if bootstrapper not in self.detected:
                self._detect(bootstrapper)
        if self._layer.node_id == min(self._present):
            self._send_ring()

    def _detect(self, node: int) -> None:
        self._present.discard(node)
        self.detected[node] = self._sim.now
        for listener in list(self._listeners):
            listener(node)
