"""Companion CANELy services and related-work baselines.

* :mod:`repro.services.clocksync` — fault-tolerant clock synchronization
  (Rodrigues, Guimarães & Rufino [15]), the "tens of µs precision" row of
  the paper's Fig. 11.
* :mod:`repro.services.cal_nm` — CAL/CANopen master-slave node guarding,
  the centralized baseline of Section 6.6.
* :mod:`repro.services.osek_nm` — OSEK network management's logical ring,
  the distributed baseline of Section 6.6.
"""

from repro.services.cal_nm import CalNodeGuarding
from repro.services.clocksync import ClockSyncService, VirtualClock
from repro.services.osek_nm import OsekNetworkManagement
from repro.services.ttp import TtpNetwork, TtpNode

__all__ = [
    "CalNodeGuarding",
    "ClockSyncService",
    "OsekNetworkManagement",
    "TtpNetwork",
    "TtpNode",
    "VirtualClock",
]
