"""Micro + macro benchmark runner with a machine-readable trajectory.

``repro bench`` times the three layers the hot-path overhaul touched and
emits ``BENCH_core.json``:

* **frame_encoding** (micro) — exact stuffed wire lengths over a
  deterministic corpus of distinct frames. ``reference`` is the bit-list
  seed path, ``cold`` the table/integer path with the memo cache cleared
  every round, ``cached`` the steady-state dict-hit path.
* **kernel_throughput** (micro) — raw kernel events per wall-second on a
  surveillance-shaped workload (periodic events rearming watchdog alarms
  plus same-instant bursts), isolating the event-queue + dispatch layer
  this overhaul restructured: in-place reschedule and batched equal-time
  dispatch against the seed's cancel-and-push queue and ``step()`` loop.
  Both cores fire a provably identical event count.
* **event_throughput** (macro) — simulated events per wall-second on the
  canonical 10-node membership scenario (bootstrap, crash, detection,
  view change). ``reference`` runs the same scenario under
  :func:`repro.perf.legacy.legacy_core` — the seed's event queue and
  encoder — and the runner asserts both cores fire the *same number of
  events*, so the speedup is measured on provably identical work.
* **campaign_wallclock** (macro) — wall-clock seconds for a small
  sequential in-process campaign (``workers=0``), the unit of work large
  statistical campaigns fan out.

Every report carries environment metadata; :func:`compare_reports` checks
a current report against a committed baseline with a configurable
regression threshold. Machine-portable metrics (the ``speedup`` ratios)
are compared directly; machine-dependent absolutes (throughput, wall
seconds) are only compared when the baseline was recorded on request
(``repro bench`` against a local baseline), which CI does on one runner
class.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable, Dict, List, Optional

from repro.can.bitstream import (
    clear_encoding_cache,
    encoding_cache_info,
    exact_frame_bits,
    exact_frame_bits_reference,
)
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.perf.legacy import legacy_core
from repro.sim.clock import ms

#: Report schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.bench/1"

#: Default regression threshold: fail when a metric drops by more than 25%.
DEFAULT_THRESHOLD = 0.25

#: The canonical membership scenario the macro benchmark times.
CANONICAL_NODES = 10
CANONICAL_CONFIG = dict(capacity=16, tm_ms=50, thb_ms=10, tjoin_wait_ms=150)


def _timed(fn: Callable[[], Any]) -> float:
    """Wall-clock duration of one run of ``fn``."""
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Smallest wall-clock duration of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        elapsed = _timed(fn)
        if elapsed < best:
            best = elapsed
    return best


def _frame_corpus(count: int) -> List[tuple]:
    """A deterministic mix of extended data/remote frames (no RNG)."""
    corpus = []
    for index in range(count):
        identifier = (index * 0x9E3779B1) & ((1 << 29) - 1)
        remote = index % 3 == 0
        if remote:
            data = b""
        else:
            dlc = index % 9
            data = bytes(((index * 37 + offset * 11) & 0xFF) for offset in range(dlc))
        corpus.append((identifier, data, remote, True))
    return corpus


def bench_frame_encoding(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Micro: reference vs cold-fast vs cached wire-length computation."""
    corpus = _frame_corpus(100 if quick else 400)
    rounds = 5 if quick else 20
    reps = repeats if repeats is not None else (3 if quick else 5)

    def run_reference() -> None:
        for _ in range(rounds):
            for frame in corpus:
                exact_frame_bits_reference(*frame)

    def run_cold() -> None:
        for _ in range(rounds):
            clear_encoding_cache()
            for frame in corpus:
                exact_frame_bits(*frame)

    def run_cached() -> None:
        for frame in corpus:
            exact_frame_bits(*frame)
        for _ in range(rounds):
            for frame in corpus:
                exact_frame_bits(*frame)

    encodes = len(corpus) * rounds
    t_reference = _best_of(run_reference, reps)
    t_cold = _best_of(run_cold, reps)
    t_cached = _best_of(run_cached, reps)
    reference_rate = encodes / t_reference
    cold_rate = encodes / t_cold
    cached_rate = encodes / t_cached
    return {
        "unit": "encodes/s",
        "encodes": encodes,
        "reference_value": reference_rate,
        "value": cold_rate,
        "cached_value": cached_rate,
        "speedup": cold_rate / reference_rate,
        "cached_speedup": cached_rate / reference_rate,
    }


def _run_kernel_workload(run_ticks: int) -> int:
    """Surveillance-shaped kernel workload; returns events fired.

    The shape mirrors what the protocol stack does to the kernel without
    any protocol code: a periodic "frame" event whose action (a) restarts
    one watchdog alarm per source — the surveillance-timer rearm that
    dominates failure-detector traffic — and (b) schedules a burst of
    same-instant events at mixed priorities — the fan-out a frame delivery
    produces. Watchdogs outlive the rearm period, so they never fire;
    both cores therefore execute exactly ``frames * (1 + burst)`` events
    and the comparison is on provably identical work. Under the legacy
    core every rearm is a cancel + push (dead dataclass entries sifting
    through the heap) and every event is one ``step()``; the fast core
    reschedules in place and drains equal-time runs in batches.

    The 16-source / 6-burst mix reproduces the rearm density of the
    canonical 10-node membership scenario (~2.3 surveillance rearms per
    fired event), so the micro number extrapolates to protocol traffic.
    """
    from repro.sim.kernel import Simulator
    from repro.sim.timers import TimerService
    from repro.sim.trace import TraceRecorder

    sources = 16
    burst = 6
    period = 997
    watch = 16 * period

    sim = Simulator(trace=TraceRecorder(enabled=False))
    service = TimerService(sim)

    def noop() -> None:
        pass

    alarms = [
        service.start_alarm(watch, noop, name="watch") for _ in range(sources)
    ]

    def on_frame() -> None:
        for index in range(sources):
            alarm = alarms[index]
            if not service.restart_alarm(alarm, watch):
                service.cancel_alarm(alarm)
                alarms[index] = service.start_alarm(watch, noop, name="watch")
        for offset in range(burst):
            sim.schedule(0, noop, priority=offset & 1)
        sim.schedule(period, on_frame)

    sim.schedule(0, on_frame)
    sim.run_until(run_ticks)
    return sim.events_processed


def bench_kernel_throughput(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Micro: raw kernel events/s on the rearm + burst workload, fast vs seed."""
    run_ticks = 400_000 if quick else 2_000_000
    reps = repeats if repeats is not None else (3 if quick else 5)

    events_fast = _run_kernel_workload(run_ticks)  # warm-up + event count
    with legacy_core():
        events_legacy = _run_kernel_workload(run_ticks)
    if events_fast != events_legacy:
        raise RuntimeError(
            "fast and legacy kernels fired different event counts "
            f"({events_fast} vs {events_legacy}); equivalence is broken"
        )

    def run_legacy() -> None:
        with legacy_core():
            _run_kernel_workload(run_ticks)

    # Interleaved best-of, for the same reason as the macro benchmark.
    t_fast = float("inf")
    t_legacy = float("inf")
    for _ in range(reps):
        t_fast = min(t_fast, _timed(lambda: _run_kernel_workload(run_ticks)))
        t_legacy = min(t_legacy, _timed(run_legacy))
    fast_rate = events_fast / t_fast
    legacy_rate = events_legacy / t_legacy
    return {
        "unit": "events/s",
        "events": events_fast,
        "workload": {
            "run_ticks": run_ticks,
            "sources": 16,
            "burst": 6,
            "period_ticks": 997,
        },
        "reference_value": legacy_rate,
        "value": fast_rate,
        "speedup": fast_rate / legacy_rate,
    }


def _run_canonical_scenario(run_ms: float) -> int:
    """The canonical 10-node membership scenario; returns events fired."""
    config = CanelyConfig(
        capacity=CANONICAL_CONFIG["capacity"],
        tm=ms(CANONICAL_CONFIG["tm_ms"]),
        thb=ms(CANONICAL_CONFIG["thb_ms"]),
        tjoin_wait=ms(CANONICAL_CONFIG["tjoin_wait_ms"]),
    )
    net = CanelyNetwork(node_count=CANONICAL_NODES, config=config)
    net.join_all()
    net.run_for(ms(400))
    net.node(7).crash()
    net.run_for(ms(run_ms))
    assert net.views_agree()
    return net.sim.events_processed


def bench_event_throughput(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Macro: events/sec on the canonical scenario, fast core vs seed core."""
    run_ms = 200 if quick else 600
    reps = repeats if repeats is not None else (2 if quick else 3)

    events_fast = _run_canonical_scenario(run_ms)  # warm-up + event count
    with legacy_core():
        events_legacy = _run_canonical_scenario(run_ms)
    if events_fast != events_legacy:
        raise RuntimeError(
            "fast and legacy cores fired different event counts "
            f"({events_fast} vs {events_legacy}); equivalence is broken"
        )

    def run_legacy() -> None:
        with legacy_core():
            _run_canonical_scenario(run_ms)

    # Fast and legacy reps alternate so both cores sample the same host
    # conditions: timing all fast reps and then all legacy reps lets any
    # load shift between the two blocks land directly in the reported
    # speedup ratio.
    t_fast = float("inf")
    t_legacy = float("inf")
    for _ in range(reps):
        t_fast = min(t_fast, _timed(lambda: _run_canonical_scenario(run_ms)))
        t_legacy = min(t_legacy, _timed(run_legacy))
    fast_rate = events_fast / t_fast
    legacy_rate = events_legacy / t_legacy
    return {
        "unit": "events/s",
        "events": events_fast,
        "scenario": {
            "nodes": CANONICAL_NODES,
            "run_ms": run_ms,
            **CANONICAL_CONFIG,
        },
        "reference_value": legacy_rate,
        "value": fast_rate,
        "speedup": fast_rate / legacy_rate,
    }


def bench_campaign_wallclock(quick: bool = False) -> Dict[str, Any]:
    """Macro: wall-clock of a small sequential in-process campaign."""
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        scenarios=2 if quick else 6,
        seed=2003,
        node_min=6,
        node_max=10,
        run_ms=150.0 if quick else 300.0,
    )
    started = time.perf_counter()
    results = run_campaign(spec, workers=0)
    elapsed = time.perf_counter() - started
    return {
        "unit": "s",
        "value": elapsed,
        "lower_is_better": True,
        "scenarios": spec.scenarios,
        "verdicts": sorted(r.verdict for r in results),
    }


def environment() -> Dict[str, Any]:
    """Host metadata stamped into every report."""
    from repro.perf import compiled

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "compiled": compiled.status(),
    }


def run_benchmarks(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Run the full suite and return the report dict (``SCHEMA`` layout)."""
    results = {
        "frame_encoding": bench_frame_encoding(quick=quick, repeats=repeats),
        "kernel_throughput": bench_kernel_throughput(quick=quick, repeats=repeats),
        "event_throughput": bench_event_throughput(quick=quick, repeats=repeats),
        "campaign_wallclock": bench_campaign_wallclock(quick=quick),
    }
    return {
        "schema": SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "environment": environment(),
        "encoding_cache": encoding_cache_info(),
        "results": results,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write ``report`` as pretty-printed JSON (trailing newline included)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a report produced by :func:`write_report`."""
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported schema {report.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    return report


def _comparable_metrics(entry: Dict[str, Any]) -> Dict[str, float]:
    """The metrics of one result entry that participate in regression checks.

    ``speedup`` ratios are machine-portable and always compared; raw
    values are compared too (same-machine baselines), inverted for
    lower-is-better entries so "bigger is better" holds uniformly.
    """
    metrics: Dict[str, float] = {}
    if "speedup" in entry:
        metrics["speedup"] = entry["speedup"]
    value = entry.get("value")
    if isinstance(value, (int, float)) and value > 0:
        if entry.get("lower_is_better"):
            metrics["value"] = 1.0 / value
        else:
            metrics["value"] = float(value)
    return metrics


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    portable_only: bool = False,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns human-readable descriptions of every metric that dropped by
    more than ``threshold`` (a fraction, e.g. ``0.25``). With
    ``portable_only`` only machine-independent ``speedup`` ratios are
    checked — the right mode when baseline and current ran on different
    hardware.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1): {threshold}")
    regressions: List[str] = []
    base_results = baseline.get("results", {})
    for name, entry in current.get("results", {}).items():
        base_entry = base_results.get(name)
        if base_entry is None:
            continue
        base_metrics = _comparable_metrics(base_entry)
        for metric, now in _comparable_metrics(entry).items():
            if portable_only and metric != "speedup":
                continue
            then = base_metrics.get(metric)
            if then is None or then <= 0:
                continue
            if now < then * (1.0 - threshold):
                drop = 100.0 * (1.0 - now / then)
                regressions.append(
                    f"{name}.{metric}: {now:.4g} vs baseline "
                    f"{then:.4g} (-{drop:.1f}%, threshold "
                    f"{threshold * 100:.0f}%)"
                )
    return regressions


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable one-line-per-benchmark rendering of a report."""
    lines = [
        f"bench report ({report.get('generated_at', '?')}, "
        f"quick={report.get('quick', False)}, "
        f"python {report.get('environment', {}).get('python', '?')})"
    ]
    for name, entry in report.get("results", {}).items():
        unit = entry.get("unit", "")
        value = entry.get("value")
        line = f"  {name:<22} {value:>12.4g} {unit}"
        if "reference_value" in entry:
            line += f"  (reference {entry['reference_value']:.4g}, "
            line += f"speedup {entry.get('speedup', 0):.2f}x"
            if "cached_speedup" in entry:
                line += f", cached {entry['cached_speedup']:.0f}x"
            line += ")"
        lines.append(line)
    return "\n".join(lines)
