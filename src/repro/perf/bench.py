"""Micro + macro benchmark runner with a machine-readable trajectory.

``repro bench`` times the three layers the hot-path overhaul touched and
emits ``BENCH_core.json``:

* **frame_encoding** (micro) — exact stuffed wire lengths over a
  deterministic corpus of distinct frames. ``reference`` is the bit-list
  seed path, ``cold`` the table/integer path with the memo cache cleared
  every round, ``cached`` the steady-state dict-hit path.
* **kernel_throughput** (micro) — raw kernel events per wall-second on a
  surveillance-shaped workload (periodic events rearming watchdog alarms
  plus same-instant bursts), isolating the event-queue + dispatch layer
  this overhaul restructured: in-place reschedule and batched equal-time
  dispatch against the seed's cancel-and-push queue and ``step()`` loop.
  Both cores fire a provably identical event count.
* **event_throughput** (macro) — simulated events per wall-second on the
  canonical large-membership scenario (48 nodes: bootstrap, crash,
  detection, view change). ``reference`` runs the same scenario under
  :func:`repro.perf.legacy.legacy_core` — the seed's event queue,
  encoder and per-frame bus paths — and the runner asserts the protocol
  observables match, so the speedup is measured on identical work.
* **campaign_wallclock** (macro) — wall-clock seconds for a small
  sequential in-process campaign (``workers=0``), the unit of work large
  statistical campaigns fan out. ``reference`` runs the same campaign
  under the seed core, so the entry carries a machine-portable speedup
  ratio and participates in the CI gate.
* **qos_compute** (micro) — FD-QoS computations per wall-second
  (:func:`repro.obs.qos.compute_qos`) over the trace of a large
  membership scenario recorded columnar. ``reference`` answers the
  trace's bulk accessor through the row path — ``select`` materializing
  a :class:`~repro.sim.trace.TraceRecord` per match, then regathering
  the columns — so the speedup isolates the columnar
  ``category_columns`` batch read the QoS engine leans on; both sides
  must produce byte-identical reports.
* **stack_scaling** (macro) — events per wall-second on a full-stack
  surveillance scenario at 10 / 50 / 200 nodes, run under the shipped
  fast configuration. The headline check is the **per-event cost
  curve**: growing the membership 20x may not grow the per-event cost
  20x (``sublinear``), and the committed ratio is CI-gated through the
  portable ``speedup`` metric (linear ratio over measured ratio).

Every report carries environment metadata; :func:`compare_reports` checks
a current report against a committed baseline with a configurable
regression threshold. Machine-portable metrics (the ``speedup`` ratios)
are compared directly; machine-dependent absolutes (throughput, wall
seconds) are only compared when the baseline was recorded on request
(``repro bench`` against a local baseline), which CI does on one runner
class.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.can.bitstream import (
    clear_encoding_cache,
    encoding_cache_info,
    exact_frame_bits,
    exact_frame_bits_reference,
)
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.perf.legacy import legacy_core
from repro.sim.clock import ms

#: Report schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.bench/1"

#: Default regression threshold: fail when a metric drops by more than 25%.
DEFAULT_THRESHOLD = 0.25

#: The canonical membership scenario the macro benchmark times. A large
#: membership (48 of the RHV wire format's 64-node ceiling): the hot-path
#: work this overhaul targets — arbitration scans, delivery fan-out,
#: surveillance rearms, trace recording — all scale with the population,
#: so a small scenario under-weights exactly the costs the optimized
#: core removes.
CANONICAL_NODES = 48
CANONICAL_CONFIG = dict(capacity=64, tm_ms=50, thb_ms=10, tjoin_wait_ms=150)

#: Node populations the scaling benchmark sweeps. The two largest exceed
#: the membership layer's 64-node RHV wire format, so the sweep runs the
#: surveillance stack (bus -> standard layer -> failure detector -> FDA),
#: which has no architectural population cap — and is where the per-node
#: hot-path cost lives.
SCALING_NODE_COUNTS = [10, 50, 200]


@contextmanager
def fast_config() -> Iterator[None]:
    """The shipped fast configuration: every opt-in toggle enabled.

    The defaults keep :data:`repro.sim.timers.TIMER_WHEEL` and
    :data:`repro.sim.trace.COLUMNAR` off so the golden-trace tests pin
    the heap/row paths bit-identical against the seed; benchmarks time
    the configuration a large deployment would actually run.
    """
    import repro.can.bus as bus_mod
    import repro.sim.timers as timers_mod
    import repro.sim.trace as trace_mod

    saved = (
        timers_mod.TIMER_WHEEL,
        trace_mod.COLUMNAR,
        bus_mod.FILTERED_DELIVERY,
    )
    timers_mod.TIMER_WHEEL = True
    trace_mod.COLUMNAR = True
    bus_mod.FILTERED_DELIVERY = True
    try:
        yield
    finally:
        (
            timers_mod.TIMER_WHEEL,
            trace_mod.COLUMNAR,
            bus_mod.FILTERED_DELIVERY,
        ) = saved


def _timed(fn: Callable[[], Any]) -> float:
    """Wall-clock duration of one run of ``fn``."""
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Smallest wall-clock duration of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        elapsed = _timed(fn)
        if elapsed < best:
            best = elapsed
    return best


def _frame_corpus(count: int) -> List[tuple]:
    """A deterministic mix of extended data/remote frames (no RNG)."""
    corpus = []
    for index in range(count):
        identifier = (index * 0x9E3779B1) & ((1 << 29) - 1)
        remote = index % 3 == 0
        if remote:
            data = b""
        else:
            dlc = index % 9
            data = bytes(((index * 37 + offset * 11) & 0xFF) for offset in range(dlc))
        corpus.append((identifier, data, remote, True))
    return corpus


def bench_frame_encoding(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Micro: reference vs cold-fast vs cached wire-length computation."""
    corpus = _frame_corpus(100 if quick else 400)
    rounds = 5 if quick else 20
    reps = repeats if repeats is not None else (3 if quick else 5)

    def run_reference() -> None:
        for _ in range(rounds):
            for frame in corpus:
                exact_frame_bits_reference(*frame)

    def run_cold() -> None:
        for _ in range(rounds):
            clear_encoding_cache()
            for frame in corpus:
                exact_frame_bits(*frame)

    def run_cached() -> None:
        for frame in corpus:
            exact_frame_bits(*frame)
        for _ in range(rounds):
            for frame in corpus:
                exact_frame_bits(*frame)

    encodes = len(corpus) * rounds
    t_reference = _best_of(run_reference, reps)
    t_cold = _best_of(run_cold, reps)
    t_cached = _best_of(run_cached, reps)
    reference_rate = encodes / t_reference
    cold_rate = encodes / t_cold
    cached_rate = encodes / t_cached
    return {
        "unit": "encodes/s",
        "encodes": encodes,
        "reference_value": reference_rate,
        "value": cold_rate,
        "cached_value": cached_rate,
        "speedup": cold_rate / reference_rate,
        "cached_speedup": cached_rate / reference_rate,
    }


def _run_kernel_workload(run_ticks: int) -> int:
    """Surveillance-shaped kernel workload; returns events fired.

    The shape mirrors what the protocol stack does to the kernel without
    any protocol code: a periodic "frame" event whose action (a) restarts
    one watchdog alarm per source — the surveillance-timer rearm that
    dominates failure-detector traffic — and (b) schedules a burst of
    same-instant events at mixed priorities — the fan-out a frame delivery
    produces. Watchdogs outlive the rearm period, so they never fire;
    both cores therefore execute exactly ``frames * (1 + burst)`` events
    and the comparison is on provably identical work. Under the legacy
    core every rearm is a cancel + push (dead dataclass entries sifting
    through the heap) and every event is one ``step()``; the fast core
    reschedules in place and drains equal-time runs in batches.

    The 16-source / 6-burst mix reproduces the rearm density of a small
    (10-node) membership scenario (~2.3 surveillance rearms per fired
    event), so the micro number extrapolates to protocol traffic.
    """
    from repro.sim.kernel import Simulator
    from repro.sim.timers import TimerService
    from repro.sim.trace import TraceRecorder

    sources = 16
    burst = 6
    period = 997
    watch = 16 * period

    sim = Simulator(trace=TraceRecorder(enabled=False))
    service = TimerService(sim)

    def noop() -> None:
        pass

    alarms = [
        service.start_alarm(watch, noop, name="watch") for _ in range(sources)
    ]

    def on_frame() -> None:
        for index in range(sources):
            alarm = alarms[index]
            if not service.restart_alarm(alarm, watch):
                service.cancel_alarm(alarm)
                alarms[index] = service.start_alarm(watch, noop, name="watch")
        for offset in range(burst):
            sim.schedule(0, noop, priority=offset & 1)
        sim.schedule(period, on_frame)

    sim.schedule(0, on_frame)
    sim.run_until(run_ticks)
    return sim.events_processed


def bench_kernel_throughput(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Micro: raw kernel events/s on the rearm + burst workload, fast vs seed."""
    run_ticks = 400_000 if quick else 2_000_000
    reps = repeats if repeats is not None else (3 if quick else 5)

    events_fast = _run_kernel_workload(run_ticks)  # warm-up + event count
    with legacy_core():
        events_legacy = _run_kernel_workload(run_ticks)
    if events_fast != events_legacy:
        raise RuntimeError(
            "fast and legacy kernels fired different event counts "
            f"({events_fast} vs {events_legacy}); equivalence is broken"
        )

    def run_legacy() -> None:
        with legacy_core():
            _run_kernel_workload(run_ticks)

    # Interleaved best-of, for the same reason as the macro benchmark.
    t_fast = float("inf")
    t_legacy = float("inf")
    for _ in range(reps):
        t_fast = min(t_fast, _timed(lambda: _run_kernel_workload(run_ticks)))
        t_legacy = min(t_legacy, _timed(run_legacy))
    fast_rate = events_fast / t_fast
    legacy_rate = events_legacy / t_legacy
    return {
        "unit": "events/s",
        "events": events_fast,
        "workload": {
            "run_ticks": run_ticks,
            "sources": 16,
            "burst": 6,
            "period_ticks": 997,
        },
        "reference_value": legacy_rate,
        "value": fast_rate,
        "speedup": fast_rate / legacy_rate,
    }


def _run_canonical_scenario(run_ms: float) -> Dict[str, Any]:
    """The canonical large-membership scenario; returns its outcome.

    The outcome dict carries the event count plus every protocol-level
    observable the throughput benchmark asserts equivalence on: final
    views, physical frame count and wire occupancy.
    """
    config = CanelyConfig(
        capacity=CANONICAL_CONFIG["capacity"],
        tm=ms(CANONICAL_CONFIG["tm_ms"]),
        thb=ms(CANONICAL_CONFIG["thb_ms"]),
        tjoin_wait=ms(CANONICAL_CONFIG["tjoin_wait_ms"]),
    )
    net = CanelyNetwork(node_count=CANONICAL_NODES, config=config)
    net.join_all()
    net.run_for(ms(400))
    net.node(7).crash()
    net.run_for(ms(run_ms))
    assert net.views_agree()
    views = {}
    for node in net.correct_nodes():
        view = node.view()
        views[node.node_id] = (sorted(view.members), view.round_index)
    return {
        "events": net.sim.events_processed,
        "views": views,
        "physical_frames": net.bus.stats.physical_frames,
        "busy_bits": net.bus.stats.busy_bits,
    }


def bench_event_throughput(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Macro: events/sec on the canonical scenario, fast core vs seed core.

    The fast side runs the shipped :func:`fast_config` (timer wheel,
    columnar trace, filtered delivery), which trades bit-identical kernel
    bookkeeping for outcome equivalence: the wheel replaces per-alarm
    events with cursor events, so the two cores fire *different event
    counts* on identical protocol work. The runner therefore asserts the
    protocol observables match — views, physical frames, wire occupancy —
    and reports the wall-clock ratio of the identical scenario as the
    speedup.
    """
    run_ms = 200 if quick else 600
    reps = repeats if repeats is not None else (2 if quick else 3)

    with fast_config():
        fast_outcome = _run_canonical_scenario(run_ms)  # warm-up + outcome
    with legacy_core():
        legacy_outcome = _run_canonical_scenario(run_ms)
    for key in ("views", "physical_frames", "busy_bits"):
        if fast_outcome[key] != legacy_outcome[key]:
            raise RuntimeError(
                f"fast and legacy cores disagree on {key} "
                f"({fast_outcome[key]!r} vs {legacy_outcome[key]!r}); "
                "equivalence is broken"
            )

    def run_fast() -> None:
        with fast_config():
            _run_canonical_scenario(run_ms)

    def run_legacy() -> None:
        with legacy_core():
            _run_canonical_scenario(run_ms)

    # Fast and legacy reps alternate so both cores sample the same host
    # conditions: timing all fast reps and then all legacy reps lets any
    # load shift between the two blocks land directly in the reported
    # speedup ratio.
    t_fast = float("inf")
    t_legacy = float("inf")
    for _ in range(reps):
        t_fast = min(t_fast, _timed(run_fast))
        t_legacy = min(t_legacy, _timed(run_legacy))
    events_fast = fast_outcome["events"]
    events_legacy = legacy_outcome["events"]
    return {
        "unit": "events/s",
        "events": events_fast,
        "reference_events": events_legacy,
        "scenario": {
            "nodes": CANONICAL_NODES,
            "run_ms": run_ms,
            **CANONICAL_CONFIG,
        },
        "reference_value": events_legacy / t_legacy,
        "value": events_fast / t_fast,
        # Wall-clock ratio on the identical scenario: the event counts
        # differ between the cores (see docstring), so a rate ratio would
        # conflate bookkeeping volume with speed.
        "speedup": t_legacy / t_fast,
    }


def bench_campaign_wallclock(quick: bool = False) -> Dict[str, Any]:
    """Macro: wall-clock of a small sequential in-process campaign.

    The same campaign also runs under the seed core, giving the entry a
    machine-portable ``speedup`` ratio — which is what wires it into the
    CI regression gate (raw wall seconds only compare on a same-machine
    baseline). The corpus is deliberately identical in quick and full
    mode: the speedup ratio shifts with scenario count and horizon (the
    fixed per-scenario setup dilutes it), so a quick CI run is only
    comparable against the committed full-mode baseline if both measure
    the same campaign.
    """
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        scenarios=6,
        seed=2003,
        node_min=6,
        node_max=10,
        run_ms=300.0,
    )

    def run_fast() -> List[Any]:
        with fast_config():
            return run_campaign(spec, workers=0)

    def run_reference() -> List[Any]:
        with legacy_core():
            return run_campaign(spec, workers=0)

    results = run_fast()  # warm-up + verdicts
    verdicts = sorted(r.verdict for r in results)
    reference_results = run_reference()
    if sorted(r.verdict for r in reference_results) != verdicts:
        raise RuntimeError(
            "fast and legacy cores returned different campaign verdicts; "
            "equivalence is broken"
        )
    # Interleaved best-of-2, for the same reason as the macro benchmark.
    elapsed = float("inf")
    reference_elapsed = float("inf")
    for _ in range(2):
        elapsed = min(elapsed, _timed(run_fast))
        reference_elapsed = min(reference_elapsed, _timed(run_reference))
    return {
        "unit": "s",
        "value": elapsed,
        "reference_value": reference_elapsed,
        "lower_is_better": True,
        "scenarios": spec.scenarios,
        "verdicts": verdicts,
        "speedup": reference_elapsed / elapsed,
    }


def _run_surveillance_network(
    node_count: int, run_ms: float
) -> Dict[str, Any]:
    """Full-stack surveillance scenario at ``node_count`` nodes.

    Every node runs the real stack below the membership layer — CAN
    controller, standard layer, timer service, FDA and failure detector —
    and monitors every node (itself included, so silent nodes heartbeat
    with explicit life-signs). One node crashes mid-run; the scenario
    asserts every survivor's detector reports exactly that failure, so
    the sweep measures correct protocol work, not an idling bus. Returns
    the event count and wall seconds of the run.
    """
    from repro.can.bus import CanBus
    from repro.can.controller import CanController
    from repro.can.driver import CanStandardLayer
    from repro.core.failure_detector import FailureDetector
    from repro.core.fda import FdaProtocol
    from repro.sim.kernel import Simulator
    from repro.sim.timers import TimerService

    # ``Ttd`` must cover the synchronized life-sign burst of the whole
    # population draining through the bus; ``for_population`` derives it.
    config = CanelyConfig.for_population(node_count, capacity=64, thb=ms(50))
    started = time.perf_counter()
    sim = Simulator()
    bus = CanBus(sim)
    failures: Dict[int, List[int]] = {}
    for node_id in range(node_count):
        controller = CanController(node_id)
        bus.attach(controller)
        layer = CanStandardLayer(controller)
        timers = TimerService(sim, node=node_id)
        fda = FdaProtocol(layer, sim=sim)
        detector = FailureDetector(layer, timers, config, fda)
        failures[node_id] = []
        detector.on_failure(failures[node_id].append)
        for monitored in range(node_count):
            detector.start(monitored)
    settle = ms(120)
    sim.run_until(settle)
    crashed = node_count // 2
    bus.controller(crashed).crash()
    sim.run_until(settle + config.thb + config.ttd + ms(run_ms))
    elapsed = time.perf_counter() - started
    for node_id, seen in failures.items():
        if node_id != crashed and seen != [crashed]:
            raise RuntimeError(
                f"node {node_id} saw failures {seen}, expected "
                f"[{crashed}]: the scaling scenario is broken"
            )
    return {"events": sim.events_processed, "seconds": elapsed}


class _RowScanColumns:
    """Adapter answering ``category_columns`` through the row path.

    Wraps a (columnar) trace but routes the bulk accessor through the
    base recorder's generic implementation — ``select`` materializing a
    :class:`~repro.sim.trace.TraceRecord` object per match, then
    regathering the columns — which is what every analysis query cost
    before the columnar batch read. Everything else delegates, so the
    adapter drops in anywhere a trace does.
    """

    def __init__(self, trace: Any) -> None:
        self._trace = trace

    def category_columns(self, category: str):
        from repro.sim.trace import TraceRecorder

        return TraceRecorder.category_columns(self._trace, category)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._trace, name)


def bench_qos_compute(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Micro: FD-QoS computations/s, columnar batch read vs row scan.

    Records one large-membership scenario (staggered crashes so the
    ``msh.change`` category is wide) under the shipped columnar trace,
    then times :func:`repro.obs.qos.compute_qos` over it — once against
    the trace's native ``category_columns`` and once through
    :class:`_RowScanColumns`. The QoS engine reads the trace *only*
    through the bulk accessor, so the ratio isolates the columnar
    advantage on identical analysis work; the reports must match
    byte-for-byte.
    """
    from repro.obs.qos import compute_qos

    node_count = 24 if quick else CANONICAL_NODES
    reps = repeats if repeats is not None else (2 if quick else 3)
    rounds = 3 if quick else 10

    config = CanelyConfig(
        capacity=CANONICAL_CONFIG["capacity"],
        tm=ms(CANONICAL_CONFIG["tm_ms"]),
        thb=ms(CANONICAL_CONFIG["thb_ms"]),
        tjoin_wait=ms(CANONICAL_CONFIG["tjoin_wait_ms"]),
    )
    with fast_config():
        net = CanelyNetwork(node_count=node_count, config=config)
        net.join_all()
        net.run_for(ms(400))
        base = net.sim.now
        crash_times: Dict[int, int] = {}
        for index, victim in enumerate(range(1, node_count, node_count // 5)):
            at = base + ms(30 * index)
            crash_times[victim] = at
            net.sim.schedule_at(at, net.node(victim).crash)
        net.run_for(ms(150 if quick else 300))

    trace = net.sim.trace
    members = sorted(net.nodes)
    horizon = net.sim.now
    row_view = _RowScanColumns(trace)

    def one(source: Any) -> Any:
        return compute_qos(
            source,
            nodes=members,
            start=base,
            end=horizon,
            crash_times=crash_times,
        )

    fast_report = one(trace)
    if fast_report.to_json() != one(row_view).to_json():
        raise RuntimeError(
            "columnar and row-scan QoS reports differ; the bulk "
            "accessor is broken"
        )

    def run_fast() -> None:
        for _ in range(rounds):
            one(trace)

    def run_reference() -> None:
        for _ in range(rounds):
            one(row_view)

    # Interleaved best-of, for the same reason as the macro benchmark.
    t_fast = float("inf")
    t_reference = float("inf")
    for _ in range(reps):
        t_fast = min(t_fast, _timed(run_fast))
        t_reference = min(t_reference, _timed(run_reference))
    fast_rate = rounds / t_fast
    reference_rate = rounds / t_reference
    return {
        "unit": "computes/s",
        "scenario": {
            "nodes": node_count,
            "crashes": len(crash_times),
            "msh_changes": trace.count("msh.change"),
        },
        "reference_value": reference_rate,
        "value": fast_rate,
        "speedup": fast_rate / reference_rate,
    }


def bench_stack_scaling(quick: bool = False) -> Dict[str, Any]:
    """Macro: per-event cost across the :data:`SCALING_NODE_COUNTS` sweep.

    Runs the surveillance scenario at each population under the shipped
    :func:`fast_config` and fits the per-event wall cost curve. A frame
    event's work necessarily touches its recipients, so total cost grows
    with the population — the claim under test is that the *per-event*
    cost does not grow linearly with it: ``cost_ratio`` (largest over
    smallest population) must stay below ``linear_ratio`` (the population
    ratio). The portable gated metric is ``linear_ratio / cost_ratio`` —
    bigger is better, 1.0 is the linear-growth floor.
    """
    run_ms = 60 if quick else 200
    reps = 1 if quick else 2

    per_node: Dict[str, Dict[str, Any]] = {}
    with fast_config():
        for node_count in SCALING_NODE_COUNTS:
            best: Optional[Dict[str, Any]] = None
            for _ in range(reps):
                outcome = _run_surveillance_network(node_count, run_ms)
                if best is None or outcome["seconds"] < best["seconds"]:
                    best = outcome
            assert best is not None
            events = best["events"]
            seconds = best["seconds"]
            per_node[str(node_count)] = {
                "events": events,
                "seconds": round(seconds, 6),
                "events_per_s": events / seconds,
                "cost_us": 1e6 * seconds / events,
            }

    smallest = per_node[str(SCALING_NODE_COUNTS[0])]
    largest = per_node[str(SCALING_NODE_COUNTS[-1])]
    cost_ratio = largest["cost_us"] / smallest["cost_us"]
    linear_ratio = SCALING_NODE_COUNTS[-1] / SCALING_NODE_COUNTS[0]
    return {
        "unit": "events/s",
        "value": largest["events_per_s"],
        "nodes": list(SCALING_NODE_COUNTS),
        "run_ms": run_ms,
        "per_node": per_node,
        "cost_ratio": cost_ratio,
        "linear_ratio": linear_ratio,
        "sublinear": cost_ratio < linear_ratio,
        "speedup": linear_ratio / cost_ratio,
    }


def environment() -> Dict[str, Any]:
    """Host metadata stamped into every report.

    ``toggles`` records the state of every switchable fast path at report
    time, so a number can always be traced back to the configuration that
    produced it (the ``*_throughput`` fast sides additionally force the
    shipped :func:`fast_config` regardless of these defaults).
    """
    import repro.can.bus as bus_mod
    import repro.sim.kernel as kernel_mod
    import repro.sim.timers as timers_mod
    import repro.sim.trace as trace_mod
    from repro.perf import compiled
    from repro.sim.event import EventQueue
    from repro.workloads.builder import DEFAULT_IDLE_SKIP

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "compiled": compiled.status(),
        "toggles": {
            "batch_dispatch": kernel_mod.BATCH_DISPATCH,
            "fast_rearm": timers_mod.FAST_REARM,
            "tuple_entries": bool(getattr(EventQueue, "TUPLE_ENTRIES", False)),
            "idle_skip": DEFAULT_IDLE_SKIP,
            "timer_wheel": timers_mod.TIMER_WHEEL,
            "filtered_delivery": bus_mod.FILTERED_DELIVERY,
            "columnar_trace": trace_mod.COLUMNAR,
        },
    }


#: The suite, in execution order; ``run_benchmarks(only=...)`` filters it.
BENCHMARKS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "frame_encoding": bench_frame_encoding,
    "kernel_throughput": bench_kernel_throughput,
    "event_throughput": bench_event_throughput,
    "campaign_wallclock": lambda quick, repeats: bench_campaign_wallclock(
        quick=quick
    ),
    "qos_compute": bench_qos_compute,
    "stack_scaling": lambda quick, repeats: bench_stack_scaling(quick=quick),
}


def run_benchmarks(
    quick: bool = False,
    repeats: Optional[int] = None,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Run the suite and return the report dict (``SCHEMA`` layout).

    ``only`` restricts the run to the named benchmarks (suite order is
    kept); unknown names raise so a CI job cannot silently gate nothing.
    """
    if only:
        unknown = sorted(set(only) - set(BENCHMARKS))
        if unknown:
            raise ValueError(
                f"unknown benchmarks: {', '.join(unknown)} "
                f"(available: {', '.join(BENCHMARKS)})"
            )
        selected = [name for name in BENCHMARKS if name in set(only)]
    else:
        selected = list(BENCHMARKS)
    results = {
        name: BENCHMARKS[name](quick=quick, repeats=repeats)
        for name in selected
    }
    return {
        "schema": SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "environment": environment(),
        "encoding_cache": encoding_cache_info(),
        "results": results,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write ``report`` as pretty-printed JSON (trailing newline included)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load a report produced by :func:`write_report`."""
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unsupported schema {report.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    return report


def _comparable_metrics(entry: Dict[str, Any]) -> Dict[str, float]:
    """The metrics of one result entry that participate in regression checks.

    ``speedup`` ratios are machine-portable and always compared; raw
    values are compared too (same-machine baselines), inverted for
    lower-is-better entries so "bigger is better" holds uniformly.
    """
    metrics: Dict[str, float] = {}
    if "speedup" in entry:
        metrics["speedup"] = entry["speedup"]
    value = entry.get("value")
    if isinstance(value, (int, float)) and value > 0:
        if entry.get("lower_is_better"):
            metrics["value"] = 1.0 / value
        else:
            metrics["value"] = float(value)
    return metrics


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    portable_only: bool = False,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns human-readable descriptions of every metric that dropped by
    more than ``threshold`` (a fraction, e.g. ``0.25``). With
    ``portable_only`` only machine-independent ``speedup`` ratios are
    checked — the right mode when baseline and current ran on different
    hardware.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1): {threshold}")
    regressions: List[str] = []
    base_results = baseline.get("results", {})
    for name, entry in current.get("results", {}).items():
        base_entry = base_results.get(name)
        if base_entry is None:
            continue
        base_metrics = _comparable_metrics(base_entry)
        for metric, now in _comparable_metrics(entry).items():
            if portable_only and metric != "speedup":
                continue
            then = base_metrics.get(metric)
            if then is None or then <= 0:
                continue
            if now < then * (1.0 - threshold):
                drop = 100.0 * (1.0 - now / then)
                regressions.append(
                    f"{name}.{metric}: {now:.4g} vs baseline "
                    f"{then:.4g} (-{drop:.1f}%, threshold "
                    f"{threshold * 100:.0f}%)"
                )
    return regressions


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable one-line-per-benchmark rendering of a report."""
    lines = [
        f"bench report ({report.get('generated_at', '?')}, "
        f"quick={report.get('quick', False)}, "
        f"python {report.get('environment', {}).get('python', '?')})"
    ]
    for name, entry in report.get("results", {}).items():
        unit = entry.get("unit", "")
        value = entry.get("value")
        line = f"  {name:<22} {value:>12.4g} {unit}"
        if "reference_value" in entry:
            line += f"  (reference {entry['reference_value']:.4g}, "
            line += f"speedup {entry.get('speedup', 0):.2f}x"
            if "cached_speedup" in entry:
                line += f", cached {entry['cached_speedup']:.0f}x"
            line += ")"
        lines.append(line)
    return "\n".join(lines)
