"""Optional compiled build of the simulation core (``REPRO_COMPILED``).

The hot modules — :mod:`repro.sim.event`, :mod:`repro.sim.kernel` and
:mod:`repro.can.bitstream` — can be compiled to C extensions for an extra
constant-factor speedup on top of the pure-Python fast path. The build is
strictly opt-in and build-time gated:

* ``REPRO_COMPILED=1 python setup.py build_ext --inplace`` (or
  ``python tools/build_compiled.py``) compiles the modules in place when a
  toolchain is available; the resulting extension modules then shadow the
  ``.py`` sources on import.
* Without the flag — or without a toolchain — nothing is built and the
  pure-Python modules load unchanged, so the default installation stays
  seed-faithful and fully patchable (the A/B toggles
  :data:`repro.sim.kernel.BATCH_DISPATCH` / :data:`repro.sim.timers.FAST_REARM`
  and the :func:`repro.perf.legacy.legacy_core` reference core all rely on
  live module attributes).

Cython (pure-Python mode, writable module dicts — the reference core's
monkeypatching keeps working) is preferred; mypyc is used only when
explicitly selected via ``REPRO_COMPILED_BACKEND=mypyc``, since mypyc
freezes module globals and is therefore incompatible with the A/B and
legacy-core toggles. This module only *reports*; the build itself lives in
``setup.py`` / ``tools/build_compiled.py``.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Dict, Optional

#: The modules the compiled build covers, in dependency order.
COMPILED_MODULES = (
    "repro.sim.event",
    "repro.sim.kernel",
    "repro.can.bitstream",
)

#: Values of ``REPRO_COMPILED`` that request the compiled build.
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Import suffixes that mark a module as a compiled extension.
_EXTENSION_SUFFIXES = (".so", ".pyd")


def requested(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_COMPILED`` asks for the compiled build."""
    env = environ if environ is not None else os.environ
    return env.get("REPRO_COMPILED", "").strip().lower() in _TRUTHY


def backend(environ: Optional[Dict[str, str]] = None) -> str:
    """The requested compiler backend: ``"cython"`` (default) or ``"mypyc"``."""
    env = environ if environ is not None else os.environ
    choice = env.get("REPRO_COMPILED_BACKEND", "cython").strip().lower()
    return choice if choice in ("cython", "mypyc") else "cython"


def available_toolchain() -> Optional[str]:
    """The importable compiler backend, or ``None`` when there is none."""
    preferred = backend()
    order = (preferred, "mypyc" if preferred == "cython" else "cython")
    for name in order:
        module = "Cython.Build" if name == "cython" else "mypyc.build"
        try:
            importlib.import_module(module)
        except ImportError:
            continue
        return name
    return None


def module_status() -> Dict[str, bool]:
    """Per-module flag: is it currently loaded as a compiled extension?"""
    status: Dict[str, bool] = {}
    for name in COMPILED_MODULES:
        module = importlib.import_module(name)
        origin = getattr(module, "__file__", "") or ""
        status[name] = origin.endswith(_EXTENSION_SUFFIXES)
    return status


def active() -> bool:
    """True when at least one core module runs compiled."""
    return any(module_status().values())


def status() -> Dict[str, Any]:
    """The full compiled-build status (stamped into bench reports)."""
    return {
        "requested": requested(),
        "backend": backend(),
        "toolchain": available_toolchain(),
        "modules": module_status(),
        "active": active(),
    }
