"""Performance tooling: benchmark runner and seed-faithful reference core."""

from repro.perf.bench import (
    DEFAULT_THRESHOLD,
    SCHEMA,
    compare_reports,
    load_report,
    render_report,
    run_benchmarks,
    write_report,
)
from repro.perf.legacy import LegacyEvent, LegacyEventQueue, legacy_core

__all__ = [
    "DEFAULT_THRESHOLD",
    "SCHEMA",
    "compare_reports",
    "load_report",
    "render_report",
    "run_benchmarks",
    "write_report",
    "LegacyEvent",
    "LegacyEventQueue",
    "legacy_core",
]
