"""Seed-faithful reference implementations of the simulation core.

The hot-path overhaul (table-driven frame encoding, tuple-based event
queue, inlined kernel loop) must change *no simulated outcome*. This module
retains the original, slower core exactly as the seed shipped it:

* :class:`LegacyEventQueue` — the ``order=True`` dataclass heap entries
  whose generated ``__lt__`` rebuilds comparison tuples on every sift.
* :func:`_legacy_start_next` / :func:`_legacy_complete` /
  :func:`_legacy_deliver_all` — the bus completion path exactly as it was
  before the overhaul: the stuffed frame length is computed **twice** per
  transmission (once for the duration, once for accounting) and every
  trace record is emitted without the ``wants()`` pre-check.
* :func:`legacy_core` — a context manager that builds every new
  :class:`~repro.sim.kernel.Simulator` on the legacy queue, forces the
  bit-list reference encoder (no wire-length cache) and swaps the bus
  completion path for the pre-overhaul bodies.

Two consumers: the golden-trace equivalence tests run whole scenarios under
``legacy_core()`` and assert byte-identical traces against the fast core,
and ``repro bench`` measures both to report honest before/after numbers.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.can import bus as _bus
from repro.can.bitstream import (
    ERROR_FRAME_BITS,
    INTERFRAME_BITS,
    SUSPEND_TRANSMISSION_BITS,
    reference_encoding,
)
from repro.can.controller import ControllerState
from repro.can.errormodel import FaultKind
from repro.sim import kernel as _kernel

#: Compact the heap only past this size (mirrors the seed constant).
_PURGE_MIN_HEAP = 64


@dataclass(order=True)
class LegacyEvent:
    """The seed's heap entry: an order-generated dataclass."""

    time: int
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["LegacyEventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None


class LegacyEventQueue:
    """The seed's binary-heap queue of :class:`LegacyEvent` objects.

    ``TUPLE_ENTRIES`` is False, so the kernel drives it through the generic
    ``peek_time``/``pop`` path instead of the inlined tuple loop — exactly
    the dispatch cost the seed paid.
    """

    TUPLE_ENTRIES = False

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def __bool__(self) -> bool:
        return len(self._heap) > self._cancelled

    def push(
        self,
        time: int,
        action: Callable[[], None],
        priority: int = 0,
    ) -> LegacyEvent:
        event = LegacyEvent(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
        )
        event._queue = self
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            len(self._heap) > _PURGE_MIN_HEAP
            and self._cancelled * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def pop(self) -> Optional[LegacyEvent]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        for event in self._heap:
            event.cancelled = True
            event._queue = None
        self._heap.clear()
        self._cancelled = 0


# -- pre-overhaul bus completion path ---------------------------------------
#
# Verbatim transcriptions of CanBus._start_next/_complete/_deliver_all/
# _resolve_fault as they stood before the hot-path overhaul, modulo the
# metric attribute names the observability layer introduced. The load-
# bearing differences: the stuffed frame length is computed twice per
# transmission (`wire_bits` in _start_next for the duration and again in
# _complete for accounting) and trace records are emitted without the
# `wants()` pre-check. Behaviour is identical; only the cost differs.


def _legacy_start_next(self) -> None:
    offers = [
        request
        for controller in self._controllers.values()
        if (request := controller.head_request()) is not None
    ]
    if not offers:
        return
    offers.sort(key=lambda r: r.priority_key)
    winner = offers[0]

    requests = [winner]
    for other in offers[1:]:
        if other is winner:
            continue
        same_id = other.frame.identifier == winner.frame.identifier
        if not same_id:
            continue
        if other.frame == winner.frame:
            if self.clustering:
                requests.append(other)
            continue
        if not other.frame.remote and not winner.frame.remote:
            raise _bus.BusError(
                f"two different data frames contend with identifier "
                f"{winner.frame.identifier:#x}: {winner.frame!r} vs "
                f"{other.frame!r}"
            )

    senders = []
    for request in requests:
        owner = self._owner_of(request)
        owner.take(request)
        senders.append(owner)

    self._busy = True
    self._current = _bus._Transmission(
        frame=winner.frame,
        senders=senders,
        requests=requests,
        started_at=self._sim.now,
    )
    self.stats.clustered_requests += len(requests) - 1
    if len(requests) > 1:
        self._m_clustered_inc(len(requests) - 1)
    duration = self.timing.bits_to_ticks(
        winner.frame.wire_bits(with_interframe=False)
    )
    self._sim.schedule(duration, self._complete)


def _legacy_complete(self) -> None:
    tx = self._current
    assert tx is not None
    self._current = None
    self._tx_index += 1
    self.stats.physical_frames += 1
    self._m_frames_inc()

    alive = self.alive_controllers()
    sender_ids = [c.node_id for c in tx.senders]
    receiver_ids = [c.node_id for c in alive]
    verdict = self.injector.verdict(
        tx.frame, sender_ids, receiver_ids, self._tx_index - 1
    )

    # The pre-overhaul second encode of the frame already timed on the wire.
    frame_bits = tx.frame.wire_bits(with_interframe=False)
    overhead_bits = INTERFRAME_BITS
    type_name = tx.frame.mid.mtype.name

    if verdict.kind is FaultKind.NONE:
        self._deliver_all(tx, alive)
    else:
        self.stats.error_frames += 1
        self._m_errors_inc()
        overhead_bits += ERROR_FRAME_BITS
        if any(
            s.state is ControllerState.ERROR_PASSIVE and s.alive
            for s in tx.senders
        ):
            overhead_bits += SUSPEND_TRANSMISSION_BITS
        self._resolve_fault(tx, alive, verdict)

    self.stats.charge(type_name, frame_bits + overhead_bits)
    self._m_busy_bits_inc(frame_bits + overhead_bits)
    self._m_utilization_set(self.utilization())
    self._sim.trace.record(
        self._sim.now,
        "bus.tx",
        node=sender_ids[0] if sender_ids else -1,
        mid=tx.frame.mid,
        remote=tx.frame.remote,
        senders=tuple(sender_ids),
        bits=frame_bits + overhead_bits,
        kind=verdict.kind.value,
        attempt=tx.requests[0].attempts,
    )

    self._sim.schedule(
        self.timing.bits_to_ticks(overhead_bits), self._go_idle
    )


def _legacy_deliver_all(self, tx, alive) -> None:
    for sender, request in zip(tx.senders, tx.requests):
        if sender.alive:
            sender.finish_success(request)
    for controller in alive:
        if controller.alive:
            controller.deliver(tx.frame)
            self._sim.trace.record(
                self._sim.now,
                "bus.deliver",
                node=controller.node_id,
                mid=tx.frame.mid,
                remote=tx.frame.remote,
            )


@contextmanager
def legacy_core() -> Iterator[None]:
    """Run with the seed-faithful core: legacy queue, encoder and bus path.

    Simulators constructed inside the block use :class:`LegacyEventQueue`,
    every wire length comes from the bit-list reference path with the memo
    cache bypassed, and the bus completion path reverts to the
    pre-overhaul bodies (double encode per transmission, unguarded trace
    records).
    """
    original_queue = _kernel.EventQueue
    original_start_next = _bus.CanBus._start_next
    original_complete = _bus.CanBus._complete
    original_deliver_all = _bus.CanBus._deliver_all
    _kernel.EventQueue = LegacyEventQueue  # type: ignore[assignment]
    _bus.CanBus._start_next = _legacy_start_next
    _bus.CanBus._complete = _legacy_complete
    _bus.CanBus._deliver_all = _legacy_deliver_all
    try:
        with reference_encoding():
            yield
    finally:
        _kernel.EventQueue = original_queue
        _bus.CanBus._start_next = original_start_next
        _bus.CanBus._complete = original_complete
        _bus.CanBus._deliver_all = original_deliver_all
