"""RELCAN — lazy two-phase reliable broadcast.

From [18]: eager diffusion pays its (small) echo cost on *every* message.
RELCAN defers that cost to the failure case: the sender broadcasts the
message and, upon confirmation of its own transmission (``can-data.cnf``),
broadcasts a short CONFIRM control message (a remote frame, clusterable).
Recipients buffer the message and deliver it when the CONFIRM arrives — at
that point CAN's retry mechanism guarantees every correct node has the
message. If the CONFIRM does not arrive within the protocol timeout (sender
crashed mid-broadcast, possibly leaving an inconsistent omission behind),
the recipients that *do* hold the message fall back to eager diffusion:
retransmit it, then deliver.

Failure-free cost: one data frame + one clustered remote frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.sim.timers import Alarm, TimerService

DeliverCallback = Callable[[int, int, bytes], None]

#: ``ref`` namespace split: CONFIRM control messages reuse the message ref.
_CONFIRM = MessageType.BCTRL


@dataclass
class _PendingMessage:
    data: bytes
    delivered: bool = False
    alarm: Optional[Alarm] = None
    echoed: bool = False


class Relcan:
    """Per-node RELCAN protocol entity.

    Args:
        layer: the node's CAN standard layer.
        timers: the node's timer service.
        confirm_timeout: how long a recipient waits for the sender's
            CONFIRM before falling back to eager diffusion (must exceed the
            worst-case transmission delay ``Ttd``).
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        confirm_timeout: int,
        mtype: MessageType = MessageType.DATA,
    ) -> None:
        self._layer = layer
        self._timers = timers
        self._timeout = confirm_timeout
        self._mtype = mtype
        self._pending: Dict[MessageId, _PendingMessage] = {}
        self._deliver: Optional[DeliverCallback] = None
        self._next_ref = 0
        layer.add_data_ind(self._on_data_ind, mtype=mtype)
        layer.add_data_cnf(self._on_data_cnf, mtype=mtype)
        layer.add_rtr_ind(self._on_confirm, mtype=_CONFIRM)

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register the upper-layer delivery callback ``(sender, ref, data)``."""
        self._deliver = callback

    def broadcast(self, data: bytes) -> int:
        """Reliably broadcast ``data``; returns the message reference."""
        ref = self._next_ref
        self._next_ref += 1
        mid = MessageId(self._mtype, node=self._layer.node_id, ref=ref)
        self._layer.data_req(mid, data)
        return ref

    # -- phase 1: the message ---------------------------------------------------

    def _on_data_ind(self, mid: MessageId, data: bytes) -> None:
        entry = self._pending.get(mid)
        if entry is None:
            entry = _PendingMessage(data=data)
            self._pending[mid] = entry
            entry.alarm = self._timers.start_alarm(
                self._timeout, lambda m=mid: self._on_timeout(m)
            )
        else:
            entry.data = data

    def _on_data_cnf(self, mid: MessageId) -> None:
        # Our own message went out; issue the confirmation (phase 2).
        self._layer.rtr_req(MessageId(_CONFIRM, node=mid.node, ref=mid.ref))

    # -- phase 2: the confirmation -------------------------------------------------

    def _on_confirm(self, confirm_mid: MessageId) -> None:
        mid = MessageId(self._mtype, node=confirm_mid.node, ref=confirm_mid.ref)
        entry = self._pending.get(mid)
        if entry is None or entry.delivered:
            return
        self._timers.cancel_alarm(entry.alarm)
        self._deliver_once(mid, entry)

    # -- failure fallback: eager diffusion -----------------------------------------

    def _on_timeout(self, mid: MessageId) -> None:
        entry = self._pending.get(mid)
        if entry is None or entry.delivered:
            return
        # Sender silent: diffuse the buffered message so nodes hit by an
        # inconsistent omission receive it, then deliver locally.
        if not entry.echoed and not self._layer.has_pending(mid):
            entry.echoed = True
            self._layer.data_req(mid, entry.data)
        self._deliver_once(mid, entry)

    def _deliver_once(self, mid: MessageId, entry: _PendingMessage) -> None:
        entry.delivered = True
        if self._deliver is not None:
            self._deliver(mid.node, mid.ref, entry.data)
