"""Runtime monitors for the system-model properties (paper Figs. 2 and 3).

These monitors scan a finished simulation trace and report violations of the
MCAN (MAC-level) and LCAN (LLC-level) properties that the CANELy protocols
assume. They are used by integration and property-based tests to certify
that the simulated substrate really provides the modelled CAN semantics, and
that the fault injector respects the degree bounds.

Checked properties:

* **MCAN1 (Broadcast)** — all nodes accepting one uncorrupted physical
  transmission received the same frame.
* **MCAN2 (Error detection)** — no node delivers a frame from a consistently
  corrupted transmission.
* **MCAN3 (Bounded omission degree)** — at most ``k`` omissions per
  reference window.
* **LCAN1 (Validity)** — a message broadcast by a correct node is delivered
  to at least one correct node.
* **LCAN2 (Best-effort agreement)** — a message delivered to a correct node
  whose sender stayed correct is delivered to every correct node.
* **LCAN3 (At-least-once delivery)** — duplicates only ever follow an
  inconsistent transmission of the same identifier.
* **LCAN4 (Bounded inconsistent omission degree)** — at most ``j``
  inconsistent omissions per reference window.

MCAN4 (bounded transmission delay) is a timeliness property; it is verified
analytically by :mod:`repro.analysis.timing` and asserted in tests against
measured queue-to-wire latencies rather than from the trace alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.trace import TraceRecord, TraceRecorder


@dataclass
class PropertyReport:
    """Outcome of a property-monitor pass."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no property was violated."""
        return not self.violations

    def extend(self, other: "PropertyReport") -> None:
        self.violations.extend(other.violations)


def _crashed_nodes(trace: TraceRecorder) -> Set[int]:
    return {record.node for record in trace.select(category="node.crash")}


def check_mcan1_broadcast(trace: TraceRecorder) -> PropertyReport:
    """All deliveries at one completion instant carry the transmitted frame."""
    report = PropertyReport()
    tx_by_time: Dict[int, TraceRecord] = {
        record.time: record for record in trace.select(category="bus.tx")
    }
    for delivery in trace.select(category="bus.deliver"):
        tx = tx_by_time.get(delivery.time)
        if tx is None:
            report.violations.append(
                f"MCAN1: delivery at t={delivery.time} without a transmission"
            )
            continue
        if delivery.data["mid"] != tx.data["mid"]:
            report.violations.append(
                f"MCAN1: node {delivery.node} received {delivery.data['mid']!r} "
                f"but the bus carried {tx.data['mid']!r} at t={delivery.time}"
            )
    return report


def check_mcan2_error_detection(trace: TraceRecorder) -> PropertyReport:
    """Consistently corrupted transmissions are delivered to nobody."""
    report = PropertyReport()
    corrupted_times = {
        record.time
        for record in trace.select(category="bus.tx")
        if record.data["kind"] == "consistent"
    }
    for delivery in trace.select(category="bus.deliver"):
        if delivery.time in corrupted_times:
            report.violations.append(
                f"MCAN2: node {delivery.node} delivered a frame from a "
                f"corrupted transmission at t={delivery.time}"
            )
    return report


def _window_violation(
    times: List[int], bound: int, window: int, label: str
) -> Optional[str]:
    times = sorted(times)
    start = 0
    for end in range(len(times)):
        while times[end] - times[start] > window:
            start += 1
        if end - start + 1 > bound:
            return (
                f"{label}: {end - start + 1} omissions within a "
                f"{window}-tick window (bound {bound})"
            )
    return None


def check_mcan3_omission_degree(
    trace: TraceRecorder, omission_degree: int, window: int
) -> PropertyReport:
    """At most ``k`` omissions in any reference window."""
    report = PropertyReport()
    times = [
        record.time
        for record in trace.select(category="bus.tx")
        if record.data["kind"] != "none"
    ]
    violation = _window_violation(times, omission_degree, window, "MCAN3")
    if violation:
        report.violations.append(violation)
    return report


def check_lcan4_inconsistent_degree(
    trace: TraceRecorder, inconsistent_degree: int, window: int
) -> PropertyReport:
    """At most ``j`` inconsistent omissions in any reference window."""
    report = PropertyReport()
    times = [
        record.time
        for record in trace.select(category="bus.tx")
        if record.data["kind"] == "inconsistent"
    ]
    violation = _window_violation(times, inconsistent_degree, window, "LCAN4")
    if violation:
        report.violations.append(violation)
    return report


def _deliveries_by_mid(
    trace: TraceRecorder,
) -> Dict[object, Dict[int, int]]:
    """mid -> node -> delivery count."""
    result: Dict[object, Dict[int, int]] = {}
    for delivery in trace.select(category="bus.deliver"):
        per_node = result.setdefault(delivery.data["mid"], {})
        per_node[delivery.node] = per_node.get(delivery.node, 0) + 1
    return result


def check_lcan1_validity(
    trace: TraceRecorder, correct_nodes: Iterable[int]
) -> PropertyReport:
    """Messages sent by correct nodes reach at least one correct node."""
    report = PropertyReport()
    correct = set(correct_nodes)
    deliveries = _deliveries_by_mid(trace)
    for tx in trace.select(category="bus.tx"):
        senders = set(tx.data["senders"])
        if not senders & correct:
            continue
        mid = tx.data["mid"]
        receivers = set(deliveries.get(mid, {}))
        if not receivers & correct:
            report.violations.append(
                f"LCAN1: {mid!r} sent by correct node(s) {sorted(senders)} "
                "was never delivered to any correct node"
            )
    return report


def check_lcan2_agreement(
    trace: TraceRecorder, correct_nodes: Iterable[int]
) -> PropertyReport:
    """Delivery at one correct node + correct sender => delivery at all."""
    report = PropertyReport()
    correct = set(correct_nodes)
    crashed = _crashed_nodes(trace)
    for mid, per_node in _deliveries_by_mid(trace).items():
        sender = getattr(mid, "node", None)
        if sender is None or sender in crashed:
            continue  # LCAN2 only constrains messages whose sender stayed correct
        delivered_to = set(per_node) & correct
        if not delivered_to:
            continue
        missing = correct - set(per_node)
        if missing:
            report.violations.append(
                f"LCAN2: {mid!r} (sender {sender} stayed correct) delivered "
                f"to {sorted(delivered_to)} but missing at {sorted(missing)}"
            )
    return report


def check_lcan3_duplicates(trace: TraceRecorder) -> PropertyReport:
    """Duplicates at a node only follow an inconsistent transmission.

    Control messages (ELS, resync, ring messages) legitimately reuse their
    identifier across logical sends, so a "duplicate" is only flagged when
    a node received *more copies than the bus carried transmissions* of
    that identifier — which can only happen through a delivery bug — or,
    for singly-transmitted identifiers, when no fault or clustering
    explains the extra copy.
    """
    report = PropertyReport()
    tx_count: Dict[object, int] = {}
    for record in trace.select(category="bus.tx"):
        mid = record.data["mid"]
        tx_count[mid] = tx_count.get(mid, 0) + 1
    for mid, per_node in _deliveries_by_mid(trace).items():
        worst = max(per_node.values())
        transmissions = tx_count.get(mid, 0)
        if worst > transmissions:
            report.violations.append(
                f"LCAN3: some node received {worst} copies of {mid!r} but the "
                f"bus only carried {transmissions} transmissions"
            )
    return report


def check_all_properties(
    trace: TraceRecorder,
    correct_nodes: Iterable[int],
    omission_degree: int,
    inconsistent_degree: int,
    window: int,
) -> PropertyReport:
    """Run every monitor; returns the merged report."""
    correct = set(correct_nodes)
    report = PropertyReport()
    report.extend(check_mcan1_broadcast(trace))
    report.extend(check_mcan2_error_detection(trace))
    report.extend(check_mcan3_omission_degree(trace, omission_degree, window))
    report.extend(check_lcan1_validity(trace, correct))
    report.extend(check_lcan2_agreement(trace, correct))
    report.extend(check_lcan3_duplicates(trace))
    report.extend(
        check_lcan4_inconsistent_degree(trace, inconsistent_degree, window)
    )
    return report
