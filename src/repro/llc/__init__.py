"""Reliable broadcast protocol suite for CAN (Rufino et al., FTCS-28 [18]).

The CANELy failure-detection/membership layer sits beside a reliable
group-communication suite built on the same standard-layer interface:

* :class:`~repro.llc.edcan.Edcan` — eager diffusion: every recipient
  immediately re-requests transmission of the received frame; wired-AND
  clustering collapses the echoes into very few physical frames.
* :class:`~repro.llc.relcan.Relcan` — lazy two-phase broadcast: deliver on
  the sender's confirmation, fall back to diffusion when the sender dies.
* :class:`~repro.llc.totcan.Totcan` — totally ordered atomic broadcast via
  accept messages and a stability delay.

:mod:`repro.llc.properties` provides runtime monitors for the MCAN1-4 and
LCAN1-4 properties of the system model (paper Figs. 2 and 3).
"""

from repro.llc.edcan import Edcan
from repro.llc.properties import PropertyReport, check_all_properties
from repro.llc.relcan import Relcan
from repro.llc.totcan import Totcan

__all__ = [
    "Edcan",
    "PropertyReport",
    "Relcan",
    "Totcan",
    "check_all_properties",
]
