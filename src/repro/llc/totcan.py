"""TOTCAN — totally ordered atomic broadcast.

From [18]: a two-phase protocol. The sender broadcasts the message, then —
once its own transmission is confirmed — broadcasts an ACCEPT control
message. Recipients buffer messages and only deliver *accepted* ones, in a
system-wide total order, after a stability delay that covers the worst-case
(j-bounded) diffusion of the ACCEPT itself. A message whose ACCEPT never
appears (sender crashed mid-protocol) is discarded by everyone: atomicity.

Ordering adaptation (documented in DESIGN.md): the paper's TOTCAN orders by
position of the accept on the bus. A recipient that missed the first copy of
an ACCEPT (inconsistent omission) cannot observe that position, so our
ACCEPT is a small *data* frame carrying an order tag — the sender's count of
accepts it has observed bus-wide. All correct nodes agree on the tag once
the accept set is stable, and ties (concurrent accepts with the same tag)
break deterministically by sender identifier. ACCEPTs are themselves
eagerly diffused, so agreement on the accept set holds within the stability
delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService

DeliverCallback = Callable[[int, int, bytes], None]

_ACCEPT = MessageType.BCTRL


@dataclass
class _Buffered:
    data: Optional[bytes] = None
    accept_tag: Optional[int] = None
    scheduled: bool = False
    delivered: bool = False
    discard_alarm: object = None


class Totcan:
    """Per-node TOTCAN protocol entity.

    Args:
        layer: the node's CAN standard layer.
        timers: the node's timer service.
        sim: the simulator (for the stability delay).
        stability_delay: how long after the first local ACCEPT sighting a
            message waits before delivery; must cover the worst-case accept
            diffusion time.
        discard_timeout: how long an unaccepted message is buffered before
            being discarded (atomicity for crashed senders).
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        timers: TimerService,
        sim: Simulator,
        stability_delay: int,
        discard_timeout: int,
        inconsistent_degree: int = 2,
        mtype: MessageType = MessageType.DATA,
    ) -> None:
        self._layer = layer
        self._timers = timers
        self._sim = sim
        self._stability = stability_delay
        self._discard_timeout = discard_timeout
        self._j = inconsistent_degree
        self._mtype = mtype
        self._buffered: Dict[Tuple[int, int], _Buffered] = {}
        self._accept_ndup: Dict[MessageId, int] = {}
        self._accepts_observed = 0
        self._delivery_queue: List[Tuple[int, int, int, int]] = []
        self._deliver: Optional[DeliverCallback] = None
        self._delivered_count = 0
        self._next_ref = 0
        layer.add_data_ind(self._on_data_ind, mtype=mtype)
        layer.add_data_cnf(self._on_data_cnf, mtype=mtype)
        layer.add_data_ind(self._on_accept, mtype=_ACCEPT)

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register the delivery callback ``(sender, ref, data)``.

        Deliveries respect the total order at every correct node.
        """
        self._deliver = callback

    def broadcast(self, data: bytes) -> int:
        """Atomically broadcast ``data``; returns the message reference."""
        ref = self._next_ref
        self._next_ref += 1
        mid = MessageId(self._mtype, node=self._layer.node_id, ref=ref)
        self._layer.data_req(mid, data)
        return ref

    # -- phase 1: the message -----------------------------------------------------

    def _key(self, node: int, ref: int) -> Tuple[int, int]:
        return (node, ref)

    def _entry(self, node: int, ref: int) -> _Buffered:
        key = self._key(node, ref)
        if key not in self._buffered:
            entry = _Buffered()
            entry.discard_alarm = self._timers.start_alarm(
                self._discard_timeout, lambda k=key: self._on_discard(k)
            )
            self._buffered[key] = entry
        return self._buffered[key]

    def _on_data_ind(self, mid: MessageId, data: bytes) -> None:
        entry = self._entry(mid.node, mid.ref)
        if entry.data is None:
            entry.data = data
            self._try_schedule(mid.node, mid.ref, entry)

    def _on_data_cnf(self, mid: MessageId) -> None:
        # Phase 2: accept. The tag is our count of accepts seen bus-wide,
        # which every correct node tracks identically (within stability).
        tag = self._accepts_observed
        accept_mid = MessageId(_ACCEPT, node=mid.node, ref=mid.ref)
        self._layer.data_req(accept_mid, bytes([tag & 0xFF, (tag >> 8) & 0xFF]))

    # -- phase 2: the accept ---------------------------------------------------------

    def _on_accept(self, accept_mid: MessageId, data: bytes) -> None:
        count = self._accept_ndup.get(accept_mid, 0) + 1
        self._accept_ndup[accept_mid] = count
        if count > 1:
            if count > self._j:
                self._layer.abort_req(accept_mid)
            return
        # First sighting: diffuse the accept eagerly (it must reach everyone).
        if accept_mid.node != self._layer.node_id and not self._layer.has_pending(
            accept_mid
        ):
            self._layer.data_req(accept_mid, data)
        self._accepts_observed += 1
        tag = data[0] | (data[1] << 8) if len(data) >= 2 else 0
        entry = self._entry(accept_mid.node, accept_mid.ref)
        if entry.accept_tag is None:
            entry.accept_tag = tag
            self._try_schedule(accept_mid.node, accept_mid.ref, entry)

    # -- delivery ----------------------------------------------------------------------

    def _try_schedule(self, node: int, ref: int, entry: _Buffered) -> None:
        if entry.scheduled or entry.data is None or entry.accept_tag is None:
            return
        entry.scheduled = True
        self._timers.cancel_alarm(entry.discard_alarm)
        due = self._sim.now + self._stability
        self._delivery_queue.append((entry.accept_tag, node, ref, due))
        self._sim.schedule(self._stability, self._flush_stable)

    def _prune_delivered(self) -> None:
        # Delivered entries only serve as duplicate tombstones; keep the
        # tables bounded for long-running nodes.
        if len(self._buffered) <= 4096:
            return
        for key in list(self._buffered):
            if len(self._buffered) <= 2048:
                break
            entry = self._buffered[key]
            if entry.delivered:
                del self._buffered[key]
                self._accept_ndup.pop(
                    MessageId(_ACCEPT, node=key[0], ref=key[1]), None
                )

    def _flush_stable(self) -> None:
        # Deliver stable messages in (tag, sender) order; a not-yet-stable
        # head blocks the queue so the total order is never violated — it
        # will be flushed when its own stability timer fires.
        self._delivery_queue.sort(key=lambda item: (item[0], item[1]))
        while self._delivery_queue:
            tag, node, ref, due = self._delivery_queue[0]
            if due > self._sim.now:
                return
            self._delivery_queue.pop(0)
            entry = self._buffered[self._key(node, ref)]
            if entry.delivered:
                continue
            entry.delivered = True
            self._delivered_count += 1
            if self._deliver is not None:
                self._deliver(node, ref, entry.data)
        self._prune_delivered()

    def _on_discard(self, key: Tuple[int, int]) -> None:
        entry = self._buffered.get(key)
        if entry is not None and not entry.scheduled and not entry.delivered:
            # No accept ever arrived: the sender failed mid-protocol.
            del self._buffered[key]

    @property
    def delivered_count(self) -> int:
        """Messages delivered so far (diagnostics)."""
        return self._delivered_count
