"""EDCAN — the Eager Diffusion reliable broadcast protocol.

From [18]: the sender broadcasts the message; every recipient, upon
receiving the *first* copy, delivers it to the layer above and — unless an
equivalent transmit request is already pending locally — immediately asks the
CAN layer to retransmit the very same frame. Identical frames cluster on the
wired-AND bus, so the whole diffusion usually costs a single extra physical
frame. Retransmission requests are kept alive until more than ``j`` copies
(the inconsistent omission degree bound, LCAN4) have been observed, which
guarantees delivery to all correct nodes even when the original transmission
suffered an inconsistent omission and the sender crashed.

The FDA micro-protocol of the membership paper (Fig. 6) is a simplified,
remote-frame-only instance of this scheme.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.can.driver import CanStandardLayer
from repro.can.identifiers import MessageId, MessageType

DeliverCallback = Callable[[int, int, bytes], None]

#: Cap on the duplicate-tracking tables: with 16-bit message references the
#: tables would otherwise grow for the lifetime of the node. Old entries
#: are pruned FIFO; a reference only repeats after 65k messages from the
#: same sender, far beyond any plausible in-flight window.
MAX_TRACKED_MESSAGES = 4096


class Edcan:
    """Per-node EDCAN protocol entity.

    Args:
        layer: the node's CAN standard layer.
        inconsistent_degree: the model's ``j`` bound; a node keeps its echo
            request pending until more than ``j`` copies circulated.
        mtype: message type used on the bus (application data by default).
    """

    def __init__(
        self,
        layer: CanStandardLayer,
        inconsistent_degree: int = 2,
        mtype: MessageType = MessageType.DATA,
    ) -> None:
        self._layer = layer
        self._j = inconsistent_degree
        self._mtype = mtype
        self._ndup: Dict[MessageId, int] = {}
        self._payload: Dict[MessageId, bytes] = {}
        self._deliver: Optional[DeliverCallback] = None
        self._next_ref = 0
        layer.add_data_ind(self._on_data_ind, mtype=mtype)

    def on_deliver(self, callback: DeliverCallback) -> None:
        """Register the upper-layer delivery callback ``(sender, ref, data)``."""
        self._deliver = callback

    def broadcast(self, data: bytes) -> int:
        """Reliably broadcast ``data``; returns the message reference."""
        ref = self._next_ref
        self._next_ref += 1
        mid = MessageId(self._mtype, node=self._layer.node_id, ref=ref)
        self._layer.data_req(mid, data)
        return ref

    # -- protocol machine ------------------------------------------------------

    def _prune(self) -> None:
        while len(self._ndup) > MAX_TRACKED_MESSAGES:
            oldest = next(iter(self._ndup))
            del self._ndup[oldest]
            self._payload.pop(oldest, None)

    def _on_data_ind(self, mid: MessageId, data: bytes) -> None:
        count = self._ndup.get(mid, 0) + 1
        self._ndup[mid] = count
        self._prune()
        if count == 1:
            self._payload[mid] = data
            spans = self._layer.controller._spans
            deliver_span = None
            if spans.enabled:
                # The upward delivery and the eager-diffusion echo are both
                # consequences of this first copy.
                deliver_span = spans.instant(
                    "edcan.deliver",
                    "llc",
                    node=self._layer.node_id,
                    sender=mid.node,
                    ref=mid.ref,
                )
                spans.push(deliver_span)
            try:
                if self._deliver is not None:
                    self._deliver(mid.node, mid.ref, data)
                # Eager diffusion: echo the frame unless we are its origin
                # (our own request already served) or an equivalent request
                # is pending.
                if mid.node != self._layer.node_id and not self._layer.has_pending(
                    mid
                ):
                    self._layer.data_req(mid, data)
            finally:
                if deliver_span is not None:
                    spans.pop()
        elif count > self._j:
            # Enough copies circulated; our echo is no longer needed.
            self._layer.abort_req(mid)

    def duplicates_seen(self, sender: int, ref: int) -> int:
        """Number of physical copies observed for one message (diagnostics)."""
        return self._ndup.get(MessageId(self._mtype, node=sender, ref=ref), 0)
