"""The scenario registry: named recipes, resolvable like backends.

A recipe is a factory ``(backend, seed, quick) -> ScenarioRun`` plus the
metadata reports and CLIs need (name, one-line summary). Registration
mirrors the membership-backend registry: claiming a taken name with a
different factory is an error, the built-ins load lazily so importing
the registry does not execute every recipe module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass
class ScenarioRun:
    """One finished recipe execution, plus its ground truth.

    The network's trace carries everything observable; what it *cannot*
    carry is scripted intent — which nodes were initial members, when a
    node voluntarily left or late-joined. Recipes return that alongside
    the network so the QoS engine can judge views against the truth.
    """

    #: The finished network (its trace is the QoS input).
    network: object
    #: Initial full members — the agreed view at ``start``.
    members: Sequence[int]
    #: Observation-window start (at/after bootstrap convergence), ticks.
    start: int
    #: Scripted voluntary leaves: node -> instant, ticks.
    leave_times: Mapping[int, int] = field(default_factory=dict)
    #: Scripted late joins: node -> instant, ticks.
    join_times: Mapping[int, int] = field(default_factory=dict)
    #: Recipe-specific facts worth reporting (babble frames, storm
    #: windows, injected-fault counts, ...). Plain data only.
    detail: Dict[str, object] = field(default_factory=dict)


RecipeFactory = Callable[[str, int, bool], ScenarioRun]


@dataclass(frozen=True)
class ScenarioRecipe:
    """One named catalog entry."""

    name: str
    summary: str
    factory: RecipeFactory

    def build(self, backend: str = "canely", seed: int = 0,
              quick: bool = False) -> ScenarioRun:
        """Execute the recipe and return the finished run."""
        return self.factory(backend, seed, quick)


#: name -> recipe. Built-ins register on first catalog query.
_REGISTRY: Dict[str, ScenarioRecipe] = {}
_BUILTINS_LOADED = False


def register_recipe(entry: ScenarioRecipe) -> None:
    """Add ``entry`` to the catalog under its name.

    Re-registering the identical recipe is a no-op; claiming a taken
    name with a different recipe is an error (names are CLI values and
    report labels).
    """
    if not entry.name:
        raise ConfigurationError(f"scenario recipe {entry!r} has no name")
    taken = _REGISTRY.get(entry.name)
    if taken is not None and taken is not entry:
        raise ConfigurationError(
            f"scenario name {entry.name!r} is already registered"
        )
    _REGISTRY[entry.name] = entry


def recipe(name: str, summary: str) -> Callable[[RecipeFactory], RecipeFactory]:
    """Decorator form of :func:`register_recipe` for recipe modules."""

    def register(factory: RecipeFactory) -> RecipeFactory:
        register_recipe(ScenarioRecipe(name=name, summary=summary,
                                       factory=factory))
        return factory

    return register


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.scenarios.recipes  # noqa: F401  (registers on import)


def scenario_names() -> List[str]:
    """The registered scenario names, sorted."""
    _load_builtins()
    return sorted(_REGISTRY)


def resolve_recipe(name: str) -> ScenarioRecipe:
    """Resolve a catalog name to its recipe."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; catalog: {scenario_names()}"
        ) from None
