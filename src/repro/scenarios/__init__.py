"""Named scenario catalog: registered fault-and-load recipes.

Every recipe is a :class:`~repro.scenarios.catalog.ScenarioRecipe` — a
named, seeded, backend-neutral script over
:class:`~repro.workloads.builder.ScenarioBuilder` — runnable by name from
the library (:func:`~repro.scenarios.runner.run_recipe` /
:func:`~repro.scenarios.runner.run_catalog`) and from the ``repro qos``
CLI. The built-in catalog covers the paper's fault menagerie: babbling
idiot (Fig. 11's admitted limitation), bus-off storms, error-passive
flapping, inaccessibility bursts, join/leave churn, bus-load sweeps,
gateway partition stress, and a quiet baseline.
"""

from repro.scenarios.catalog import (
    ScenarioRecipe,
    ScenarioRun,
    recipe,
    register_recipe,
    resolve_recipe,
    scenario_names,
)
from repro.scenarios.runner import (
    QoSReport,
    ScenarioOutcome,
    run_catalog,
    run_recipe,
)

__all__ = [
    "QoSReport",
    "ScenarioOutcome",
    "ScenarioRecipe",
    "ScenarioRun",
    "recipe",
    "register_recipe",
    "resolve_recipe",
    "run_catalog",
    "run_recipe",
    "scenario_names",
]
