"""Run catalog recipes and fold their QoS readouts into one report.

:func:`run_recipe` executes one named recipe against one backend and
returns its :class:`ScenarioOutcome` (the QoS readout plus recipe
detail); :func:`run_catalog` sweeps scenarios x backends into a
:class:`QoSReport`, the cross-backend quality comparison the ``repro
qos`` CLI renders and the CI smoke job byte-compares across double runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.qos import QoSMetrics, compute_qos
from repro.scenarios.catalog import resolve_recipe, scenario_names
from repro.util.tables import render_table


@dataclass
class ScenarioOutcome:
    """One (scenario, backend) cell of a QoS report."""

    scenario: str
    backend: str
    seed: int
    quick: bool
    qos: QoSMetrics
    detail: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "seed": self.seed,
            "quick": self.quick,
            "detail": dict(sorted(self.detail.items())),
            "qos": self.qos.to_dict(),
        }


def run_recipe(
    name: str,
    backend: str = "canely",
    seed: int = 0,
    quick: bool = False,
) -> ScenarioOutcome:
    """Execute one catalog recipe and compute its QoS readout."""
    entry = resolve_recipe(name)
    run = entry.build(backend=backend, seed=seed, quick=quick)
    network = run.network
    qos = compute_qos(
        network.sim.trace,
        nodes=sorted(run.members),
        start=run.start,
        end=network.sim.now,
        leave_times=run.leave_times,
        join_times=run.join_times,
        segment_of=getattr(network, "segment_map", None),
    )
    return ScenarioOutcome(
        scenario=name,
        backend=network.backend_name,
        seed=seed,
        quick=quick,
        qos=qos,
        detail=dict(run.detail),
    )


@dataclass
class QoSReport:
    """A scenarios x backends QoS comparison."""

    seed: int
    quick: bool
    scenarios: List[str]
    backends: List[str]
    outcomes: List[ScenarioOutcome]

    def outcome(self, scenario: str, backend: str) -> Optional[ScenarioOutcome]:
        """The cell for (scenario, backend); ``None`` when absent."""
        for outcome in self.outcomes:
            if outcome.scenario == scenario and outcome.backend == backend:
                return outcome
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "scenarios": list(self.scenarios),
            "backends": list(self.backends),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def to_json(self) -> str:
        """Deterministic document: sorted keys over already-ordered data,
        byte-identical across same-seed runs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def rows(self) -> List[List[str]]:
        """Comparison rows, one per (scenario, backend) cell."""

        def fmt(value, pattern: str = "{:.2f}") -> str:
            return "-" if value is None else pattern.format(value)

        rows = []
        for outcome in self.outcomes:
            readout = outcome.qos.to_dict()
            detection = readout["detection_ms"]
            mistakes = readout["mistakes"]
            rows.append([
                outcome.scenario,
                outcome.backend,
                fmt(detection["p50_ms"]),
                fmt(detection["p99_ms"]),
                str(mistakes["count"]),
                fmt(mistakes["rate_per_node_s"], "{:.3f}"),
                fmt(mistakes["duration_ms"]["mean_ms"]),
                fmt(readout["query_accuracy"], "{:.4f}"),
                fmt(readout["completeness"], "{:.2f}"),
            ])
        return rows

    #: ``to_csv`` column order — fixed, part of the output contract.
    CSV_COLUMNS = (
        "scenario", "backend", "detection_p50_ms", "detection_p90_ms",
        "detection_p99_ms", "detection_count", "mistakes",
        "mistake_rate_per_node_s", "mistake_duration_mean_ms",
        "query_accuracy", "completeness", "accuracy", "removals", "flaps",
    )

    def to_csv(self) -> str:
        """The comparison as CSV with deterministically ordered keys.

        Raw (unformatted) values straight from the QoS readout; ``None``
        renders as an empty cell. Row order matches :meth:`rows`.
        """

        def cell(value) -> str:
            return "" if value is None else str(value)

        lines = [",".join(self.CSV_COLUMNS)]
        for outcome in self.outcomes:
            readout = outcome.qos.to_dict()
            detection = readout["detection_ms"]
            mistakes = readout["mistakes"]
            lines.append(",".join(cell(value) for value in (
                outcome.scenario,
                outcome.backend,
                detection["p50_ms"],
                detection["p90_ms"],
                detection["p99_ms"],
                detection["count"],
                mistakes["count"],
                mistakes["rate_per_node_s"],
                mistakes["duration_ms"]["mean_ms"],
                readout["query_accuracy"],
                readout["completeness"],
                readout["accuracy"],
                readout["removals"],
                readout["flaps"],
            )))
        return "\n".join(lines)

    def render(self, title: Optional[str] = None) -> str:
        """The standard human-readable comparison table."""
        return render_table(
            [
                "scenario", "backend", "det p50 ms", "det p99 ms",
                "mistakes", "λ_M /node·s", "T_M mean ms", "P_A",
                "completeness",
            ],
            self.rows(),
            title=title or (
                f"failure-detector QoS catalog (seed {self.seed}"
                f"{', quick' if self.quick else ''})"
            ),
        )


def run_catalog(
    scenarios: Optional[Sequence[str]] = None,
    backends: Sequence[str] = ("canely",),
    seed: int = 0,
    quick: bool = False,
) -> QoSReport:
    """Run the catalog (or a subset) against one or more backends.

    Cells run scenario-major in catalog order, backends in the order
    given — the deterministic layout the report's JSON contract needs.
    """
    names = list(scenarios) if scenarios else scenario_names()
    outcomes = [
        run_recipe(name, backend=backend, seed=seed, quick=quick)
        for name in names
        for backend in backends
    ]
    return QoSReport(
        seed=seed,
        quick=quick,
        scenarios=names,
        backends=list(backends),
        outcomes=outcomes,
    )
