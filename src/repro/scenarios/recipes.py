"""The built-in scenario catalog.

Eight named recipes spanning the paper's fault menagerie plus the
baseline, each a seeded, backend-neutral script: the fault injection and
load shaping all happen at the bus/controller level, so the same recipe
runs unchanged against the CANELy stack and any rival backend, and the
QoS engine judges both against the same ground truth.

Every recipe follows the same shape: build a network, bootstrap it,
mark the observation-window start, script the scenario (crashes, storms,
churn, load), run a fixed horizon, and return the
:class:`~repro.scenarios.catalog.ScenarioRun` with the scripted ground
truth the trace cannot carry. Fixed horizons — not
``run_until_settled`` — are deliberate: several recipes *end* in a
legitimately unsettled state (a babbled-out membership, an unrefuted
suspicion) and the QoS readout must include that tail.

All randomness flows from ``derive_seed(seed, "scenario/<name>")`` via
:class:`~repro.sim.rng.RngStreams`, so a (name, backend, seed, quick)
tuple fully determines the run — the byte-identical-report contract.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.can.errormodel import FaultInjector, FaultKind
from repro.can.identifiers import MessageType
from repro.core.stack import CanelyNetwork
from repro.scenarios.catalog import ScenarioRun, recipe
from repro.sim.clock import ms
from repro.sim.rng import RngStreams, derive_seed
from repro.workloads.adversary import BabblingIdiot
from repro.workloads.traffic import PeriodicSource


def _streams(name: str, seed: int) -> RngStreams:
    return RngStreams(derive_seed(seed, f"scenario/{name}"))


def _population(quick: bool) -> int:
    return 6 if quick else 10


def _victim_frames(victim: int):
    """Frames transmitted *by* ``victim`` itself, backend-neutral.

    Life-signs in both stacks carry the sender in the identifier's node
    field; FDA/RHA frames *about* a node are sent by others (and echoed
    in clusters), so matching those would fault the wrong transmitters.
    """
    types = (MessageType.ELS, MessageType.SWIM)

    def match(frame) -> bool:
        return frame.mid.mtype in types and frame.mid.node == victim

    return match


def _baseline_traffic(net: CanelyNetwork, count: int) -> List[PeriodicSource]:
    return [
        PeriodicSource(net.sim, net.node(node_id), period=ms(10),
                       offset=node_id * ms(1))
        for node_id in range(count)
    ]


@recipe("quiet-baseline",
        "fault-free bus, light traffic, one clean crash")
def quiet_baseline(backend: str, seed: int, quick: bool) -> ScenarioRun:
    rng = _streams("quiet-baseline", seed).stream("script")
    count = _population(quick)
    net = CanelyNetwork(count, backend=backend)
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    _baseline_traffic(net, 2)
    victim = rng.randrange(count)
    scenario.crash(victim, at=ms(30)).run_for(ms(210))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={"victim": victim},
    )


@recipe("babbling-idiot",
        "saturating top-priority babbler window (Fig. 11's admitted gap)")
def babbling_idiot(backend: str, seed: int, quick: bool) -> ScenarioRun:
    count = _population(quick)
    net = CanelyNetwork(count, backend=backend)
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    _baseline_traffic(net, 2)
    # The babbler steals an id outside the member population and wedges
    # the bus for longer than the silence bound (Thb + Ttd), so every
    # starved life-sign becomes a wrongful suspicion.
    babbler = BabblingIdiot(net.sim, net.bus, node_id=count, gap=0)
    babble_start, babble_stop = ms(10), ms(50)
    scenario.at(babble_start, babbler.start)
    scenario.at(babble_stop, babbler.stop)
    scenario.run_for(ms(250))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={
            "babble_window_ms": [
                babble_start // ms(1), babble_stop // ms(1),
            ],
            "babble_frames": babbler.frames_submitted,
        },
    )


@recipe("bus-off-storm",
        "stochastic error storm driving the victim bus-off")
def bus_off_storm(backend: str, seed: int, quick: bool) -> ScenarioRun:
    streams = _streams("bus-off-storm", seed)
    rng = streams.stream("script")
    count = _population(quick)
    injector = FaultInjector(rng=streams.stream("faults"))
    net = CanelyNetwork(count, backend=backend, injector=injector)
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    _baseline_traffic(net, count)
    victim = rng.randrange(count)
    storm_start, storm_stop = ms(20), ms(80)

    def raise_storm() -> None:
        injector.configure_stochastic(consistent_probability=0.2)
        # Mid-storm, the victim's own next life-sign takes the fault
        # that pushes it over the edge: the paper's sender-dies case.
        injector.fault_on_frame(
            _victim_frames(victim),
            FaultKind.CONSISTENT_OMISSION,
            crash_sender=True,
        )

    scenario.at(storm_start, raise_storm)
    scenario.at(
        storm_stop,
        lambda: injector.configure_stochastic(consistent_probability=0.0),
    )
    scenario.run_for(ms(260))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={
            "victim": victim,
            "storm_window_ms": [storm_start // ms(1), storm_stop // ms(1)],
            "omissions_injected": injector.omissions_injected,
        },
    )


@recipe("error-passive-flapping",
        "repeated omission bursts on one node's life-signs")
def error_passive_flapping(backend: str, seed: int, quick: bool) -> ScenarioRun:
    streams = _streams("error-passive-flapping", seed)
    rng = streams.stream("script")
    count = _population(quick)
    injector = FaultInjector()
    net = CanelyNetwork(count, backend=backend, injector=injector)
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    _baseline_traffic(net, 2)
    victim = rng.randrange(count)
    # Each burst holds the victim's life-signs in error for longer than
    # the silence bound (Thb + Ttd), cycling it through error-passive
    # and bus-off; with bus-off recovery on, the victim comes back
    # between bursts — suspected, removed, alive again: a flapper.
    net.bus.bus_off_recovery = True
    burst = 150 if quick else 200
    bursts = [ms(10), ms(90), ms(170)]
    for at in bursts:
        scenario.at(
            at,
            lambda: injector.fault_on_frame(
                _victim_frames(victim),
                FaultKind.CONSISTENT_OMISSION,
                count=burst,
            ),
        )
    scenario.run_for(ms(320))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={
            "victim": victim,
            "burst_length": burst,
            "burst_at_ms": [at // ms(1) for at in bursts],
            "omissions_injected": injector.omissions_injected,
        },
    )


@recipe("inaccessibility-burst",
        "bounded inaccessibility windows around a crash")
def inaccessibility_burst(backend: str, seed: int, quick: bool) -> ScenarioRun:
    rng = _streams("inaccessibility-burst", seed).stream("script")
    count = _population(quick)
    net = CanelyNetwork(count, backend=backend)
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    _baseline_traffic(net, 2)
    victim = rng.randrange(count)
    bursts = [ms(10), ms(45), ms(80)]
    bits = 8_000  # 8 ms of wedged wire per burst at 1 Mbit/s
    for at in bursts:
        scenario.inaccessibility(bits, at=at)
    scenario.crash(victim, at=ms(50)).run_for(ms(260))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={
            "victim": victim,
            "burst_at_ms": [at // ms(1) for at in bursts],
            "burst_bits": bits,
        },
    )


@recipe("join-leave-churn",
        "late joins and a voluntary leave around a crash")
def join_leave_churn(backend: str, seed: int, quick: bool) -> ScenarioRun:
    count = _population(quick)
    initial = list(range(count - 2))
    late = [count - 2, count - 1]
    net = CanelyNetwork(count, backend=backend)
    scenario = net.scenario(seed=seed).bootstrap(nodes=initial)
    start = net.sim.now
    _baseline_traffic(net, 2)
    leaver, victim = 1, 2
    join_at = {late[0]: ms(30), late[1]: ms(90)}
    leave_at = {leaver: ms(60)}
    for node_id, at in join_at.items():
        scenario.join(node_id, at=at)
    scenario.leave(leaver, at=leave_at[leaver])
    scenario.crash(victim, at=ms(120)).run_for(ms(300))
    return ScenarioRun(
        network=net, members=initial, start=start,
        leave_times={node: start + at for node, at in leave_at.items()},
        join_times={node: start + at for node, at in join_at.items()},
        detail={"victim": victim, "leaver": leaver, "joiners": late},
    )


@recipe("bus-load-sweep",
        "staged load ramp to near saturation, crash at the peak")
def bus_load_sweep(backend: str, seed: int, quick: bool) -> ScenarioRun:
    rng = _streams("bus-load-sweep", seed).stream("script")
    count = _population(quick)
    net = CanelyNetwork(count, backend=backend)
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    # Three superposed waves: every phase adds one source per node at a
    # shorter period, ramping the bus toward saturation.
    phases = [(0, ms(10)), (ms(60), ms(5)), (ms(120), ms(2))]
    for offset, period in phases:
        for node_id in range(count):
            PeriodicSource(
                net.sim, net.node(node_id), period=period,
                offset=offset + node_id * (ms(1) // 4),
            )
    victim = rng.randrange(count)
    scenario.crash(victim, at=ms(140)).run_for(ms(240))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={
            "victim": victim,
            "phase_period_ms": [period // ms(1) for _, period in phases],
        },
    )


@recipe("gateway-partition-stress",
        "bridged segments, congested gateway, remote-segment crash")
def gateway_partition_stress(backend: str, seed: int, quick: bool) -> ScenarioRun:
    count = _population(quick)
    net = CanelyNetwork(
        count,
        backend=backend,
        segments=2,
        gateway_latency=ms(1) // 2,
        gateway_queue_limit=4,
    )
    scenario = net.scenario(seed=seed).bootstrap()
    start = net.sim.now
    # Cross-segment load keeps the tiny gateway queue under pressure, so
    # remote detection rides a congested store-and-forward path.
    for node_id in range(count):
        PeriodicSource(net.sim, net.node(node_id), period=ms(5),
                       offset=node_id * (ms(1) // 2))
    victim = count - 1  # last node lives on segment 1
    scenario.crash(victim, at=ms(40)).run_for(ms(260))
    return ScenarioRun(
        network=net, members=range(count), start=start,
        detail={
            "victim": victim,
            "victim_segment": net.segment_map[victim],
            "gateway_queue_limit": 4,
        },
    )
