"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``demo``      — run the quickstart scenario and print the timeline.
* ``fig1``      — print the reproduced Fig. 1 comparison table.
* ``fig10``     — print the Fig. 10 bandwidth curves (analytical model).
* ``fig11``     — print the Fig. 11 attribute table (analytic cells only;
  run the benchmark suite for the measured cells).
* ``inaccessibility`` — print the scenario catalogue and bounds.
* ``bounds``    — print the latency bounds for a configuration.
* ``trace``     — run a scenario and query/export its trace (JSONL).
* ``metrics``   — run a scenario and print the metrics registry.
* ``spans``     — run a seeded crash scenario with causal span tracing on
  and summarize the spans, print the exact critical-path latency
  decomposition, render the detection's span tree or a message sequence
  chart, or export Chrome trace-event JSON (``--chrome``/``--validate``).
* ``campaign``  — run a parallel randomized fault-scenario campaign with
  checkpoint/resume; ``--executor remote`` starts a TCP coordinator that
  feeds ``campaign-worker`` agents (see :mod:`repro.campaign`).
* ``campaign-worker`` — join a remote campaign coordinator and execute
  scenarios until it shuts the queue down.
* ``check``     — systematically explore bounded fault schedules, minimize
  and persist any counterexample; ``--fingerprints`` deduplicates against
  a persistent explored-schedule store, ``--coverage`` mutates schedules
  that produced new trace fingerprints, ``--replay`` re-executes an
  artifact bit-for-bit and ``--selftest`` plants a protocol bug and
  asserts the checker finds it (see :mod:`repro.check`).
* ``bench``     — run the core hot-path benchmarks, write ``BENCH_core.json``
  and optionally gate on a regression threshold (see :mod:`repro.perf`).
* ``compare``   — run the same seeded crash scenario under rival membership
  backends (CANELy vs SWIM, optionally over gateway-bridged bus segments)
  and print their QoS side by side: detection latency, view stability,
  bandwidth per node (see :mod:`repro.analysis.comparison`).
* ``qos``       — run the named scenario catalog (babbling idiot, bus-off
  storm, churn, ...) against one or more backends and print the
  failure-detector QoS comparison — detection quantiles, mistake rate
  λ_M, mistake duration T_M, query accuracy P_A (see
  :mod:`repro.scenarios` and :mod:`repro.obs.qos`).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.bandwidth import BandwidthModel
from repro.analysis.comparison import fig1_rows, fig11_rows
from repro.analysis.inaccessibility import (
    can_inaccessibility_range,
    canely_inaccessibility_range,
    scenario_catalogue,
)
from repro.analysis.latency import latency_bounds
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import format_time, ms
from repro.util.tables import render_table


def _cmd_demo(args) -> int:
    net = CanelyNetwork(node_count=8)
    net.join_all()
    net.run_for(ms(400))
    print(f"[{format_time(net.sim.now)}] view: {sorted(net.agreed_view())}")
    crash_time = net.sim.now
    net.node(5).crash()
    print(f"[{format_time(crash_time)}] node 5 crashed")
    net.run_for(ms(150))
    print(f"[{format_time(net.sim.now)}] view: {sorted(net.agreed_view())}")
    print("agreement:", "ok" if net.views_agree() else "VIOLATED")
    if getattr(args, "timeline", False):
        from repro.sim.timeline import summarize, timeline

        print("\ntimeline around the crash:")
        for line in timeline(
            net.sim.trace, start=crash_time - ms(2), end=crash_time + ms(60)
        ):
            print(f"  {line}")
        summary = summarize(net.sim.trace)
        print(
            f"\nsummary: {summary.physical_frames} frames "
            f"({summary.faulty_frames} faulty), by type "
            f"{summary.frames_by_type}, crashes {summary.crashes}"
        )
    return 0


def _cmd_fig1(_args) -> int:
    print(
        render_table(
            ["Parameter", "TTP", "Standard CAN"],
            fig1_rows(),
            title="Figure 1 — comparison of TTP and CAN",
        )
    )
    return 0


def _cmd_fig10(args) -> int:
    model = BandwidthModel(
        population=args.nodes,
        lifesign_nodes=args.lifesigns,
        crash_failures=args.crashes,
    )
    if args.plot:
        from repro.analysis.figures import fig10_chart

        print(fig10_chart(model))
        return 0
    tm_values = list(range(30, 95, 10))
    curves = model.figure10(tm_values)
    rows = [
        [label] + [f"{value * 100:.2f}%" for value in curve]
        for label, curve in curves.items()
    ]
    print(
        render_table(
            ["scenario"] + [f"Tm={tm}ms" for tm in tm_values],
            rows,
            title=(
                f"Figure 10 — membership suite bandwidth "
                f"(n={args.nodes}, b={args.lifesigns}, f={args.crashes})"
            ),
        )
    )
    return 0


def _cmd_fig11(_args) -> int:
    print(
        render_table(
            ["Parameter", "TTP", "CAN", "CANELy"],
            fig11_rows(),
            title="Figure 11 — comparison of TTP, CAN and CANELy",
        )
    )
    return 0


def _cmd_inaccessibility(_args) -> int:
    print(
        render_table(
            ["scenario", "bit-times", "description"],
            [
                [s.name, s.duration_bits, s.description]
                for s in scenario_catalogue()
            ],
            title="Inaccessibility scenarios (standard format)",
        )
    )
    can_lo, can_hi = can_inaccessibility_range()
    ely_lo, ely_hi = canely_inaccessibility_range()
    print(f"\nstandard CAN : {can_lo} - {can_hi} bit-times (paper: 14 - 2880)")
    print(f"CANELy       : {ely_lo} - {ely_hi} bit-times (paper: 14 - 2160)")
    return 0


def _cmd_bounds(args) -> int:
    config = CanelyConfig(thb=ms(args.thb), tm=ms(args.tm), tjoin_wait=ms(3 * args.tm))
    bounds = latency_bounds(config)
    rows = [
        ["silence (Thb + Ttd)", format_time(bounds.silence)],
        ["FDA dissemination", format_time(bounds.dissemination)],
        ["failure notification", format_time(bounds.notification)],
        ["consistent view update", format_time(bounds.view_update)],
    ]
    print(
        render_table(
            ["bound", "worst case"],
            rows,
            title=f"Latency bounds (Thb={args.thb}ms, Tm={args.tm}ms)",
        )
    )
    return 0


def _cmd_run(args) -> int:
    import json

    from repro.workloads.script import ScenarioSpec, run_scenario

    with open(args.scenario) as handle:
        spec = ScenarioSpec.from_json(handle.read())
    report = run_scenario(spec, monitors=getattr(args, "monitors", False))
    print(json.dumps(report.to_dict(), indent=2))
    return 0 if report.views_agree else 1


def _observed_network(args):
    """Run the demo scenario (or ``--scenario FILE``) under the standard
    invariant monitors and return the finished network."""
    if getattr(args, "scenario", None):
        from repro.workloads.script import ScenarioSpec, run_scenario_detailed

        with open(args.scenario) as handle:
            spec = ScenarioSpec.from_json(handle.read())
        _report, net = run_scenario_detailed(spec, monitors=True)
        return net

    from repro.analysis.latency import latency_bounds
    from repro.obs.monitors import standard_monitors

    net = CanelyNetwork(node_count=8)
    standard_monitors(
        net.sim.trace,
        detection_bound=latency_bounds(net.config).notification,
        metrics=net.sim.metrics,
    )
    net.join_all()
    net.run_for(ms(400))
    net.node(5).crash()
    net.run_for(ms(150))
    return net


def _cmd_trace(args) -> int:
    from repro.sim.trace import JsonlSink, record_to_dict

    net = _observed_network(args)
    trace = net.sim.trace
    # All filters combine in one select() call: category prefix, node and
    # the [--start-ms, --end-ms] time window.
    start = None if args.start_ms is None else ms(args.start_ms)
    end = None if args.end_ms is None else ms(args.end_ms)
    selected = trace.select(
        category=args.category, node=args.node, start=start, end=end
    )
    if args.export:
        with JsonlSink(args.export) as sink:
            for record in selected:
                sink(record)
        print(f"exported {len(selected)} records to {args.export}")
        return 0
    print(
        render_table(
            ["category", "records"],
            [[name, str(count)] for name, count in trace.categories().items()],
            title=f"Trace: {len(trace)} records, {format_time(trace.last_time)}",
        )
    )
    if (
        args.category is not None
        or args.node is not None
        or start is not None
        or end is not None
    ):
        shown = selected if args.limit is None else selected[: args.limit]
        print(f"\n{len(selected)} matching records:")
        for record in shown:
            print(f"  {record_to_dict(record)}")
        if len(shown) < len(selected):
            print(f"  ... {len(selected) - len(shown)} more (raise --limit)")
    return 0


def _cmd_spans(args) -> int:
    from repro.obs.critical_path import (
        detection_path,
        notification_path,
        view_update_path,
    )
    from repro.obs.export import (
        export_chrome_trace,
        render_msc,
        validate_chrome_trace,
    )
    from repro.obs.metrics import Histogram
    from repro.obs.spans import render_span_tree

    if not 0 <= args.crash < args.nodes:
        print(f"--crash {args.crash} outside 0..{args.nodes - 1}")
        return 2
    net = CanelyNetwork(node_count=args.nodes, spans=True)
    (
        net.scenario(seed=args.seed)
        .bootstrap()
        .crash(args.crash, at=ms(args.crash_after))
        .run_until_settled()
    )
    spans = net.sim.spans

    if args.chrome or args.validate:
        text = export_chrome_trace(spans, path=args.chrome, flows=args.flows)
        if args.chrome:
            print(f"chrome trace written to {args.chrome} ({len(text)} bytes)")
        if args.validate:
            problems = validate_chrome_trace(text)
            if problems:
                print(f"{len(problems)} trace-event problem(s):")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print("chrome trace validates: 0 problems")
        if not (args.msc or args.tree or args.critical_path):
            return 0

    if args.msc:
        crash_spans = spans.select(name="node.crash", node=args.crash)
        anchor = crash_spans[0].start if crash_spans else 0
        for line in render_msc(
            net.sim.trace, start=max(0, anchor - ms(1)), end=anchor + ms(30)
        ):
            print(line)
        return 0

    if args.tree:
        detects = spans.select(
            name="fd.detect",
            predicate=lambda s: s.attrs.get("failed") == args.crash,
        )
        if not detects or detects[0].parent is None:
            print(f"no fd.detect span for node {args.crash}")
            return 1
        for line in render_span_tree(
            spans, detects[0].parent, format_time=format_time
        ):
            print(line)
        return 0

    if args.critical_path:
        for path_fn in (detection_path, notification_path, view_update_path):
            for line in path_fn(spans, args.crash).render(format_time):
                print(line)
            print()
        return 0

    # Default: per-span-kind digest of the run, durations summarized at
    # bucket resolution (Histogram.summary()).
    digests = {}
    for span in spans:
        if span.duration is None:
            continue
        key = (span.category, span.name)
        if key not in digests:
            digests[key] = Histogram()
        digests[key].observe(span.duration)
    rows = []
    for (category, name), count in spans.summary().items():
        digest = digests.get((category, name))
        if digest is None or not digest.count:
            rows.append([category, name, str(count), "open", "-", "-"])
            continue
        stats = digest.summary()
        rows.append(
            [
                category,
                name,
                str(count),
                format_time(round(stats["mean"])),
                format_time(round(stats["max"])),
                format_time(round(stats["p99"])),
            ]
        )
    print(
        render_table(
            ["layer", "span", "count", "mean", "max", "p99<="],
            rows,
            title=(
                f"Spans: {len(spans)} recorded, node {args.crash} crashed "
                f"(seed {args.seed}, {args.nodes} nodes)"
            ),
        )
    )
    open_count = len(spans.open_spans())
    if open_count:
        print(f"{open_count} span(s) never closed (crashed-node queues)")
    return 0


def _metrics_csv(snapshot) -> str:
    """``metric,value`` lines from a registry snapshot.

    Scalar metrics emit one row; histograms flatten to dotted sub-keys
    (``name.count``, ``name.mean``, ``name.bucket.<boundary>``). Keys are
    emitted in sorted order, buckets in boundary order — deterministic
    for a deterministic run.
    """
    lines = ["metric,value"]
    for key in sorted(snapshot):
        value = snapshot[key]
        if not isinstance(value, dict):
            lines.append(f"{key},{value}")
            continue
        for sub in sorted(value):
            nested = value[sub]
            if isinstance(nested, dict):
                for boundary, count in nested.items():
                    lines.append(f"{key}.{sub}.{boundary},{count}")
            else:
                lines.append(f"{key}.{sub},{nested}")
    return "\n".join(lines)


def _cmd_metrics(args) -> int:
    import json

    net = _observed_network(args)
    registry = net.sim.metrics
    if args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    elif args.format == "csv":
        print(_metrics_csv(registry.snapshot()))
    else:
        print(registry.render())
    return 0


def _cmd_qos(args) -> int:
    from repro.core.backend import backend_names
    from repro.scenarios import run_catalog, scenario_names

    names = scenario_names()
    backends = args.backend or ["canely"]
    for backend in backends:
        if backend not in backend_names():
            print(
                f"unknown backend {backend!r}; "
                f"registered: {', '.join(backend_names())}"
            )
            return 2
    scenarios = names if args.catalog or not args.scenario else args.scenario
    unknown = [name for name in scenarios if name not in names]
    if unknown:
        print(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"catalog: {', '.join(names)}"
        )
        return 2
    report = run_catalog(
        scenarios=scenarios,
        backends=backends,
        seed=args.seed,
        quick=args.quick,
    )
    if args.format == "json":
        print(report.to_json())
    elif args.format == "csv":
        print(report.to_csv())
    else:
        print(report.render())
        if args.chart:
            from repro.analysis.figures import qos_chart

            print()
            print(qos_chart(report))
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"report written to {args.report}")
    if args.figure:
        from repro.analysis.figures import save_qos_figure

        print(f"figure written to {save_qos_figure(report, args.figure)}")
    return 0


def _parse_address(value: str, *, default_host: str = "127.0.0.1"):
    """``HOST:PORT`` (or bare ``PORT``) -> ``(host, port)``."""
    host, _, port = value.rpartition(":")
    return (host or default_host, int(port))


def _cmd_campaign(args) -> int:
    from repro.campaign import (
        CampaignReport,
        CampaignSpec,
        RemoteQueueExecutor,
        default_workers,
        run_campaign,
    )

    spec = CampaignSpec(
        scenarios=args.scenarios,
        seed=args.seed,
        node_min=args.node_min,
        node_max=args.node_max,
        crash_min=args.crash_min,
        crash_max=args.crash_max,
        backend=args.backend,
        segments=args.segments,
        # The online monitors encode CANELy's guarantees; rival backends
        # are judged by the final-state checks alone.
        monitors=args.backend == "canely",
    )

    executor = None
    if args.executor == "remote":
        host, port = _parse_address(args.listen, default_host="0.0.0.0")
        executor = RemoteQueueExecutor(
            host=host,
            port=port,
            authkey=args.authkey.encode(),
            startup_timeout=args.startup_timeout,
        )
        # Bind before blocking so an auto-assigned port (``--listen :0``)
        # is printed while workers can still be pointed at it.
        bound_host, bound_port = executor.listen()
        print(
            f"coordinator listening on {bound_host}:{bound_port} — start "
            f"workers with: python -m repro campaign-worker "
            f"--connect HOST:{bound_port}"
        )

    def progress(result):
        latencies = ", ".join(format_time(v) for v in result.latencies)
        print(
            f"scenario {result.index:>3} seed={result.seed} "
            f"verdict={result.verdict} nodes={result.nodes} "
            f"crashes={result.crashes} latencies=[{latencies}] "
            f"({result.elapsed_s:.2f}s, attempt {result.attempts})"
        )

    results = run_campaign(
        spec,
        workers=args.workers if args.workers is not None else default_workers(),
        timeout=args.timeout,
        retries=args.retries,
        checkpoint=args.checkpoint,
        resume=args.resume,
        progress=progress if args.verbose else None,
        executor=executor,
    )
    report = CampaignReport(spec, results)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"report written to {args.report}")
    return 0 if report.success else 1


def _cmd_campaign_worker(args) -> int:
    from repro.campaign import run_worker_agent
    from repro.errors import CampaignError

    host, port = _parse_address(args.connect)

    def progress(result):
        print(
            f"scenario {result.index:>3} seed={result.seed} "
            f"verdict={result.verdict} ({result.elapsed_s:.2f}s)"
        )

    try:
        completed = run_worker_agent(
            host,
            port,
            authkey=args.authkey.encode(),
            max_items=args.max_items,
            progress=progress if args.verbose else None,
        )
    except CampaignError as error:
        print(f"worker failed: {error}")
        return 1
    print(f"worker done: {completed} scenario(s) completed")
    return 0


def _cmd_check(args) -> int:
    from repro.check import (
        CheckSweep,
        ScheduleSpace,
        explore,
        replay_artifact,
        run_selftest,
    )
    from repro.check.selftest import MUTATIONS
    from repro.errors import CheckError

    if args.replay:
        import contextlib

        from repro.check import read_artifact

        try:
            _schedule, _expected, header = read_artifact(args.replay)
            # Selftest artifacts record the planted mutation: re-plant it,
            # otherwise the (intentionally) bug-free code cannot reproduce
            # the violating trace.
            mutation = header.get("mutation")
            planted = (
                MUTATIONS[mutation].plant()
                if mutation in MUTATIONS
                else contextlib.nullcontext()
            )
            if mutation in MUTATIONS:
                print(f"re-planting recorded mutation [{mutation}]")
            with planted:
                result, _ = replay_artifact(args.replay)
        except CheckError as error:
            print(f"replay FAILED: {error}")
            return 1
        print(
            f"replay ok: verdict={result.verdict} "
            f"monitor=[{result.monitor}] "
            f"fingerprint={result.fingerprint[:16]}... "
            f"({result.events} events, bit-for-bit)"
        )
        return 0

    if args.selftest:
        mutations = [args.mutation] if args.mutation else sorted(MUTATIONS)
        failed = 0
        for mutation in mutations:
            report = run_selftest(
                mutation, seed=args.seed, artifact_path=args.artifact
            )
            print(report.summary())
            if not report.passed:
                failed += 1
        return 1 if failed else 0

    import contextlib

    from repro.campaign import FingerprintStore, default_workers
    from repro.check import explore_coverage

    space = ScheduleSpace(nodes=args.nodes, members=args.members)

    def progress(result):
        print(
            f"schedule {result.index:>4} seed={result.seed} "
            f"verdict={result.verdict} ({result.elapsed_s:.2f}s)"
        )

    workers = args.workers if args.workers is not None else default_workers()
    store_cm = (
        FingerprintStore(args.fingerprints)
        if args.fingerprints
        else contextlib.nullcontext()
    )
    with store_cm as store:
        if args.coverage:
            if store is None:
                print(
                    "warning: --coverage without --fingerprints forgets "
                    "explored schedules between runs"
                )
            report = explore_coverage(
                space,
                budget=args.budget,
                store=store,
                seed=args.seed,
                batch_size=args.batch,
                init_depth=args.depth,
                workers=workers,
                timeout=args.timeout,
                progress=progress if args.verbose else None,
                artifact_dir=args.artifact_dir,
            )
        else:
            sweep = CheckSweep(
                space=space,
                depth=args.depth,
                samples=args.samples,
                seed=args.seed,
            )
            report = explore(
                sweep,
                workers=workers,
                timeout=args.timeout,
                checkpoint=args.checkpoint,
                resume=args.resume,
                progress=progress if args.verbose else None,
                artifact_dir=args.artifact_dir,
                fingerprint_store=store,
            )
    print(report.summary())
    for counterexample in report.counterexamples:
        print(counterexample.describe())
    if report.ok:
        print("every invariant held on every schedule")
    return 0 if report.ok else 1


def _cmd_compare(args) -> int:
    import json

    from repro.analysis.comparison import compare_backends, comparison_rows
    from repro.core.backend import backend_names

    for name in args.backends:
        if name not in backend_names():
            print(
                f"unknown backend {name!r}; "
                f"registered: {', '.join(backend_names())}"
            )
            return 2
    report = compare_backends(
        tuple(args.backends),
        nodes=args.nodes,
        segments=args.segments,
        seed=args.seed,
        crash_window_ms=args.crash_window,
        run_ms=args.run_ms,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    scenario = report["scenario"]
    header, rows = comparison_rows(report)
    print(
        render_table(
            header,
            rows,
            title=(
                f"Backend QoS — {scenario['nodes']} nodes, "
                f"{scenario['segments']} segment(s), seed {scenario['seed']}"
            ),
        )
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.perf import (
        compare_reports,
        load_report,
        render_report,
        run_benchmarks,
        write_report,
    )

    # Load the baseline up front: --baseline and --json may name the same
    # file (the `make bench-json` refresh-and-gate idiom).
    baseline = load_report(args.baseline) if args.baseline else None
    report = run_benchmarks(
        quick=args.quick, repeats=args.repeats, only=args.only or None
    )
    print(render_report(report))
    if args.json:
        write_report(report, args.json)
        print(f"report written to {args.json}")
    if args.require_sublinear:
        scaling = report["results"].get("stack_scaling")
        if scaling is None:
            print("--require-sublinear: stack_scaling did not run")
            return 1
        if not scaling.get("sublinear"):
            print(
                "--require-sublinear: per-event cost grew linearly "
                f"(cost ratio {scaling['cost_ratio']:.2f}x >= population "
                f"ratio {scaling['linear_ratio']:.0f}x)"
            )
            return 1
        print(
            f"sub-linear scaling: per-event cost ratio "
            f"{scaling['cost_ratio']:.2f}x over a "
            f"{scaling['linear_ratio']:.0f}x population"
        )
    if baseline is not None:
        regressions = compare_reports(
            baseline,
            report,
            threshold=args.threshold,
            portable_only=args.portable_only,
        )
        if regressions:
            print(f"\nREGRESSIONS vs {args.baseline}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"\nno regressions vs {args.baseline} (threshold {args.threshold:.0%})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CANELy node failure detection and membership (DSN 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="run the quickstart scenario")
    demo.add_argument(
        "--timeline",
        action="store_true",
        help="print the bus timeline around the crash",
    )
    demo.set_defaults(func=_cmd_demo)
    sub.add_parser("fig1", help="print the Fig. 1 table").set_defaults(
        func=_cmd_fig1
    )
    fig10 = sub.add_parser("fig10", help="print the Fig. 10 curves")
    fig10.add_argument("--nodes", type=int, default=32)
    fig10.add_argument("--lifesigns", type=int, default=8)
    fig10.add_argument("--crashes", type=int, default=4)
    fig10.add_argument(
        "--plot", action="store_true", help="render an ASCII chart instead"
    )
    fig10.set_defaults(func=_cmd_fig10)
    sub.add_parser("fig11", help="print the Fig. 11 table").set_defaults(
        func=_cmd_fig11
    )
    sub.add_parser(
        "inaccessibility", help="print the inaccessibility catalogue"
    ).set_defaults(func=_cmd_inaccessibility)
    bounds = sub.add_parser("bounds", help="print latency bounds")
    bounds.add_argument("--thb", type=int, default=10, help="heartbeat period, ms")
    bounds.add_argument("--tm", type=int, default=50, help="membership cycle, ms")
    bounds.set_defaults(func=_cmd_bounds)
    run = sub.add_parser("run", help="execute a JSON scenario script")
    run.add_argument("scenario", help="path to the scenario JSON file")
    run.add_argument(
        "--monitors",
        action="store_true",
        help="fail fast on online invariant violations during the run",
    )
    run.set_defaults(func=_cmd_run)
    trace = sub.add_parser(
        "trace", help="run a scenario and query/export its trace"
    )
    trace.add_argument(
        "--scenario", help="scenario JSON (default: the demo scenario)"
    )
    trace.add_argument("--category", help='e.g. "bus.tx" or the prefix "msh."')
    trace.add_argument("--node", type=int, help="filter by node identifier")
    trace.add_argument(
        "--limit", type=int, default=20, help="max records to print"
    )
    trace.add_argument(
        "--start-ms",
        type=float,
        default=None,
        help="only records at or after this time (combines with the other "
        "filters)",
    )
    trace.add_argument(
        "--end-ms",
        type=float,
        default=None,
        help="only records at or before this time",
    )
    trace.add_argument("--export", metavar="PATH", help="write JSONL instead")
    trace.set_defaults(func=_cmd_trace)
    spans = sub.add_parser(
        "spans",
        help="run a seeded crash scenario with causal span tracing and "
        "summarize, attribute or export the span trace",
    )
    spans.add_argument(
        "--nodes", type=int, default=5, help="network population"
    )
    spans.add_argument("--seed", type=int, default=0, help="scenario seed")
    spans.add_argument(
        "--crash", type=int, default=2, help="node to crash after bootstrap"
    )
    spans.add_argument(
        "--crash-after",
        type=float,
        default=2.0,
        help="crash delay after bootstrap, ms",
    )
    spans.add_argument(
        "--critical-path",
        action="store_true",
        help="print the exact latency decomposition (detection, "
        "notification, view update)",
    )
    spans.add_argument(
        "--tree",
        action="store_true",
        help="print the causal span tree of the detection",
    )
    spans.add_argument(
        "--chrome",
        metavar="PATH",
        help="export Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    spans.add_argument(
        "--flows",
        action="store_true",
        help="with --chrome: emit causal flow arrows across tracks",
    )
    spans.add_argument(
        "--validate",
        action="store_true",
        help="validate the Chrome trace export; exit 1 on problems",
    )
    spans.add_argument(
        "--msc",
        action="store_true",
        help="print a text message sequence chart around the crash",
    )
    spans.set_defaults(func=_cmd_spans)
    metrics = sub.add_parser(
        "metrics", help="run a scenario and print the metrics registry"
    )
    metrics.add_argument(
        "--scenario", help="scenario JSON (default: the demo scenario)"
    )
    metrics.add_argument(
        "--format",
        choices=["table", "json", "csv"],
        default="table",
        help="output format (json/csv keys are deterministically ordered)",
    )
    metrics.set_defaults(func=_cmd_metrics)
    qos = sub.add_parser(
        "qos",
        help="run the scenario catalog and print the failure-detector "
        "QoS comparison across backends",
    )
    qos.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="catalog scenario to run (repeatable; default: whole catalog)",
    )
    qos.add_argument(
        "--catalog",
        action="store_true",
        help="run the whole catalog (the default when no --scenario given)",
    )
    qos.add_argument(
        "--backend",
        action="append",
        metavar="NAME",
        help="membership backend to measure (repeatable; default: canely)",
    )
    qos.add_argument("--seed", type=int, default=0, help="root seed")
    qos.add_argument(
        "--quick",
        action="store_true",
        help="smaller populations and shorter runs (CI smoke budget)",
    )
    qos.add_argument(
        "--format",
        choices=["table", "json", "csv"],
        default="table",
        help="output format (json/csv keys are deterministically ordered)",
    )
    qos.add_argument(
        "--chart",
        action="store_true",
        help="with the table: also print the ASCII detection-p50 chart",
    )
    qos.add_argument(
        "--report",
        metavar="PATH",
        help="write the JSON report (byte-identical across same-seed runs)",
    )
    qos.add_argument(
        "--figure",
        metavar="PATH",
        help="write the detection chart as an image (needs matplotlib)",
    )
    qos.set_defaults(func=_cmd_qos)
    campaign = sub.add_parser(
        "campaign",
        help="run a parallel randomized fault-scenario campaign",
    )
    campaign.add_argument(
        "--scenarios", type=int, default=30, help="scenario count"
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = in-process; default: CPU count, max 8)",
    )
    campaign.add_argument("--seed", type=int, default=0, help="root seed")
    campaign.add_argument(
        "--node-min", type=int, default=6, help="smallest population"
    )
    campaign.add_argument(
        "--node-max", type=int, default=12, help="largest population"
    )
    campaign.add_argument(
        "--crash-min", type=int, default=1, help="fewest crashes per scenario"
    )
    campaign.add_argument(
        "--crash-max", type=int, default=3, help="most crashes per scenario"
    )
    campaign.add_argument(
        "--backend",
        default="canely",
        help="membership backend every scenario runs (canely, swim)",
    )
    campaign.add_argument(
        "--segments",
        type=int,
        default=1,
        help="bus segments per scenario, gateway-bridged when > 1",
    )
    campaign.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-scenario wall-clock budget, seconds",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries after a worker timeout/crash",
    )
    campaign.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append completed results to this JSONL file",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip scenarios already in the checkpoint file",
    )
    campaign.add_argument(
        "--report", metavar="PATH", help="also write the JSON report here"
    )
    campaign.add_argument(
        "--json", action="store_true", help="print the JSON report"
    )
    campaign.add_argument(
        "--verbose", action="store_true", help="print one line per scenario"
    )
    campaign.add_argument(
        "--executor",
        choices=["local", "remote"],
        default="local",
        help="execution fabric: the local process pool, or a TCP "
        "coordinator feeding `repro campaign-worker` agents",
    )
    campaign.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default="0.0.0.0:0",
        help="with --executor remote: coordinator bind address "
        "(port 0 auto-assigns; the bound address is printed)",
    )
    campaign.add_argument(
        "--authkey",
        default="repro-campaign",
        help="shared secret authenticating workers to the coordinator",
    )
    campaign.add_argument(
        "--startup-timeout",
        type=float,
        default=60.0,
        help="with --executor remote: seconds to wait for the first worker",
    )
    campaign.set_defaults(func=_cmd_campaign)
    worker = sub.add_parser(
        "campaign-worker",
        help="join a remote campaign coordinator and execute scenarios",
    )
    worker.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="coordinator address printed by `repro campaign "
        "--executor remote`",
    )
    worker.add_argument(
        "--authkey",
        default="repro-campaign",
        help="shared secret (must match the coordinator's)",
    )
    worker.add_argument(
        "--max-items",
        type=int,
        default=None,
        help="exit after this many scenarios (default: until shutdown)",
    )
    worker.add_argument(
        "--verbose", action="store_true", help="print one line per scenario"
    )
    worker.set_defaults(func=_cmd_campaign_worker)
    check = sub.add_parser(
        "check",
        help="systematically explore bounded fault schedules and check "
        "the membership invariants on every one",
    )
    check.add_argument(
        "--depth",
        type=int,
        default=1,
        help="exhaustive enumeration bound (combinations of alphabet "
        "actions up to this size; default 1)",
    )
    check.add_argument(
        "--samples",
        type=int,
        default=0,
        help="seeded guided-random schedules beyond the exhaustive bound",
    )
    check.add_argument("--seed", type=int, default=0, help="root seed")
    check.add_argument(
        "--nodes", type=int, default=5, help="network population"
    )
    check.add_argument(
        "--members",
        type=int,
        default=4,
        help="initial full members (< nodes leaves late joiners)",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = in-process; default: CPU count, max 8)",
    )
    check.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-schedule wall-clock budget, seconds",
    )
    check.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append completed results to this JSONL file",
    )
    check.add_argument(
        "--resume",
        action="store_true",
        help="skip schedules already in the checkpoint file",
    )
    check.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help="write one replayable counterexample artifact per violation",
    )
    check.add_argument(
        "--replay",
        metavar="ARTIFACT",
        help="re-execute a counterexample artifact and verify bit-for-bit "
        "reproduction instead of exploring",
    )
    check.add_argument(
        "--selftest",
        action="store_true",
        help="plant a protocol bug and assert the checker finds, "
        "minimizes and replays it",
    )
    check.add_argument(
        "--mutation",
        metavar="NAME",
        help="run --selftest against one registered mutation "
        "(default: all of them)",
    )
    check.add_argument(
        "--artifact",
        metavar="PATH",
        help="with --selftest: also write the counterexample artifact here",
    )
    check.add_argument(
        "--fingerprints",
        metavar="PATH",
        default=None,
        help="persistent fingerprint store: schedules already explored "
        "(across runs) are answered from the store, not re-executed",
    )
    check.add_argument(
        "--coverage",
        action="store_true",
        help="coverage-guided exploration: mutate schedules whose runs "
        "produced new trace fingerprints instead of a fixed population",
    )
    check.add_argument(
        "--budget",
        type=int,
        default=200,
        help="with --coverage: total schedules to execute",
    )
    check.add_argument(
        "--batch",
        type=int,
        default=16,
        help="with --coverage: schedules per campaign batch",
    )
    check.add_argument(
        "--verbose", action="store_true", help="print one line per schedule"
    )
    check.set_defaults(func=_cmd_check)
    bench = sub.add_parser(
        "bench",
        help="run the core hot-path benchmarks (frame encoding, event "
        "throughput, campaign wall-clock)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller corpus and fewer repeats (CI-friendly)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override the best-of repeat count for the timed benchmarks",
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable report here (e.g. BENCH_core.json)",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against a previous report; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="regression threshold as a fraction (default 0.25 = 25%%)",
    )
    bench.add_argument(
        "--portable-only",
        action="store_true",
        help="compare only machine-independent speedup ratios",
    )
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named benchmark (repeatable), e.g. "
        "--only stack_scaling",
    )
    bench.add_argument(
        "--require-sublinear",
        action="store_true",
        help="exit 1 unless stack_scaling reports sub-linear per-event "
        "cost growth",
    )
    bench.set_defaults(func=_cmd_bench)
    compare = sub.add_parser(
        "compare",
        help="run the same seeded crash scenario under rival membership "
        "backends and print their QoS side by side",
    )
    compare.add_argument(
        "--nodes", type=int, default=12, help="network population"
    )
    compare.add_argument(
        "--segments",
        type=int,
        default=1,
        help="bus segments, bridged by a store-and-forward gateway when > 1",
    )
    compare.add_argument("--seed", type=int, default=0, help="scenario seed")
    compare.add_argument(
        "--backends",
        nargs="+",
        default=["canely", "swim"],
        metavar="NAME",
        help="backends to compare (default: canely swim)",
    )
    compare.add_argument(
        "--crash-window",
        type=float,
        default=40.0,
        help="crash offset drawn from [0, this] ms after settling",
    )
    compare.add_argument(
        "--run-ms",
        type=float,
        default=500.0,
        help="how long the scenario runs after the crash, ms",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report (byte-identical per seed)",
    )
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
