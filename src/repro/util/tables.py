"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table with a separator under the header row.

    Every cell is converted with ``str``; columns are sized to the widest
    cell. Used by the benchmark harness to print the paper's tables next to
    the measured values.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
