"""Shared utilities: node-set bit vectors and table rendering."""

from repro.util.sets import NodeSet
from repro.util.tables import render_table

__all__ = ["NodeSet", "render_table"]
