"""Node-identifier sets as fixed-width bit vectors.

The membership protocol reasons in sets of node identifiers (the paper's
``V`` sets and the reception history vector, RHV). A :class:`NodeSet` is an
immutable bit vector over identifiers ``0 .. capacity-1``; the RHV travels on
the bus as its byte serialization, so ``capacity`` is bounded by the CAN data
field (8 bytes -> at most 64 nodes), exactly the regime the paper evaluates
(n = 32).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ConfigurationError

#: Largest population whose serialization fits the CAN data field (the
#: RHV travels as 8 data bytes); CANELy configurations are capped here.
MAX_CAPACITY = 64

#: Absolute NodeSet width bound. Backends that never put a view on the
#: wire (e.g. :mod:`repro.swim`, whose messages carry single node ids)
#: may reason in sets up to the MID node-identifier space; attempting to
#: serialize one past :data:`MAX_CAPACITY` still fails at the frame.
WIDE_MAX_CAPACITY = 256


class NodeSet:
    """Immutable set of node identifiers backed by an integer bitmask."""

    __slots__ = ("_bits", "_capacity")

    def __init__(self, ids: Iterable[int] = (), capacity: int = MAX_CAPACITY):
        if not 0 < capacity <= WIDE_MAX_CAPACITY:
            raise ConfigurationError(
                f"capacity must be in 1..{WIDE_MAX_CAPACITY}, got {capacity}"
            )
        bits = 0
        for node_id in ids:
            if not 0 <= node_id < capacity:
                raise ConfigurationError(
                    f"node id {node_id} outside 0..{capacity - 1}"
                )
            bits |= 1 << node_id
        self._bits = bits
        self._capacity = capacity

    # -- constructors -------------------------------------------------------

    @classmethod
    def _from_bits(cls, bits: int, capacity: int) -> "NodeSet":
        new = cls.__new__(cls)
        new._bits = bits
        new._capacity = capacity
        return new

    @classmethod
    def empty(cls, capacity: int = MAX_CAPACITY) -> "NodeSet":
        """The empty set over the given capacity."""
        return cls((), capacity)

    @classmethod
    def universe(cls, capacity: int = MAX_CAPACITY) -> "NodeSet":
        """The set of *all* identifiers ``0 .. capacity-1`` (the paper's U)."""
        return cls._from_bits((1 << capacity) - 1, capacity)

    @classmethod
    def single(cls, node_id: int, capacity: int = MAX_CAPACITY) -> "NodeSet":
        """The singleton ``{node_id}``."""
        return cls((node_id,), capacity)

    @classmethod
    def from_bytes(cls, raw: bytes, capacity: int = MAX_CAPACITY) -> "NodeSet":
        """Deserialize a set previously produced by :meth:`to_bytes`."""
        bits = int.from_bytes(raw, "little")
        if bits >> capacity:
            raise ConfigurationError(
                f"serialized set has members beyond capacity {capacity}"
            )
        return cls._from_bits(bits, capacity)

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Little-endian byte serialization, ``ceil(capacity / 8)`` bytes."""
        return self._bits.to_bytes((self._capacity + 7) // 8, "little")

    # -- set algebra ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Width of the bit vector (maximum node population)."""
        return self._capacity

    def _check_peer(self, other: "NodeSet") -> None:
        if not isinstance(other, NodeSet):
            raise TypeError(f"expected NodeSet, got {type(other).__name__}")
        if other._capacity != self._capacity:
            raise ConfigurationError(
                f"capacity mismatch: {self._capacity} vs {other._capacity}"
            )

    def union(self, other: "NodeSet") -> "NodeSet":
        self._check_peer(other)
        return NodeSet._from_bits(self._bits | other._bits, self._capacity)

    def intersection(self, other: "NodeSet") -> "NodeSet":
        self._check_peer(other)
        return NodeSet._from_bits(self._bits & other._bits, self._capacity)

    def difference(self, other: "NodeSet") -> "NodeSet":
        self._check_peer(other)
        return NodeSet._from_bits(self._bits & ~other._bits, self._capacity)

    def complement(self) -> "NodeSet":
        """All identifiers not in this set (the paper's ``~V``)."""
        mask = (1 << self._capacity) - 1
        return NodeSet._from_bits(~self._bits & mask, self._capacity)

    def add(self, node_id: int) -> "NodeSet":
        """A new set with ``node_id`` included."""
        if not 0 <= node_id < self._capacity:
            raise ConfigurationError(
                f"node id {node_id} outside 0..{self._capacity - 1}"
            )
        return NodeSet._from_bits(self._bits | (1 << node_id), self._capacity)

    def remove(self, node_id: int) -> "NodeSet":
        """A new set with ``node_id`` excluded (no error if absent)."""
        if not 0 <= node_id < self._capacity:
            raise ConfigurationError(
                f"node id {node_id} outside 0..{self._capacity - 1}"
            )
        return NodeSet._from_bits(self._bits & ~(1 << node_id), self._capacity)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def isdisjoint(self, other: "NodeSet") -> bool:
        self._check_peer(other)
        return not self._bits & other._bits

    def issubset(self, other: "NodeSet") -> bool:
        self._check_peer(other)
        return not self._bits & ~other._bits

    # -- container protocol ---------------------------------------------------

    def __contains__(self, node_id: int) -> bool:
        return 0 <= node_id < self._capacity and bool(self._bits >> node_id & 1)

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        node_id = 0
        while bits:
            if bits & 1:
                yield node_id
            bits >>= 1
            node_id += 1

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __bool__(self) -> bool:
        return bool(self._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeSet):
            return NotImplemented
        return self._bits == other._bits and self._capacity == other._capacity

    def __hash__(self) -> int:
        return hash((self._bits, self._capacity))

    def __repr__(self) -> str:
        return f"NodeSet({{{', '.join(map(str, self))}}}, capacity={self._capacity})"
