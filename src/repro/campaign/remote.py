"""The distributed campaign fabric: TCP coordinator + worker agents.

:class:`RemoteQueueExecutor` turns :func:`~repro.campaign.engine.run_campaign`
into a work-queue *coordinator*: it listens on a TCP address, hands work
items (scenario indexes) to every ``repro campaign-worker --connect
host:port`` agent that connects, and folds their results back into the
normal campaign bookkeeping. The fabric is pull-based and self-balancing:

* **work stealing** — workers pull the next pending index the moment they
  go idle, so a fast host automatically drains the queue of a slow one;
  once the queue is empty, idle workers *steal* the longest-outstanding
  in-flight index and race the straggler (first result wins, duplicates
  are discarded — results are a function of (scenario, seed), so the race
  is benign by construction).
* **heartbeat-based dead-worker requeue** — agents heartbeat between and
  during scenarios; a closed connection or a silent worker gets its
  outstanding work requeued (bounded by ``retries``, then reported as
  ``worker_crash``, exactly like a crashed local pool worker).
* **sharded checkpoints** — each worker's results are appended to its own
  shard file (``checkpoint.0000.jsonl``, ...), so concurrent completions
  never interleave inside one file; resume merges every shard.

The coordinator ships ``(spec, scenario_fn)`` to each agent by pickle over
:mod:`multiprocessing.connection` (HMAC-authenticated with ``authkey``),
so both must be picklable — module-level scenario functions and plain
dataclass specs, which is what the campaign and check layers use anyway.
Per-scenario ``timeout`` is advisory in this fabric: the coordinator
requeues an overdue index (it cannot kill a remote process), and a
straggler's late result is still accepted if it arrives first.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Client, Listener
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.campaign.executors import Executor, FinishFn, _attempt
from repro.campaign.spec import (
    VERDICT_TIMEOUT,
    VERDICT_WORKER_CRASH,
    ScenarioResult,
)
from repro.errors import CampaignError

__all__ = ["RemoteQueueExecutor", "run_worker_agent", "DEFAULT_AUTHKEY"]

#: Default HMAC authentication key for the coordinator/worker handshake.
#: Override it (``--authkey``) for anything beyond a trusted lab network:
#: the channel carries pickles, so the key is the trust boundary.
DEFAULT_AUTHKEY = b"repro-campaign"

# Wire messages (plain tuples, pickled by multiprocessing.connection):
#   worker -> coordinator: ("hello", info), ("heartbeat",),
#                          ("result", index, attempt, result_dict)
#   coordinator -> worker: ("task", spec, scenario_fn, heartbeat_s),
#                          ("work", index, attempt), ("shutdown",)

_WAIT_TICK_S = 0.1


@dataclass
class _WorkerSlot:
    """One connected agent: its connection, shard number and liveness."""

    slot: int
    connection: Any
    info: Dict[str, Any]
    last_heard: float
    dead: bool = False
    #: Indexes currently dispatched to this worker.
    outstanding: Set[int] = field(default_factory=set)


@dataclass
class _Flight:
    """One in-flight index: who runs it, since when, which attempt."""

    index: int
    attempt: int
    started: float
    slots: Set[int] = field(default_factory=set)


class RemoteQueueExecutor(Executor):
    """TCP work-queue coordinator for ``repro campaign-worker`` agents.

    Parameters:
        host / port: bind address (``port=0`` picks a free port; read the
            bound address back from :attr:`address` after :meth:`listen`).
        authkey: shared HMAC key agents must present.
        startup_timeout: seconds to wait for the *first* worker before
            failing the campaign instead of hanging forever.
        heartbeat_s: interval agents heartbeat at (shipped to them in the
            task handshake).
        heartbeat_timeout: silence longer than this marks a worker dead
            and requeues its outstanding work.
        steal_after: an in-flight index older than this may be handed to
            an idle worker as well (default: ``heartbeat_s * 4``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        authkey: bytes = DEFAULT_AUTHKEY,
        startup_timeout: float = 60.0,
        heartbeat_s: float = 1.0,
        heartbeat_timeout: float = 10.0,
        steal_after: Optional[float] = None,
    ) -> None:
        if startup_timeout <= 0:
            raise CampaignError(
                f"startup_timeout must be positive: {startup_timeout}"
            )
        self.host = host
        self.port = port
        self.authkey = authkey
        self.startup_timeout = startup_timeout
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout = heartbeat_timeout
        self.steal_after = (
            heartbeat_s * 4 if steal_after is None else steal_after
        )
        self._listener: Optional[Listener] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — call :meth:`listen` first for port 0."""
        if self._listener is not None:
            return self._listener.address  # type: ignore[return-value]
        return (self.host, self.port)

    def listen(self) -> Tuple[str, int]:
        """Bind the coordinator socket (idempotent) and return the address.

        Separate from :meth:`execute` so callers can learn an
        auto-assigned port — and print it for workers — before the
        campaign blocks waiting for them.
        """
        if self._listener is None:
            self._listener = Listener(
                (self.host, self.port), authkey=self.authkey
            )
        return self.address

    def describe(self) -> str:
        host, port = self.address
        return f"RemoteQueueExecutor({host}:{port})"

    # -- the coordinator loop --------------------------------------------------

    def execute(
        self, spec, pending, *, timeout, retries, scenario_fn, finish
    ) -> None:
        self.listen()
        run = _CoordinatorRun(
            executor=self,
            spec=spec,
            pending=pending,
            timeout=timeout,
            retries=retries,
            scenario_fn=scenario_fn,
            finish=finish,
        )
        try:
            run.drive()
        finally:
            listener, self._listener = self._listener, None
            if listener is not None:
                try:
                    listener.close()
                except OSError:  # pragma: no cover
                    pass


class _CoordinatorRun:
    """State of one ``execute`` call: queue, flights, workers, threads."""

    def __init__(
        self, executor, spec, pending, timeout, retries, scenario_fn, finish
    ) -> None:
        self.executor = executor
        self.spec = spec
        self.timeout = timeout
        self.retries = retries
        self.scenario_fn = scenario_fn
        self._finish = finish

        self.lock = threading.Lock()
        self.work_ready = threading.Condition(self.lock)
        self.pending: Deque[int] = pending
        self.attempts: Dict[int, int] = {}
        self.flights: Dict[int, _Flight] = {}
        self.remaining: Set[int] = set(pending)
        self.workers: Dict[int, _WorkerSlot] = {}
        self.ever_connected = False
        self.done = False
        self.failure: Optional[BaseException] = None
        self.threads: List[threading.Thread] = []

    # -- completion plumbing ---------------------------------------------------

    def finish(self, result: ScenarioResult, shard: Optional[int]) -> None:
        """Record one final result (caller must hold the lock)."""
        if result.index not in self.remaining:
            return  # a stolen/late duplicate lost the race
        self.remaining.discard(result.index)
        self.flights.pop(result.index, None)
        for worker in self.workers.values():
            worker.outstanding.discard(result.index)
        self._finish(result, shard=shard)
        if not self.remaining:
            self.done = True
        self.work_ready.notify_all()

    def give_up(self, index: int, verdict: str, detail: str) -> None:
        """Requeue ``index`` or, out of retries, report the failure verdict
        (caller must hold the lock)."""
        attempt = self.attempts.get(index, 1)
        if attempt <= self.retries:
            if index in self.remaining and index not in self.pending:
                self.pending.append(index)
                self.work_ready.notify_all()
            return
        self.finish(
            ScenarioResult(
                index=index,
                seed=self.spec.scenario_seed(index),
                verdict=verdict,
                detail=detail,
                attempts=attempt,
            ),
            shard=None,
        )

    # -- worker service threads ------------------------------------------------

    def _next_work(self, worker: _WorkerSlot) -> Optional[int]:
        """The next index for ``worker``: pending first, then a steal.

        Returns None when the worker should keep waiting; caller holds the
        lock. A steal targets the longest-outstanding flight this worker
        is not already running, once it is ``steal_after`` old — racing
        the straggler costs only duplicate (deterministic) work.
        """
        if self.pending:
            index = self.pending.popleft()
            self.attempts[index] = self.attempts.get(index, 0) + 1
            self.flights[index] = _Flight(
                index=index,
                attempt=self.attempts[index],
                started=time.monotonic(),
                slots={worker.slot},
            )
            return index
        now = time.monotonic()
        candidates = [
            flight
            for flight in self.flights.values()
            if worker.slot not in flight.slots
            and now - flight.started >= self.executor.steal_after
        ]
        if not candidates:
            return None
        flight = min(candidates, key=lambda f: f.started)
        flight.slots.add(worker.slot)
        return flight.index

    def _serve(self, worker: _WorkerSlot) -> None:
        """One thread per connected agent: handshake, dispatch, collect."""
        conn = worker.connection
        try:
            hello = conn.recv()
            if not (isinstance(hello, tuple) and hello[0] == "hello"):
                raise CampaignError(f"bad worker handshake: {hello!r}")
            with self.lock:
                worker.info = dict(hello[1]) if len(hello) > 1 else {}
                worker.last_heard = time.monotonic()
            conn.send(
                (
                    "task",
                    self.spec,
                    self.scenario_fn,
                    self.executor.heartbeat_s,
                )
            )
            while True:
                index: Optional[int] = None
                with self.work_ready:
                    while not self.done and not worker.dead:
                        index = self._next_work(worker)
                        if index is not None:
                            worker.outstanding.add(index)
                            break
                        self.work_ready.wait(_WAIT_TICK_S)
                    if index is None:
                        break
                    attempt = self.attempts.get(index, 1)
                conn.send(("work", index, attempt))
                # Collect until this item's result (heartbeats interleave).
                while True:
                    message = conn.recv()
                    with self.lock:
                        worker.last_heard = time.monotonic()
                    if message[0] == "heartbeat":
                        continue
                    if message[0] == "result":
                        _, r_index, _r_attempt, raw = message
                        result = ScenarioResult.from_dict(raw)
                        result.attempts = self.attempts.get(
                            r_index, result.attempts
                        )
                        with self.lock:
                            worker.outstanding.discard(r_index)
                            self.finish(result, shard=worker.slot)
                        break
                    raise CampaignError(
                        f"unexpected worker message: {message[0]!r}"
                    )
            try:
                conn.send(("shutdown",))
            except OSError:
                pass
        except (EOFError, OSError, BrokenPipeError):
            pass  # connection lost: the cleanup below requeues
        except BaseException as error:  # pragma: no cover - defensive
            with self.lock:
                self.failure = error
                self.done = True
                self.work_ready.notify_all()
        finally:
            with self.lock:
                self._worker_lost(worker)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _worker_lost(self, worker: _WorkerSlot) -> None:
        """Requeue a dead worker's outstanding work (lock held)."""
        if worker.dead:
            return
        worker.dead = True
        for index in sorted(worker.outstanding):
            flight = self.flights.get(index)
            if flight is not None:
                flight.slots.discard(worker.slot)
                if flight.slots:
                    continue  # another worker still racing this index
                del self.flights[index]
            if index in self.remaining:
                self.give_up(
                    index,
                    VERDICT_WORKER_CRASH,
                    f"campaign worker "
                    f"{worker.info.get('host', '?')}#{worker.slot} "
                    f"disconnected before reporting a result "
                    f"(attempt {self.attempts.get(index, 1)}/"
                    f"{self.retries + 1})",
                )
        worker.outstanding.clear()
        self.work_ready.notify_all()

    def _accept_loop(self) -> None:
        """Admit agents until the campaign is done (listener close stops it)."""
        slot = 0
        while True:
            try:
                conn = self.executor._listener.accept()
            except (OSError, AttributeError):
                return  # listener closed: the campaign is over
            except Exception:
                continue  # failed handshake/auth: keep serving real agents
            with self.lock:
                if self.done:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    return
                worker = _WorkerSlot(
                    slot=slot,
                    connection=conn,
                    info={},
                    last_heard=time.monotonic(),
                )
                self.workers[slot] = worker
                self.ever_connected = True
                slot += 1
            thread = threading.Thread(
                target=self._serve, args=(worker,), daemon=True
            )
            thread.start()
            self.threads.append(thread)

    # -- watchdog + main wait --------------------------------------------------

    def _watchdog_pass(self) -> None:
        """Expire silent workers and overdue flights (lock held)."""
        now = time.monotonic()
        for worker in list(self.workers.values()):
            if worker.dead:
                continue
            if now - worker.last_heard > self.executor.heartbeat_timeout:
                # Silent worker: close its socket so the service thread
                # unblocks and requeues its work.
                try:
                    worker.connection.close()
                except OSError:  # pragma: no cover
                    pass
                self._worker_lost(worker)
        for flight in list(self.flights.values()):
            if now - flight.started <= self.timeout:
                continue
            index = flight.index
            # The coordinator cannot kill a remote computation; drop the
            # flight and requeue (or report timeout). A straggler's late
            # result is still accepted if it lands before a retry does.
            del self.flights[index]
            for worker in self.workers.values():
                worker.outstanding.discard(index)
            if index in self.remaining:
                self.give_up(
                    index,
                    VERDICT_TIMEOUT,
                    f"scenario exceeded the {self.timeout:.1f}s budget "
                    f"on the remote fabric "
                    f"(attempt {self.attempts.get(index, 1)}/"
                    f"{self.retries + 1})",
                )

    def drive(self) -> None:
        """Block until every pending index has finished."""
        if not self.remaining:
            return
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        started = time.monotonic()
        last_live = started
        try:
            with self.work_ready:
                while not self.done:
                    now = time.monotonic()
                    if (
                        not self.ever_connected
                        and now - started > self.executor.startup_timeout
                    ):
                        raise CampaignError(
                            f"no campaign worker connected to "
                            f"{self.executor.address[0]}:"
                            f"{self.executor.address[1]} within "
                            f"{self.executor.startup_timeout:.0f}s — start "
                            f"agents with `repro campaign-worker --connect "
                            f"HOST:PORT`"
                        )
                    if any(not w.dead for w in self.workers.values()):
                        last_live = now
                    elif (
                        self.ever_connected
                        and self.remaining
                        and now - last_live > self.executor.startup_timeout
                    ):
                        # Every agent is gone and none replaced them: fail
                        # instead of waiting forever for a reconnect.
                        raise CampaignError(
                            "every campaign worker disconnected with "
                            f"{len(self.remaining)} scenario(s) unfinished "
                            f"(waited {self.executor.startup_timeout:.0f}s "
                            f"for replacements)"
                        )
                    self._watchdog_pass()
                    self.work_ready.wait(_WAIT_TICK_S)
            if self.failure is not None:
                raise self.failure
        finally:
            with self.lock:
                self.done = True
                self.work_ready.notify_all()
                for worker in self.workers.values():
                    try:
                        worker.connection.close()
                    except OSError:  # pragma: no cover
                        pass
            # Unblock the accept loop.
            try:
                self.executor._listener.close()
            except (OSError, AttributeError):  # pragma: no cover
                pass
            for thread in self.threads:
                thread.join(timeout=2.0)
            accept.join(timeout=2.0)


# -- the worker agent ----------------------------------------------------------


def run_worker_agent(
    host: str,
    port: int,
    authkey: bytes = DEFAULT_AUTHKEY,
    max_items: Optional[int] = None,
    progress=None,
) -> int:
    """Serve one coordinator until shutdown; return scenarios completed.

    The agent connects, says hello, receives the pickled ``(spec,
    scenario_fn)`` task, then loops: pull a work item, run it in-process,
    post the result. A daemon thread heartbeats at the coordinator's
    requested interval the whole time — including *during* a long
    scenario — so only a genuinely dead agent is requeued, not a busy
    one. ``max_items`` bounds how many scenarios this agent will run
    (useful for tests and draining hosts).
    """
    conn = Client((host, port), authkey=authkey)
    send_lock = threading.Lock()
    completed = 0
    stop = threading.Event()
    try:
        with send_lock:
            conn.send(
                (
                    "hello",
                    {"pid": os.getpid(), "host": socket.gethostname()},
                )
            )
        task = conn.recv()
        if not (isinstance(task, tuple) and task[0] == "task"):
            raise CampaignError(f"bad coordinator handshake: {task!r}")
        _, spec, scenario_fn, heartbeat_s = task

        def beat() -> None:
            while not stop.wait(heartbeat_s):
                try:
                    with send_lock:
                        conn.send(("heartbeat",))
                except OSError:
                    return

        threading.Thread(target=beat, daemon=True).start()

        while max_items is None or completed < max_items:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message[0] == "shutdown":
                break
            if message[0] != "work":
                raise CampaignError(
                    f"unexpected coordinator message: {message[0]!r}"
                )
            _, index, attempt = message
            result = _attempt(spec, index, scenario_fn)
            result.attempts = attempt
            if progress is not None:
                progress(result)
            with send_lock:
                conn.send(("result", index, attempt, result.to_dict()))
            completed += 1
    except (EOFError, BrokenPipeError, ConnectionResetError):
        pass  # coordinator finished (or died): either way, we are done
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    return completed
