"""Campaign persistence: sharded JSONL checkpoints and fingerprint dedup.

Two stores live here, both append-only JSONL so a kill mid-write costs at
most the final line:

* :class:`CheckpointStore` — the campaign's completed-result sink. The
  base path holds shardless writes (the local executors); a distributed
  executor routes each worker's results to its own numbered shard file
  (``campaign.0000.jsonl``, ``campaign.0001.jsonl``, ...) so concurrent
  writers never interleave inside one file. :func:`load_checkpoint` merges
  the base file and every shard on resume, skipping truncated or stale
  lines exactly like the single-file loader always did. Opening a store
  with ``resume=False`` *truncates* the base file and deletes stale
  shards — a rerun must not leave old lines behind for a later
  ``resume=True`` to trust.

* :class:`FingerprintStore` — the model checker's memory of explored
  schedules. Each record maps a *structural* schedule key (SHA-256 over
  the canonical schedule dict, seed label excluded — two structurally
  identical schedules execute identically) to the SHA-256 trace
  fingerprint its run produced. Sweeps consult it before dispatch so a
  schedule is never executed twice across campaigns, and coverage-guided
  exploration uses the set of known trace fingerprints to decide which
  runs discovered *new* behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from typing import IO, Any, Dict, List, Optional

from repro.campaign.spec import ScenarioResult

__all__ = [
    "CheckpointStore",
    "FingerprintStore",
    "checkpoint_shard_paths",
    "load_checkpoint",
    "schedule_key",
]


def _shard_path(path: str, shard: int) -> str:
    """``campaign.jsonl`` + shard 2 -> ``campaign.0002.jsonl``."""
    root, ext = os.path.splitext(path)
    return f"{root}.{shard:04d}{ext}"


def checkpoint_shard_paths(path: str) -> List[str]:
    """Every existing checkpoint file for ``path``: the base, then the
    numbered shards in order."""
    paths = [path] if os.path.exists(path) else []
    root, ext = os.path.splitext(path)
    directory = os.path.dirname(path) or "."
    pattern = re.compile(
        re.escape(os.path.basename(root)) + r"\.(\d{4})" + re.escape(ext) + r"$"
    )
    shards = []
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            match = pattern.match(name)
            if match:
                shards.append((int(match.group(1)), os.path.join(directory, name)))
    paths.extend(p for _, p in sorted(shards))
    return paths


class CheckpointStore:
    """Append-only JSONL sink of completed scenario results, shardable.

    ``write(result)`` appends to the base path; ``write(result, shard=k)``
    appends to the numbered shard file, opened lazily so a local campaign
    never creates empty shards. All writes are flushed immediately and
    serialized under a lock, so concurrent executor threads can share one
    store. ``path=None`` disables persistence entirely.
    """

    def __init__(self, path: Optional[str], resume: bool = False) -> None:
        self._path = path
        self._handles: Dict[Optional[int], IO[str]] = {}
        self._lock = threading.Lock()
        if path and not resume:
            # A fresh (non-resumed) campaign must not accumulate stale
            # lines a later resume would trust: truncate the base file and
            # drop every shard left over from prior runs.
            open(path, "w").close()
            for stale in checkpoint_shard_paths(path):
                if stale != path:
                    os.remove(stale)

    def _handle(self, shard: Optional[int]) -> IO[str]:
        handle = self._handles.get(shard)
        if handle is None:
            assert self._path is not None
            target = self._path if shard is None else _shard_path(self._path, shard)
            handle = open(target, "a")
            self._handles[shard] = handle
        return handle

    def write(self, result: ScenarioResult, shard: Optional[int] = None) -> None:
        if self._path is None:
            return
        line = json.dumps(result.to_dict()) + "\n"
        with self._lock:
            handle = self._handle(shard)
            handle.write(line)
            handle.flush()

    def close(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_checkpoint(path: str, spec) -> Dict[int, ScenarioResult]:
    """Completed results from a (possibly truncated, possibly sharded)
    checkpoint.

    Merges the base file with every ``path``-derived shard file
    (``campaign.0000.jsonl``, ...). Lines that do not parse, name an index
    outside the campaign, or carry a seed that no longer matches
    ``spec.scenario_seed(index)`` (the spec changed under the checkpoint)
    are skipped, not trusted. Duplicate indexes across files resolve to the
    last one seen — results are a function of (scenario, seed) only, so
    any copy is the same result.
    """
    completed: Dict[int, ScenarioResult] = {}
    for file_path in checkpoint_shard_paths(path):
        with open(file_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    result = ScenarioResult.from_dict(raw)
                except (ValueError, TypeError):
                    continue  # truncated or foreign line
                if not 0 <= result.index < spec.scenarios:
                    continue
                if result.seed != spec.scenario_seed(result.index):
                    continue
                completed[result.index] = result
    return completed


# -- fingerprint store ---------------------------------------------------------


def schedule_key(schedule) -> str:
    """Structural identity of a fault schedule: SHA-256 over its canonical
    dict with the ``seed`` label removed.

    The seed is an identification label, not an input to execution (the
    run is deterministic in the schedule's structure), so two schedules
    that differ only in seed share a key — and dedup across enumeration,
    sampling and mutation paths works.
    """
    raw = schedule.to_dict()
    raw.pop("seed", None)
    blob = json.dumps(raw, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class FingerprintStore:
    """Persistent record of explored schedules and their trace fingerprints.

    One JSONL line per explored schedule::

        {"schedule": <structural key>, "trace": <trace fingerprint>,
         "verdict": "ok", "seed": 17}

    ``lookup`` answers "has this schedule ever been executed?" before
    dispatch; ``record`` persists a finished run and reports whether its
    trace fingerprint was *new* — the novelty signal coverage-guided
    exploration feeds on. ``path=None`` keeps the store in memory only.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._records: Dict[str, Dict[str, Any]] = {}
        self._traces: set = set()
        self._handle: Optional[IO[str]] = None
        self._lock = threading.Lock()
        #: How many lookups found an existing record (dedup hits).
        self.hits = 0
        if path and os.path.exists(path):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        raw = json.loads(line)
                    except ValueError:
                        continue  # truncated final line
                    key = raw.get("schedule")
                    trace = raw.get("trace")
                    if not key or not trace:
                        continue
                    self._records[key] = raw
                    self._traces.add(trace)
        if path:
            self._handle = open(path, "a")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    @property
    def trace_count(self) -> int:
        """How many distinct trace fingerprints the store has seen."""
        return len(self._traces)

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for a schedule key, or None if unexplored."""
        record = self._records.get(key)
        if record is not None:
            self.hits += 1
        return record

    def is_new_trace(self, trace: str) -> bool:
        """True when ``trace`` has never been recorded."""
        return trace not in self._traces

    def record(self, key: str, trace: str, verdict: str, seed: int = 0) -> bool:
        """Persist one explored schedule; return True when its trace
        fingerprint was new (the run discovered behaviour the store had
        never seen)."""
        with self._lock:
            novel = trace not in self._traces
            self._traces.add(trace)
            if key not in self._records:
                raw = {
                    "schedule": key,
                    "trace": trace,
                    "verdict": verdict,
                    "seed": seed,
                }
                self._records[key] = raw
                if self._handle is not None:
                    self._handle.write(
                        json.dumps(raw, sort_keys=True) + "\n"
                    )
                    self._handle.flush()
            return novel

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "FingerprintStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
