"""Pluggable campaign executors.

:func:`~repro.campaign.engine.run_campaign` owns *what* runs (the spec,
the pending indexes, checkpoint bookkeeping); an :class:`Executor` owns
*how*: where worker capacity comes from and how process-level failures
(hangs, crashes) map back to verdicts. Three strategies ship:

* :class:`SerialExecutor` — in-process, sequential, no isolation and no
  timeouts; the deterministic baseline benchmarks and coverage tools see
  into (the old ``workers=0`` mode).
* :class:`LocalPoolExecutor` — the single-host multiprocessing pool:
  one process per scenario, at most ``workers`` alive at once, with
  per-scenario wall-clock timeouts, worker-crash detection and bounded
  retry (the old ``workers >= 1`` mode, semantics preserved).
* :class:`~repro.campaign.remote.RemoteQueueExecutor` — a TCP
  coordinator handing work items to ``repro campaign-worker`` agents on
  any number of hosts, with work stealing, heartbeat-based dead-worker
  requeue and sharded checkpoints.

Whatever the executor, results remain a function of (scenario, seed)
only — never of worker count, placement or completion order. That is the
contract that lets a million-scenario sweep move between a laptop and a
cluster without changing its statistics.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from repro.campaign.spec import (
    VERDICT_ERROR,
    VERDICT_TIMEOUT,
    VERDICT_WORKER_CRASH,
    ScenarioResult,
)
from repro.errors import CampaignError

#: ``finish(result, shard=None)`` — the engine's completion callback; the
#: optional shard routes the checkpoint write (distributed executors give
#: every worker its own shard file).
FinishFn = Callable[..., None]

#: How long a reaper keeps polling a dead or terminated worker's queue
#: before deciding no result was posted (SimpleQueue writes straight to
#: the pipe, so a clean put() is visible by the time the child has
#: exited).
_DRAIN_GRACE_S = 0.5
_POLL_S = 0.02


def default_workers() -> int:
    """A sensible worker-pool size for this machine."""
    return max(1, min(os.cpu_count() or 1, 8))


def _context():
    """Prefer fork (cheap, inherits closures); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _attempt(spec, index: int, scenario_fn) -> ScenarioResult:
    """Run one scenario, mapping stray exceptions to an ``error`` verdict."""
    try:
        result = scenario_fn(spec, index)
    except Exception as error:
        import traceback

        result = ScenarioResult(
            index=index,
            seed=spec.scenario_seed(index),
            verdict=VERDICT_ERROR,
            detail=f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
        )
    return result


def _child_main(spec, index, scenario_fn, queue) -> None:
    """Worker-process entry point: one scenario, one result, exit."""
    queue.put(_attempt(spec, index, scenario_fn).to_dict())


def _drain_queue(queue, grace_s: float) -> Optional[Dict[str, Any]]:
    """One posted result from ``queue``, polling up to ``grace_s``."""
    deadline = time.monotonic() + grace_s
    while True:
        if not queue.empty():
            return queue.get()
        if time.monotonic() >= deadline:
            return None
        time.sleep(_POLL_S)


@dataclass
class _Job:
    """One live worker process and its bookkeeping."""

    index: int
    process: Any
    queue: Any
    started: float
    attempt: int


class Executor(ABC):
    """Strategy that executes a campaign's pending scenario indexes.

    ``execute`` must call ``finish`` exactly once per index in ``pending``
    (with whatever verdict the execution earned) before returning — the
    engine asserts completeness afterwards. ``scenario_fn`` and ``spec``
    must be treated as opaque: distributed executors ship them to workers
    by pickle, so both must be picklable (module-level functions, plain
    dataclasses).
    """

    @abstractmethod
    def execute(
        self,
        spec,
        pending: Deque[int],
        *,
        timeout: float,
        retries: int,
        scenario_fn,
        finish: FinishFn,
    ) -> None:
        """Run every index in ``pending``, reporting through ``finish``."""

    def describe(self) -> str:
        """One-line form for logs and reports."""
        return type(self).__name__


class SerialExecutor(Executor):
    """In-process, sequential execution: no isolation, no timeouts.

    The baseline everything else is measured against — and the only mode
    that sees monkeypatched code under test, since nothing crosses a
    process boundary.
    """

    def execute(
        self, spec, pending, *, timeout, retries, scenario_fn, finish
    ) -> None:
        while pending:
            index = pending.popleft()
            finish(_attempt(spec, index, scenario_fn))


class LocalPoolExecutor(Executor):
    """Single-host multiprocessing pool: launch, reap, retry, report.

    Each worker process runs exactly one scenario and exits, so scenario
    state cannot leak between runs. A worker over its wall-clock budget is
    terminated — *after* its result queue is drained, so a result posted
    just before the deadline is kept, not discarded — and the scenario
    retried, then reported as ``timeout``; a worker that dies without
    posting a result is retried up to ``retries`` times, then reported as
    ``worker_crash``.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise CampaignError(f"LocalPoolExecutor needs workers >= 1: {workers}")
        self.workers = workers

    def describe(self) -> str:
        return f"LocalPoolExecutor(workers={self.workers})"

    def execute(
        self, spec, pending, *, timeout, retries, scenario_fn, finish
    ) -> None:
        ctx = _context()
        attempts: Dict[int, int] = {}
        running: Dict[int, _Job] = {}

        def give_up(job: _Job, verdict: str, detail: str) -> None:
            if job.attempt <= retries:
                pending.append(job.index)  # bounded retry
                return
            finish(
                ScenarioResult(
                    index=job.index,
                    seed=spec.scenario_seed(job.index),
                    verdict=verdict,
                    detail=detail,
                    attempts=job.attempt,
                )
            )

        def collect(job: _Job, raw: Dict[str, Any]) -> None:
            result = ScenarioResult.from_dict(raw)
            result.attempts = job.attempt
            finish(result)

        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    index = pending.popleft()
                    attempts[index] = attempts.get(index, 0) + 1
                    queue = ctx.SimpleQueue()
                    process = ctx.Process(
                        target=_child_main,
                        args=(spec, index, scenario_fn, queue),
                    )
                    process.start()
                    running[index] = _Job(
                        index=index,
                        process=process,
                        queue=queue,
                        started=time.monotonic(),
                        attempt=attempts[index],
                    )

                # Block until a worker exits (its sentinel fires) or the
                # poll interval elapses — workers post their result just
                # before exiting, so this reaps with near-zero latency
                # without a busy-wait.
                multiprocessing.connection.wait(
                    [job.process.sentinel for job in running.values()],
                    timeout=_POLL_S,
                )
                now = time.monotonic()
                for index, job in list(running.items()):
                    if not job.queue.empty():
                        raw = job.queue.get()
                        del running[index]
                        collect(job, raw)
                        # A well-behaved worker exits right after its
                        # put(); one kept alive by stray non-daemon
                        # threads must not stall the whole campaign.
                        job.process.join(1.0)
                        if job.process.is_alive():
                            job.process.terminate()
                            job.process.join()
                    elif job.process.exitcode is not None:
                        # The worker died without (apparently) posting a
                        # result; give the pipe a grace period before
                        # calling it a crash.
                        raw = _drain_queue(job.queue, _DRAIN_GRACE_S)
                        job.process.join()
                        del running[index]
                        if raw is not None:
                            collect(job, raw)
                        else:
                            give_up(
                                job,
                                VERDICT_WORKER_CRASH,
                                f"worker exited with code {job.process.exitcode} "
                                f"before reporting a result "
                                f"(attempt {job.attempt}/{retries + 1})",
                            )
                    elif now - job.started > timeout:
                        del running[index]
                        self._reap_timed_out(
                            job, timeout, retries, collect, give_up
                        )
        finally:
            for job in running.values():
                if job.process.is_alive():
                    job.process.terminate()
                    job.process.join(1.0)

    @staticmethod
    def _reap_timed_out(
        job: _Job,
        timeout: float,
        retries: int,
        collect: Callable[[_Job, Dict[str, Any]], None],
        give_up: Callable[[_Job, str, str], None],
    ) -> None:
        """Terminate a worker over budget — draining its queue first.

        A result posted just before the deadline (or between the deadline
        check and the SIGTERM) must be kept: the scenario *did* complete,
        so discarding it would waste a retry or misreport a finished run
        as ``timeout``. This mirrors the worker-crash branch, which has
        always drained before giving up.
        """
        raw = _drain_queue(job.queue, 0.0)
        job.process.terminate()
        job.process.join(1.0)
        if job.process.is_alive():  # pragma: no cover
            job.process.kill()
            job.process.join()
        if raw is None:
            # The put() may have landed between the empty() check and the
            # terminate(); look once more, with the usual pipe grace.
            raw = _drain_queue(job.queue, _DRAIN_GRACE_S)
        if raw is not None:
            collect(job, raw)
            return
        give_up(
            job,
            VERDICT_TIMEOUT,
            f"scenario exceeded the {timeout:.1f}s budget "
            f"(attempt {job.attempt}/{retries + 1})",
        )


def resolve_executor(executor: Optional[Executor], workers: int) -> Executor:
    """The executor ``run_campaign`` should drive: an explicit one wins,
    otherwise ``workers`` selects the classic local modes."""
    if executor is not None:
        return executor
    if workers == 0:
        return SerialExecutor()
    return LocalPoolExecutor(workers)
