"""One campaign scenario, end to end, inside one worker.

:func:`run_scenario` is the unit of work the engine fans out: derive the
scenario's private seed, build the randomized network, attach the online
invariant monitors, bootstrap, inject crashes under stochastic bus faults,
and fold everything into a :class:`~repro.campaign.spec.ScenarioResult`.
It never raises — every failure mode maps to a verdict — so the engine
only has to handle the process-level failures (hangs, killed workers).
"""

from __future__ import annotations

import time
import traceback
from typing import Dict

from repro.analysis.latency import latency_bounds
from repro.campaign.spec import (
    VERDICT_BOOTSTRAP_FAILED,
    VERDICT_ERROR,
    VERDICT_OK,
    VERDICT_VIOLATION,
    CampaignSpec,
    ScenarioResult,
)
from repro.can.errormodel import FaultInjector
from repro.core.stack import CanelyNetwork
from repro.errors import ScenarioError
from repro.obs.monitors import InvariantViolation, standard_monitors
from repro.sim.clock import ms
from repro.sim.rng import RngStreams
from repro.sim.trace import record_to_dict
from repro.workloads.scenarios import detection_latencies
from repro.workloads.traffic import PeriodicSource

#: Cap on how many trace records a violation slice carries back.
_SLICE_LIMIT = 120


def run_scenario(spec: CampaignSpec, index: int) -> ScenarioResult:
    """Run scenario ``index`` of ``spec`` and classify the outcome."""
    seed = spec.scenario_seed(index)
    started = time.perf_counter()
    result = ScenarioResult(index=index, seed=seed, verdict=VERDICT_ERROR)
    try:
        _simulate(spec, result)
    except ScenarioError as error:
        result.verdict = VERDICT_BOOTSTRAP_FAILED
        result.detail = str(error)
    except InvariantViolation as violation:
        result.verdict = VERDICT_VIOLATION
        result.detail = f"[{violation.monitor}] {violation}"
        result.violation_slice = [
            record_to_dict(record)
            for record in violation.records[:_SLICE_LIMIT]
        ]
    except Exception:
        result.verdict = VERDICT_ERROR
        result.detail = traceback.format_exc()
    result.elapsed_s = time.perf_counter() - started
    return result


def _simulate(spec: CampaignSpec, result: ScenarioResult) -> None:
    """Mutate ``result`` in place with the scenario's outcome."""
    streams = RngStreams(result.seed)
    topology = streams.stream("topology")
    node_count = topology.randint(spec.node_min, spec.node_max)
    crash_hi = max(spec.crash_min, min(spec.crash_max, node_count - 2))
    crash_count = topology.randint(spec.crash_min, crash_hi)
    result.nodes = node_count
    result.crashes = crash_count

    injector = FaultInjector(
        rng=streams.stream("faults"),
        consistent_probability=topology.uniform(
            0.0, spec.consistent_probability
        ),
        inconsistent_probability=topology.uniform(
            0.0, spec.inconsistent_probability
        ),
    )
    config = spec.config()
    net = CanelyNetwork(
        node_count=node_count,
        config=config,
        injector=injector,
        backend=spec.backend,
        segments=spec.segments,
    )
    if spec.monitors:
        standard_monitors(
            net.sim.trace,
            detection_bound=latency_bounds(config).notification,
            metrics=net.sim.metrics,
        )
    try:
        net.scenario().bootstrap()

        # Background traffic on a random half of the nodes.
        traffic = streams.stream("traffic")
        for node_id in traffic.sample(range(node_count), node_count // 2):
            PeriodicSource(
                net.sim, net.node(node_id), period=ms(traffic.randint(4, 9))
            )

        victims = topology.sample(range(node_count), crash_count)
        crash_times: Dict[int, int] = {}
        base = net.sim.now
        for victim in victims:
            at = base + ms(topology.randint(0, int(spec.crash_window_ms)))
            crash_times[victim] = at
            net.sim.schedule_at(at, net.node(victim).crash)
        net.run_for(ms(spec.run_ms))
    finally:
        result.injected_omissions = injector.omissions_injected
        result.injected_inconsistent = injector.inconsistent_injected
        result.metrics = net.sim.metrics.snapshot()

    latencies = detection_latencies(net, crash_times)
    result.latencies = sorted(v for v in latencies.values() if v is not None)
    result.missed = sum(1 for v in latencies.values() if v is None)

    from repro.obs.qos import network_qos

    result.qos = network_qos(
        net, start=base, crash_times=dict(crash_times)
    ).summary()

    survivors = set(range(node_count)) - set(victims)
    agree = net.views_agree() and set(net.agreed_view()) == survivors
    if agree and result.missed == 0:
        result.verdict = VERDICT_OK
    else:
        result.verdict = VERDICT_VIOLATION
        result.detail = (
            f"final views disagree or miss survivors: "
            f"views={ {n: sorted(v) for n, v in net.member_views().items()} } "
            f"survivors={sorted(survivors)} missed={result.missed}"
        )
