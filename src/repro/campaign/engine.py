"""The campaign driver: spec in, complete ordered results out.

:func:`run_campaign` fans a :class:`~repro.campaign.spec.CampaignSpec`
(or anything satisfying the spec protocol — ``scenarios`` plus
``scenario_seed(index)``) out over a pluggable
:class:`~repro.campaign.executors.Executor`:

* ``workers=0`` — :class:`~repro.campaign.executors.SerialExecutor`,
  in-process and sequential: the baseline for benchmarks and the mode
  coverage tools can see into;
* ``workers>=1`` — :class:`~repro.campaign.executors.LocalPoolExecutor`,
  one process per scenario with per-scenario timeouts, worker-crash
  detection and bounded retry;
* ``executor=RemoteQueueExecutor(...)`` — a TCP coordinator driving
  ``repro campaign-worker`` agents across hosts, with work stealing,
  heartbeat-based dead-worker requeue and sharded checkpoints.

Whatever the executor, the engine owns the invariants: completed results
are appended (and flushed) to the JSONL checkpoint as they arrive
(:class:`~repro.campaign.store.CheckpointStore` — sharded when a
distributed executor routes per-worker writes); ``resume=True`` merges
every checkpoint shard and skips finished seeds, ignoring truncated or
stale lines; ``resume=False`` truncates the checkpoint so reruns never
accumulate stale lines a later resume would trust; and the returned list
is asserted to cover exactly ``range(spec.scenarios)`` — a campaign can
fail loudly, but it cannot silently lose scenarios. Results depend only
on each scenario's derived seed — never on the executor, worker count or
completion order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.campaign.executors import (
    Executor,
    default_workers,
    resolve_executor,
)
from repro.campaign.spec import ScenarioResult
from repro.campaign.store import CheckpointStore, load_checkpoint
from repro.campaign.worker import run_scenario
from repro.errors import CampaignError

__all__ = [
    "default_workers",
    "load_checkpoint",
    "run_campaign",
]


def run_campaign(
    spec,
    workers: int = 1,
    timeout: float = 120.0,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    scenario_fn=run_scenario,
    progress=None,
    executor: Optional[Executor] = None,
    prior_results: Optional[Dict[int, ScenarioResult]] = None,
) -> List[ScenarioResult]:
    """Run every scenario of ``spec``; return results ordered by index.

    ``executor`` selects the execution fabric explicitly; otherwise
    ``workers`` picks the classic local modes (``0`` in-process,
    ``>= 1`` a process pool). ``resume=True`` (requires ``checkpoint``)
    first loads completed results from the checkpoint file and its
    shards and only runs what is missing; ``resume=False`` truncates any
    existing checkpoint instead of appending to it. ``prior_results``
    injects already-known results (e.g. fingerprint-store dedup hits)
    that are trusted like resumed checkpoint entries — checkpoint lines
    win on conflict. ``progress``, when given, is called with each
    :class:`ScenarioResult` as it completes; distributed executors may
    call it from service threads. Raises :class:`CampaignError` if any
    scenario index ends the run without a result.
    """
    if workers < 0:
        raise CampaignError(f"workers must be >= 0: {workers}")
    if timeout <= 0:
        raise CampaignError(f"timeout must be positive: {timeout}")
    if retries < 0:
        raise CampaignError(f"retries must be >= 0: {retries}")
    if resume and not checkpoint:
        raise CampaignError("resume requires a checkpoint path")

    completed: Dict[int, ScenarioResult] = {}
    if resume and checkpoint:
        completed = load_checkpoint(checkpoint, spec)
    checkpointed = frozenset(completed)
    if prior_results:
        for index, result in prior_results.items():
            completed.setdefault(index, result)
    pending = deque(
        index for index in range(spec.scenarios) if index not in completed
    )

    chosen = resolve_executor(executor, workers)
    sink = CheckpointStore(checkpoint, resume=resume)
    try:
        # Persist injected prior results the checkpoint does not already
        # hold, so the file stays a complete record of the campaign.
        for index in sorted(completed):
            if index not in checkpointed:
                sink.write(completed[index])

        def finish(result: ScenarioResult, shard: Optional[int] = None) -> None:
            completed[result.index] = result
            sink.write(result, shard)
            if progress is not None:
                progress(result)

        chosen.execute(
            spec,
            pending,
            timeout=timeout,
            retries=retries,
            scenario_fn=scenario_fn,
            finish=finish,
        )
    finally:
        sink.close()

    missing = [
        index for index in range(spec.scenarios) if index not in completed
    ]
    if missing:
        shown = ", ".join(str(index) for index in missing[:20])
        if len(missing) > 20:
            shown += f", ... ({len(missing)} total)"
        raise CampaignError(
            f"campaign incomplete: {chosen.describe()} returned no result "
            f"for scenario index(es) {shown}"
        )
    return [completed[index] for index in range(spec.scenarios)]
