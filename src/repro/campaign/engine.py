"""The parallel, crash-tolerant campaign driver.

:func:`run_campaign` fans a :class:`~repro.campaign.spec.CampaignSpec` out
over a pool of worker *processes* — one process per scenario, at most
``workers`` alive at once — and is robust by construction:

* **per-scenario timeouts** — a worker that exceeds its wall-clock budget
  is terminated and the scenario retried, then reported as ``timeout``;
* **worker-crash detection** — a process that dies without posting a
  result (segfault, ``os._exit``, OOM-kill) is retried up to ``retries``
  times, then reported as ``worker_crash`` instead of hanging the run;
* **partial-result aggregation** — every scenario yields a
  :class:`~repro.campaign.spec.ScenarioResult`, whatever happened to it;
* **JSONL checkpointing** — completed results are appended (and flushed)
  to the checkpoint file as they arrive, so an interrupted campaign
  resumed with ``resume=True`` skips every finished seed; truncated or
  stale lines (e.g. from a mid-write kill or a changed root seed) are
  ignored rather than trusted.

Each worker runs exactly one scenario and exits, so scenario state cannot
leak between runs and results depend only on the scenario's derived seed —
never on worker count or completion order. ``workers=0`` runs the campaign
in-process (no isolation, no timeouts): the sequential baseline for
benchmarks and the mode coverage tools can see into.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.spec import (
    VERDICT_ERROR,
    VERDICT_TIMEOUT,
    VERDICT_WORKER_CRASH,
    CampaignSpec,
    ScenarioResult,
)
from repro.campaign.worker import run_scenario
from repro.errors import CampaignError

ScenarioFn = Callable[[CampaignSpec, int], ScenarioResult]
ProgressFn = Callable[[ScenarioResult], None]

#: How long the reaper keeps polling a dead worker's queue before deciding
#: no result was posted (SimpleQueue writes straight to the pipe, so a
#: clean put() is visible by the time the child has exited).
_DRAIN_GRACE_S = 0.5
_POLL_S = 0.02


def default_workers() -> int:
    """A sensible worker-pool size for this machine."""
    return max(1, min(os.cpu_count() or 1, 8))


def _context():
    """Prefer fork (cheap, inherits closures); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _attempt(spec: CampaignSpec, index: int, scenario_fn: ScenarioFn) -> ScenarioResult:
    """Run one scenario, mapping stray exceptions to an ``error`` verdict."""
    try:
        result = scenario_fn(spec, index)
    except Exception as error:
        import traceback

        result = ScenarioResult(
            index=index,
            seed=spec.scenario_seed(index),
            verdict=VERDICT_ERROR,
            detail=f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
        )
    return result


def _child_main(spec, index, scenario_fn, queue) -> None:
    """Worker-process entry point: one scenario, one result, exit."""
    queue.put(_attempt(spec, index, scenario_fn).to_dict())


@dataclass
class _Job:
    """One live worker process and its bookkeeping."""

    index: int
    process: Any
    queue: Any
    started: float
    attempt: int


class _Checkpoint:
    """Append-only JSONL sink of completed scenario results."""

    def __init__(self, path: Optional[str]) -> None:
        self._handle = open(path, "a") if path else None

    def write(self, result: ScenarioResult) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(result.to_dict()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_checkpoint(path: str, spec: CampaignSpec) -> Dict[int, ScenarioResult]:
    """Completed results from a (possibly truncated) checkpoint file.

    Lines that do not parse, name an index outside the campaign, or carry
    a seed that no longer matches ``spec.scenario_seed(index)`` (the spec
    changed under the checkpoint) are skipped, not trusted.
    """
    completed: Dict[int, ScenarioResult] = {}
    if not os.path.exists(path):
        return completed
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                result = ScenarioResult.from_dict(raw)
            except (ValueError, TypeError):
                continue  # truncated or foreign line
            if not 0 <= result.index < spec.scenarios:
                continue
            if result.seed != spec.scenario_seed(result.index):
                continue
            completed[result.index] = result
    return completed


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    timeout: float = 120.0,
    retries: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    scenario_fn: ScenarioFn = run_scenario,
    progress: Optional[ProgressFn] = None,
) -> List[ScenarioResult]:
    """Run every scenario of ``spec``; return results ordered by index.

    ``workers >= 1`` fans out over that many worker processes with the
    crash/timeout handling described in the module docstring; ``workers=0``
    runs in-process and sequentially. ``resume=True`` (requires
    ``checkpoint``) first loads completed results from the checkpoint file
    and only runs what is missing. ``progress``, when given, is called with
    each :class:`ScenarioResult` as it completes.
    """
    if workers < 0:
        raise CampaignError(f"workers must be >= 0: {workers}")
    if timeout <= 0:
        raise CampaignError(f"timeout must be positive: {timeout}")
    if retries < 0:
        raise CampaignError(f"retries must be >= 0: {retries}")
    if resume and not checkpoint:
        raise CampaignError("resume requires a checkpoint path")

    completed: Dict[int, ScenarioResult] = {}
    if resume and checkpoint:
        completed = load_checkpoint(checkpoint, spec)
    pending = deque(
        index for index in range(spec.scenarios) if index not in completed
    )

    sink = _Checkpoint(checkpoint)
    try:
        if workers == 0:
            for index in pending:
                result = _attempt(spec, index, scenario_fn)
                completed[index] = result
                sink.write(result)
                if progress is not None:
                    progress(result)
        else:
            _run_pool(
                spec,
                pending,
                workers,
                timeout,
                retries,
                scenario_fn,
                completed,
                sink,
                progress,
            )
    finally:
        sink.close()
    return [completed[index] for index in sorted(completed)]


def _run_pool(
    spec: CampaignSpec,
    pending: "deque[int]",
    workers: int,
    timeout: float,
    retries: int,
    scenario_fn: ScenarioFn,
    completed: Dict[int, ScenarioResult],
    sink: _Checkpoint,
    progress: Optional[ProgressFn],
) -> None:
    """The parallel driver loop: launch, reap, retry, checkpoint."""
    ctx = _context()
    attempts: Dict[int, int] = {}
    running: Dict[int, _Job] = {}

    def finish(result: ScenarioResult) -> None:
        completed[result.index] = result
        sink.write(result)
        if progress is not None:
            progress(result)

    def give_up(job: _Job, verdict: str, detail: str) -> None:
        if job.attempt <= retries:
            pending.append(job.index)  # bounded retry
            return
        finish(
            ScenarioResult(
                index=job.index,
                seed=spec.scenario_seed(job.index),
                verdict=verdict,
                detail=detail,
                attempts=job.attempt,
            )
        )

    try:
        while pending or running:
            while pending and len(running) < workers:
                index = pending.popleft()
                attempts[index] = attempts.get(index, 0) + 1
                queue = ctx.SimpleQueue()
                process = ctx.Process(
                    target=_child_main,
                    args=(spec, index, scenario_fn, queue),
                )
                process.start()
                running[index] = _Job(
                    index=index,
                    process=process,
                    queue=queue,
                    started=time.monotonic(),
                    attempt=attempts[index],
                )

            # Block until a worker exits (its sentinel fires) or the poll
            # interval elapses — workers post their result just before
            # exiting, so this reaps with near-zero latency without a
            # busy-wait.
            multiprocessing.connection.wait(
                [job.process.sentinel for job in running.values()],
                timeout=_POLL_S,
            )
            now = time.monotonic()
            for index, job in list(running.items()):
                if not job.queue.empty():
                    raw = job.queue.get()
                    job.process.join()
                    del running[index]
                    result = ScenarioResult.from_dict(raw)
                    result.attempts = job.attempt
                    finish(result)
                elif job.process.exitcode is not None:
                    # The worker died without (apparently) posting a result;
                    # give the pipe a grace period before calling it a crash.
                    deadline = time.monotonic() + _DRAIN_GRACE_S
                    raw = None
                    while time.monotonic() < deadline:
                        if not job.queue.empty():
                            raw = job.queue.get()
                            break
                        time.sleep(_POLL_S)
                    job.process.join()
                    del running[index]
                    if raw is not None:
                        result = ScenarioResult.from_dict(raw)
                        result.attempts = job.attempt
                        finish(result)
                    else:
                        give_up(
                            job,
                            VERDICT_WORKER_CRASH,
                            f"worker exited with code {job.process.exitcode} "
                            f"before reporting a result "
                            f"(attempt {job.attempt}/{retries + 1})",
                        )
                elif now - job.started > timeout:
                    job.process.terminate()
                    job.process.join(1.0)
                    if job.process.is_alive():  # pragma: no cover
                        job.process.kill()
                        job.process.join()
                    del running[index]
                    give_up(
                        job,
                        VERDICT_TIMEOUT,
                        f"scenario exceeded the {timeout:.1f}s budget "
                        f"(attempt {job.attempt}/{retries + 1})",
                    )
    finally:
        for job in running.values():
            if job.process.is_alive():
                job.process.terminate()
                job.process.join(1.0)
