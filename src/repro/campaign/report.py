"""Aggregation and rendering of campaign results.

A :class:`CampaignReport` folds the per-scenario results into the
statistics a dependability argument needs — verdict counts, injected
omission totals (k and j), the detection-latency distribution against the
analytic bound — and renders them as the standard report table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.latency import latency_bounds
from repro.campaign.spec import (
    VERDICT_BOOTSTRAP_FAILED,
    VERDICT_ERROR,
    VERDICT_OK,
    VERDICT_TIMEOUT,
    VERDICT_VIOLATION,
    VERDICT_WORKER_CRASH,
    CampaignSpec,
    ScenarioResult,
)
from repro.sim.clock import ms
from repro.util.tables import render_table


def percentile(values: Sequence[float], fraction: float):
    """The ``fraction``-quantile by nearest-rank; ``None`` when empty."""
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


@dataclass
class CampaignReport:
    """Aggregated view over one campaign's results."""

    spec: CampaignSpec
    results: List[ScenarioResult]

    def by_verdict(self, verdict: str) -> List[ScenarioResult]:
        """The results carrying ``verdict``."""
        return [r for r in self.results if r.verdict == verdict]

    @property
    def latencies(self) -> List[int]:
        """Every measured detection latency, in ticks."""
        return [value for r in self.results for value in r.latencies]

    @property
    def missed(self) -> int:
        """Crashes that were never notified, over the whole campaign."""
        return sum(r.missed for r in self.results)

    @property
    def injected_omissions(self) -> int:
        """Total omissions injected (the model's k tally)."""
        return sum(r.injected_omissions for r in self.results)

    @property
    def injected_inconsistent(self) -> int:
        """Total inconsistent omissions injected (the j tally)."""
        return sum(r.injected_inconsistent for r in self.results)

    @property
    def notification_bound(self) -> int:
        """The analytic worst-case notification latency, in ticks.

        CANELy's bound comes from the paper's critical path
        (:func:`~repro.analysis.latency.latency_bounds`); rival backends
        supply their own via ``detection_latency_bound`` on their config.
        """
        config = self.spec.config()
        if self.spec.backend != "canely":
            from repro.core.backend import resolve_backend

            coerced = resolve_backend(self.spec.backend).coerce_config(config)
            bound = getattr(coerced, "detection_latency_bound", None)
            if bound is not None:
                return bound
        return latency_bounds(config).notification

    def _qos_values(self, key: str) -> List[float]:
        """Non-null per-scenario QoS summary values for ``key``."""
        return [
            r.qos[key]
            for r in self.results
            if r.qos and r.qos.get(key) is not None
        ]

    def qos_aggregate(self) -> Dict[str, Any]:
        """Campaign-level FD-QoS aggregate over the per-scenario
        summaries (scenarios that never got past bootstrap carry no QoS
        and are excluded)."""

        def mean(values):
            return round(sum(values) / len(values), 6) if values else None

        p50s = self._qos_values("detection_p50_ms")
        return {
            "scenarios_measured": sum(1 for r in self.results if r.qos),
            "detection_p50_ms_mean": mean(p50s),
            "detection_p50_ms_p95": percentile(p50s, 0.95),
            "mistakes_total": sum(self._qos_values("mistakes")),
            "mistake_rate_per_node_s_mean": mean(
                self._qos_values("mistake_rate_per_node_s")
            ),
            "flaps_total": sum(self._qos_values("flaps")),
            "query_accuracy_mean": mean(self._qos_values("query_accuracy")),
            "completeness_mean": mean(self._qos_values("completeness")),
        }

    @property
    def success(self) -> bool:
        """True when every scenario completed with verdict ``ok``."""
        return len(self.results) == self.spec.scenarios and all(
            r.ok for r in self.results
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data report (for ``--report`` files)."""
        return {
            "spec": self.spec.to_dict(),
            "success": self.success,
            "verdicts": {
                verdict: len(self.by_verdict(verdict))
                for verdict in (
                    VERDICT_OK,
                    VERDICT_BOOTSTRAP_FAILED,
                    VERDICT_VIOLATION,
                    VERDICT_ERROR,
                    VERDICT_TIMEOUT,
                    VERDICT_WORKER_CRASH,
                )
            },
            "missed": self.missed,
            "injected_omissions": self.injected_omissions,
            "injected_inconsistent": self.injected_inconsistent,
            "latency_ticks": {
                "count": len(self.latencies),
                "p50": percentile(self.latencies, 0.50),
                "p95": percentile(self.latencies, 0.95),
                "max": max(self.latencies) if self.latencies else None,
                "bound": self.notification_bound,
            },
            "qos": self.qos_aggregate(),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=2)

    def render(self, title: Optional[str] = None) -> str:
        """The standard human-readable summary table."""
        latencies = self.latencies

        def latency_ms(value) -> str:
            return "-" if value is None else f"{value / ms(1):.1f} ms"

        rows = [
            ["scenarios", str(self.spec.scenarios)],
            ["completed ok", str(len(self.by_verdict(VERDICT_OK)))],
            [
                "bootstrap failures",
                str(len(self.by_verdict(VERDICT_BOOTSTRAP_FAILED))),
            ],
            [
                "agreement violations",
                str(len(self.by_verdict(VERDICT_VIOLATION))),
            ],
            ["worker errors", str(len(self.by_verdict(VERDICT_ERROR)))],
            ["worker timeouts", str(len(self.by_verdict(VERDICT_TIMEOUT)))],
            [
                "worker crashes",
                str(len(self.by_verdict(VERDICT_WORKER_CRASH))),
            ],
            ["crashes never notified", str(self.missed)],
            ["faults injected (k)", str(self.injected_omissions)],
            ["inconsistent faults (j)", str(self.injected_inconsistent)],
            ["detections measured", str(len(latencies))],
            ["latency p50", latency_ms(percentile(latencies, 0.50))],
            ["latency p95", latency_ms(percentile(latencies, 0.95))],
            ["latency max", latency_ms(max(latencies) if latencies else None)],
            ["analytic bound", latency_ms(self.notification_bound)],
        ]
        qos = self.qos_aggregate()

        def ratio(value) -> str:
            return "-" if value is None else f"{value:.4f}"

        rows += [
            ["QoS detection p50 mean",
             "-" if qos["detection_p50_ms_mean"] is None
             else f"{qos['detection_p50_ms_mean']:.1f} ms"],
            ["QoS mistakes (total)", str(qos["mistakes_total"])],
            ["QoS mistake rate λ_M mean",
             ratio(qos["mistake_rate_per_node_s_mean"])],
            ["QoS query accuracy P_A mean", ratio(qos["query_accuracy_mean"])],
            ["QoS completeness mean", ratio(qos["completeness_mean"])],
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=title
            or (
                f"scenario campaign ({self.spec.scenarios} scenarios, "
                f"{self.spec.node_min}-{self.spec.node_max} nodes, "
                f"{self.spec.crash_min}-{self.spec.crash_max} crashes, "
                f"seed {self.spec.seed})"
            ),
        )
