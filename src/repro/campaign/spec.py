"""Campaign descriptions and per-scenario results.

A :class:`CampaignSpec` describes a *population* of randomized fault
scenarios: how many, the node/crash-count ranges, the stochastic bus-fault
probability ceilings and the measurement window. Every scenario owns a
private seed derived from the campaign root seed and the scenario index via
:func:`repro.sim.rng.derive_seed`, so a scenario is reproducible in
isolation — same seed, same verdict and latencies, regardless of execution
order or worker count.

A :class:`ScenarioResult` is the structured outcome one worker returns:
a verdict, the detection latencies, the injected omission counts (the
model's k and j), a metrics snapshot and — on an invariant violation —
the offending trace slice. Results round-trip through plain dicts so the
engine can checkpoint them as JSONL and resume an interrupted campaign.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import CanelyConfig
from repro.errors import ConfigurationError
from repro.sim.clock import ms
from repro.sim.rng import derive_seed

#: Scenario verdicts, from best to worst.
VERDICT_OK = "ok"
#: The network never converged to full membership before fault injection.
VERDICT_BOOTSTRAP_FAILED = "bootstrap_failed"
#: An invariant monitor fired, or the final views/survivors disagreed.
VERDICT_VIOLATION = "violation"
#: The scenario raised an unexpected exception inside the worker.
VERDICT_ERROR = "error"
#: The scenario exceeded the per-scenario wall-clock budget (after retries).
VERDICT_TIMEOUT = "timeout"
#: The worker process died without reporting a result (after retries).
VERDICT_WORKER_CRASH = "worker_crash"

VERDICTS = (
    VERDICT_OK,
    VERDICT_BOOTSTRAP_FAILED,
    VERDICT_VIOLATION,
    VERDICT_ERROR,
    VERDICT_TIMEOUT,
    VERDICT_WORKER_CRASH,
)


@dataclass(frozen=True)
class CampaignSpec:
    """A population of randomized crash-and-omission scenarios.

    Attributes:
        scenarios: how many scenarios the campaign runs.
        seed: root seed; scenario ``i`` uses ``scenario_seed(i)``.
        node_min / node_max: population range, drawn per scenario.
        crash_min / crash_max: crash-count range, drawn per scenario
            (clamped so at least two nodes survive).
        consistent_probability / inconsistent_probability: *ceilings* for
            the per-scenario stochastic fault probabilities; each scenario
            draws its own rates uniformly from ``[0, ceiling]``.
        tm_ms / thb_ms / tjoin_wait_ms / capacity: protocol configuration.
        crash_window_ms: crashes are scheduled uniformly inside this window
            after bootstrap.
        run_ms: how long the scenario runs after the crashes are scheduled.
        monitors: attach the online invariant monitors (PR-1) to every run.
        backend: membership backend every scenario runs
            (:func:`repro.core.backend.backend_names`).
        segments: bus segments per scenario, bridged by a store-and-forward
            gateway when greater than one.
    """

    scenarios: int
    seed: int = 0
    node_min: int = 6
    node_max: int = 12
    crash_min: int = 1
    crash_max: int = 3
    consistent_probability: float = 0.02
    inconsistent_probability: float = 0.005
    tm_ms: float = 50.0
    thb_ms: float = 10.0
    tjoin_wait_ms: float = 150.0
    capacity: int = 16
    crash_window_ms: float = 100.0
    run_ms: float = 400.0
    monitors: bool = True
    backend: str = "canely"
    segments: int = 1

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise ConfigurationError(
                f"a campaign needs at least one scenario: {self.scenarios}"
            )
        if not 2 <= self.node_min <= self.node_max <= self.capacity:
            raise ConfigurationError(
                f"bad node range {self.node_min}..{self.node_max} "
                f"(capacity {self.capacity})"
            )
        if not 0 <= self.crash_min <= self.crash_max:
            raise ConfigurationError(
                f"bad crash range {self.crash_min}..{self.crash_max}"
            )
        if (
            self.consistent_probability < 0
            or self.inconsistent_probability < 0
            or self.consistent_probability + self.inconsistent_probability > 1
        ):
            raise ConfigurationError("bad fault probability ceilings")
        if self.run_ms <= 0 or self.crash_window_ms < 0:
            raise ConfigurationError("bad scenario durations")
        from repro.core.backend import resolve_backend

        resolve_backend(self.backend)
        if not isinstance(self.segments, int) or not (
            1 <= self.segments <= self.node_min
        ):
            raise ConfigurationError(
                f"segments must be in 1..node_min: {self.segments!r}"
            )
        if self.monitors and self.backend != "canely":
            raise ConfigurationError(
                "the online invariant monitors encode CANELy's guarantees; "
                f"disable monitors to campaign the {self.backend!r} backend"
            )

    def scenario_seed(self, index: int) -> int:
        """The private seed of scenario ``index``."""
        return derive_seed(self.seed, f"scenario/{index}")

    def config(self) -> CanelyConfig:
        """The protocol configuration every scenario runs under."""
        return CanelyConfig(
            capacity=self.capacity,
            tm=ms(self.tm_ms),
            thb=ms(self.thb_ms),
            tjoin_wait=ms(self.tjoin_wait_ms),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (for reports and checkpoint headers)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**raw)


@dataclass
class ScenarioResult:
    """What one scenario produced (or how it failed to produce anything).

    ``latencies`` are crash-to-notification times in kernel ticks for the
    crashed nodes that were notified; ``missed`` counts those that never
    were. ``injected_omissions`` / ``injected_inconsistent`` are the
    injector's k and j tallies. ``detail`` carries the violation message or
    traceback; ``violation_slice`` the offending trace records (as dicts).
    """

    index: int
    seed: int
    verdict: str
    nodes: int = 0
    crashes: int = 0
    latencies: List[int] = field(default_factory=list)
    missed: int = 0
    injected_omissions: int = 0
    injected_inconsistent: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Flat FD-QoS summary (:meth:`repro.obs.qos.QoSMetrics.summary`) of
    #: the scenario's observation window; empty when the run never got
    #: past bootstrap. Unknown to older checkpoints, which load fine —
    #: :meth:`from_dict` filters by field name in both directions.
    qos: Dict[str, Any] = field(default_factory=dict)
    detail: str = ""
    violation_slice: List[Dict[str, Any]] = field(default_factory=list)
    attempts: int = 1
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the scenario completed with every invariant intact."""
        return self.verdict == VERDICT_OK

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-checkpoint form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ScenarioResult":
        """Rebuild a result from a checkpoint line."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in raw.items() if k in known})
