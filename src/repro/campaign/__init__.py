"""Parallel, crash-tolerant scenario campaigns.

The paper's claims are statistical: the membership protocol is only
trusted after *populations* of fault scenarios behave (Rapid's argument,
and Duarte et al.'s system-level diagnosis campaigns). This package is the
scaffold those campaigns run on:

* :class:`CampaignSpec` — a seeded population of randomized scenarios;
* :func:`run_scenario` — one scenario, one worker, one structured
  :class:`ScenarioResult`;
* :func:`run_campaign` — the multiprocessing driver: per-scenario
  timeouts, worker-crash retry, JSONL checkpointing and resume;
* :class:`CampaignReport` — verdict counts and the latency distribution
  against the analytic bound.

CLI: ``python -m repro campaign --scenarios 30 --workers 4``.
"""

from repro.campaign.engine import (
    default_workers,
    load_checkpoint,
    run_campaign,
)
from repro.campaign.report import CampaignReport, percentile
from repro.campaign.spec import (
    VERDICT_BOOTSTRAP_FAILED,
    VERDICT_ERROR,
    VERDICT_OK,
    VERDICT_TIMEOUT,
    VERDICT_VIOLATION,
    VERDICT_WORKER_CRASH,
    VERDICTS,
    CampaignSpec,
    ScenarioResult,
)
from repro.campaign.worker import run_scenario

__all__ = [
    "CampaignSpec",
    "ScenarioResult",
    "CampaignReport",
    "run_campaign",
    "run_scenario",
    "load_checkpoint",
    "default_workers",
    "percentile",
    "VERDICTS",
    "VERDICT_OK",
    "VERDICT_BOOTSTRAP_FAILED",
    "VERDICT_VIOLATION",
    "VERDICT_ERROR",
    "VERDICT_TIMEOUT",
    "VERDICT_WORKER_CRASH",
]
