"""Parallel, crash-tolerant scenario campaigns on a pluggable fabric.

The paper's claims are statistical: the membership protocol is only
trusted after *populations* of fault scenarios behave (Rapid's argument,
and Duarte et al.'s system-level diagnosis campaigns). This package is the
scaffold those campaigns run on:

* :class:`CampaignSpec` — a seeded population of randomized scenarios;
* :func:`run_scenario` — one scenario, one worker, one structured
  :class:`ScenarioResult`;
* :func:`run_campaign` — the driver: JSONL checkpointing/resume, retry
  bookkeeping and a completeness guarantee, over a pluggable
  :class:`Executor`;
* :class:`SerialExecutor` / :class:`LocalPoolExecutor` /
  :class:`RemoteQueueExecutor` — in-process, single-host process pool,
  or a TCP work queue feeding ``repro campaign-worker`` agents (work
  stealing, heartbeat dead-worker requeue, sharded checkpoints);
* :class:`CheckpointStore` / :class:`FingerprintStore` — sharded JSONL
  result persistence and the model checker's explored-schedule memory;
* :class:`CampaignReport` — verdict counts and the latency distribution
  against the analytic bound.

CLI: ``python -m repro campaign --scenarios 30 --workers 4``; distributed:
``python -m repro campaign --executor remote --listen 0.0.0.0:7761`` plus
``python -m repro campaign-worker --connect HOST:7761`` on each host.
"""

from repro.campaign.engine import (
    default_workers,
    load_checkpoint,
    run_campaign,
)
from repro.campaign.executors import (
    Executor,
    LocalPoolExecutor,
    SerialExecutor,
)
from repro.campaign.remote import (
    DEFAULT_AUTHKEY,
    RemoteQueueExecutor,
    run_worker_agent,
)
from repro.campaign.report import CampaignReport, percentile
from repro.campaign.spec import (
    VERDICT_BOOTSTRAP_FAILED,
    VERDICT_ERROR,
    VERDICT_OK,
    VERDICT_TIMEOUT,
    VERDICT_VIOLATION,
    VERDICT_WORKER_CRASH,
    VERDICTS,
    CampaignSpec,
    ScenarioResult,
)
from repro.campaign.store import (
    CheckpointStore,
    FingerprintStore,
    checkpoint_shard_paths,
    schedule_key,
)
from repro.campaign.worker import run_scenario

__all__ = [
    "CampaignSpec",
    "ScenarioResult",
    "CampaignReport",
    "CheckpointStore",
    "DEFAULT_AUTHKEY",
    "Executor",
    "FingerprintStore",
    "LocalPoolExecutor",
    "RemoteQueueExecutor",
    "SerialExecutor",
    "checkpoint_shard_paths",
    "run_campaign",
    "run_scenario",
    "run_worker_agent",
    "load_checkpoint",
    "default_workers",
    "percentile",
    "schedule_key",
    "VERDICTS",
    "VERDICT_OK",
    "VERDICT_BOOTSTRAP_FAILED",
    "VERDICT_VIOLATION",
    "VERDICT_ERROR",
    "VERDICT_TIMEOUT",
    "VERDICT_WORKER_CRASH",
]
