# Convenience targets for the CANELy reproduction.

PYTHON ?= python

.PHONY: install test bench bench-json examples demo clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Refresh the committed hot-path report and gate against the previous one.
# Speedup ratios are machine-portable; absolute rates are informational.
bench-json:
	PYTHONPATH=src $(PYTHON) -m repro bench \
		--baseline BENCH_core.json --portable-only --json BENCH_core.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

demo:
	$(PYTHON) -m repro demo --timeline

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
