# Convenience targets for the CANELy reproduction.

PYTHON ?= python

.PHONY: install test bench examples demo clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

demo:
	$(PYTHON) -m repro demo --timeline

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
