#!/usr/bin/env python
"""CI smoke: the remote campaign fabric survives losing a worker.

Runs a small campaign twice — once in-process (the sequential baseline),
once through a ``RemoteQueueExecutor`` on localhost fed by two
``repro campaign-worker`` CLI agents, one of which is SIGKILLed after the
first result lands — and asserts the deterministic projections of both
result sets are identical. Exercises, end to end: the TCP coordinator,
CLI worker agents, heartbeat-based dead-worker requeue, sharded
checkpoints, and the engine's completeness guarantee.

Usage: python tools/remote_campaign_smoke.py [--scenarios N]
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading

from repro.campaign import (
    CampaignSpec,
    RemoteQueueExecutor,
    load_checkpoint,
    run_campaign,
)


def projection(results):
    """The deterministic fields of each result (attempts/elapsed vary)."""
    return [
        (r.index, r.seed, r.verdict, r.nodes, r.crashes, r.latencies, r.missed)
        for r in results
    ]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scenarios", type=int, default=6)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    spec = CampaignSpec(
        scenarios=args.scenarios,
        seed=args.seed,
        node_min=4,
        node_max=6,
        crash_min=1,
        crash_max=1,
    )

    print(f"[smoke] sequential baseline: {args.scenarios} scenarios")
    baseline = run_campaign(spec, workers=0)

    executor = RemoteQueueExecutor(
        host="127.0.0.1",
        port=0,
        startup_timeout=60.0,
        heartbeat_s=0.2,
        heartbeat_timeout=2.0,
    )
    host, port = executor.listen()
    print(f"[smoke] coordinator on {host}:{port}")

    env = dict(os.environ)
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign-worker",
                "--connect",
                f"{host}:{port}",
            ],
            env=env,
        )
        for _ in range(2)
    ]

    victim = workers[0]
    killed = threading.Event()

    def kill_victim(result):
        """SIGKILL worker 0 as soon as the first result lands — with work
        still outstanding, so the coordinator must requeue its flight."""
        if not killed.is_set():
            killed.set()
            print(
                f"[smoke] first result (scenario {result.index}) — "
                f"SIGKILLing worker pid {victim.pid}"
            )
            os.kill(victim.pid, signal.SIGKILL)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "remote-smoke.jsonl")
        results = run_campaign(
            spec,
            executor=executor,
            retries=2,
            checkpoint=checkpoint,
            progress=kill_victim,
        )
        merged = load_checkpoint(checkpoint, spec)
        shards = [
            name
            for name in sorted(os.listdir(tmp))
            if name != "remote-smoke.jsonl"
        ]
        print(f"[smoke] checkpoint shards: {shards or 'none'}")
        assert len(merged) == spec.scenarios, (
            f"checkpoint merge holds {len(merged)} of {spec.scenarios}"
        )

    for worker in workers:
        worker.wait(timeout=30)
    assert killed.is_set(), "victim worker was never killed"

    got, want = projection(results), projection(baseline)
    if got != want:
        print("[smoke] MISMATCH vs sequential baseline:")
        for g, w in zip(got, want):
            marker = "  " if g == w else "->"
            print(f"{marker} remote {g}")
            print(f"{marker} serial {w}")
        return 1
    print(
        f"[smoke] OK: {len(results)} results identical to the sequential "
        f"baseline despite losing a worker mid-run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
