#!/usr/bin/env python
"""Snapshot the package's public API surface and detect drift.

The public surface is everything ``repro.__all__`` exports — classes with
their public methods/properties and signatures, functions with their
signatures. ``--update`` writes the snapshot to ``tools/public_api.json``
(committed alongside the code); the default mode re-derives the surface
and diffs it against the committed snapshot, exiting 1 on any drift, so
CI catches accidental API breaks and forces deliberate ones through a
reviewed snapshot update::

    PYTHONPATH=src python tools/check_public_api.py            # verify
    PYTHONPATH=src python tools/check_public_api.py --update   # re-snapshot
"""

from __future__ import annotations

import argparse
import inspect
import json
import re
import sys
from pathlib import Path

SNAPSHOT_PATH = Path(__file__).resolve().parent / "public_api.json"


def _signature(obj) -> str:
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    # Callable defaults repr with their memory address; strip it so the
    # snapshot is stable across processes.
    return re.sub(r" at 0x[0-9a-fA-F]+", "", text)


def _describe(obj) -> dict:
    """A JSON-stable description of one exported object."""
    if inspect.isclass(obj):
        members = {}
        for name, member in vars(obj).items():
            if name.startswith("_") and name != "__init__":
                continue
            if isinstance(member, property):
                members[name] = "property"
            elif isinstance(member, (classmethod, staticmethod)):
                members[name] = (
                    f"{type(member).__name__}{_signature(member.__func__)}"
                )
            elif inspect.isfunction(member):
                members[name] = _signature(member)
        return {"kind": "class", "members": members}
    if callable(obj):
        return {"kind": "function", "signature": _signature(obj)}
    return {"kind": type(obj).__name__}


def snapshot() -> dict:
    """Derive the current public surface from the live package."""
    import repro

    surface = {
        name: _describe(getattr(repro, name))
        for name in sorted(set(repro.__all__) - {"__version__"})
    }
    return {"package": "repro", "version": repro.__version__, "surface": surface}


def _diff(committed: dict, current: dict) -> list:
    """Human-readable drift lines between two snapshots."""
    lines = []
    if committed.get("version") != current.get("version"):
        lines.append(
            f"version: {committed.get('version')} -> {current.get('version')}"
        )
    old = committed.get("surface", {})
    new = current.get("surface", {})
    for name in sorted(set(old) - set(new)):
        lines.append(f"removed: {name}")
    for name in sorted(set(new) - set(old)):
        lines.append(f"added: {name}")
    for name in sorted(set(old) & set(new)):
        if old[name] == new[name]:
            continue
        if old[name].get("kind") != new[name].get("kind"):
            lines.append(
                f"changed kind: {name} "
                f"({old[name].get('kind')} -> {new[name].get('kind')})"
            )
            continue
        if old[name].get("kind") == "function":
            lines.append(
                f"changed signature: {name}{old[name].get('signature')} "
                f"-> {name}{new[name].get('signature')}"
            )
            continue
        old_members = old[name].get("members", {})
        new_members = new[name].get("members", {})
        for member in sorted(set(old_members) - set(new_members)):
            lines.append(f"removed member: {name}.{member}")
        for member in sorted(set(new_members) - set(old_members)):
            lines.append(f"added member: {name}.{member}")
        for member in sorted(set(old_members) & set(new_members)):
            if old_members[member] != new_members[member]:
                lines.append(
                    f"changed member: {name}.{member} "
                    f"{old_members[member]} -> {new_members[member]}"
                )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed snapshot from the live package",
    )
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=SNAPSHOT_PATH,
        help=f"snapshot file (default: {SNAPSHOT_PATH})",
    )
    args = parser.parse_args(argv)

    current = snapshot()
    if args.update:
        args.snapshot.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(
            f"snapshot updated: {len(current['surface'])} exported names "
            f"-> {args.snapshot}"
        )
        return 0

    if not args.snapshot.exists():
        print(f"no snapshot at {args.snapshot}; run with --update first")
        return 1
    committed = json.loads(args.snapshot.read_text())
    drift = _diff(committed, current)
    if drift:
        print(f"public API drift vs {args.snapshot}:")
        for line in drift:
            print(f"  {line}")
        print(
            "intentional? re-run with --update and commit the new snapshot"
        )
        return 1
    print(
        f"public API matches the snapshot "
        f"({len(current['surface'])} exported names)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
