#!/usr/bin/env python
"""Build the optional compiled simulation core in place.

Thin driver around ``REPRO_COMPILED=1 setup.py build_ext --inplace`` that
degrades gracefully: when no compiler backend (Cython, or mypyc via
``REPRO_COMPILED_BACKEND=mypyc``) is importable it reports *skipped* and
exits 0, so CI smoke jobs and developer machines without a toolchain pass
cleanly. On success it prints the per-module compiled status from
:mod:`repro.perf.compiled`.

Usage::

    python tools/build_compiled.py [--check]

``--check`` only reports the current status (no build).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _status() -> dict:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.perf import compiled

    return compiled.status()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="report compiled-core status without building",
    )
    args = parser.parse_args(argv)

    if args.check:
        print(json.dumps(_status(), indent=2, sort_keys=True))
        return 0

    status = _status()
    if status["toolchain"] is None:
        print(
            "compiled core: skipped (no Cython or mypyc toolchain; "
            "pure-Python modules remain in use)"
        )
        return 0

    env = dict(os.environ, REPRO_COMPILED="1")
    result = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=REPO_ROOT,
        env=env,
    )
    if result.returncode != 0:
        print("compiled core: build FAILED", file=sys.stderr)
        return result.returncode

    # Re-import in a fresh interpreter so the freshly built extensions (not
    # the already-imported pure modules) are what gets reported.
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json; from repro.perf import compiled; "
            "print(json.dumps(compiled.status(), indent=2, sort_keys=True))",
        ],
        cwd=REPO_ROOT,
        env=dict(env, PYTHONPATH=os.path.join(REPO_ROOT, "src")),
    )
    return probe.returncode


if __name__ == "__main__":
    raise SystemExit(main())
