"""ABL-5 — surveillance timers vs network inaccessibility.

MCAN4's transmission-delay bound is ``Ttd = Ttx + Tina``: the worst-case
queueing delay *plus* the worst-case inaccessibility — periods where the
network refrains from providing service while remaining operational ([22]).
Fig. 8 sizes the remote surveillance timers with that ``Ttd``. This
ablation injects inaccessibility windows of increasing length (up to the
standard-CAN worst case of 2880 bit-times) into a live CANELy network and
shows that:

* with ``Ttd`` covering ``Tina``, no live node is ever falsely suspected;
* with a naive ``Ttd`` that ignores inaccessibility, long windows produce
  false suspicions — the design error the analysis exists to prevent.
"""

from conftest import emit

from repro.analysis.inaccessibility import can_inaccessibility_range
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms, us
from repro.util.tables import render_table

NODES = 6


def run(window_bits: int, ttd_covers_inaccessibility: bool):
    """Returns the set of falsely suspected nodes (should be empty)."""
    tina_ticks = us(window_bits)  # 1 bit-time = 1 µs at 1 Mbps
    ttd = ms(6) + (tina_ticks if ttd_covers_inaccessibility else 0)
    config = CanelyConfig(
        capacity=16, tm=ms(50), thb=ms(10), ttd=ttd, tjoin_wait=ms(150)
    )
    net = CanelyNetwork(node_count=NODES, config=config)
    net.scenario().bootstrap()
    members_before = set(net.agreed_view())
    # Inject the window right before the heartbeats are due, repeatedly.
    for cycle in range(4):
        net.run_for(config.thb - us(window_bits) // 2)
        net.bus.inject_inaccessibility(window_bits)
        net.run_for(us(window_bits))
    net.run_for(ms(100))
    assert net.views_agree()
    return members_before - set(net.agreed_view())


def bench_abl_inaccessibility(benchmark):
    _, worst_can = can_inaccessibility_range()
    windows = [0, 500, 1500, worst_can, 6000]

    def sweep():
        results = {}
        for window in windows:
            for covered in (True, False):
                results[(window, covered)] = run(window, covered)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (window, covered), falsely_suspected in sorted(results.items()):
        rows.append(
            [
                window,
                "Ttx + Tina (correct)" if covered else "Ttx only (naive)",
                "none" if not falsely_suspected else sorted(falsely_suspected),
            ]
        )
    table = render_table(
        ["inaccessibility window (bit-times)", "Ttd sizing", "false suspicions"],
        rows,
        title=(
            "ABL-5 — surveillance timers vs injected inaccessibility "
            "(6 nodes, Thb=10ms)"
        ),
    )
    emit("abl_inaccessibility", table)

    # With Tina covered: never a false suspicion, up to the worst case.
    for window in windows:
        assert results[(window, True)] == set(), window
    # The naive sizing survives small windows (headroom) but not the
    # worst-case burst.
    assert results[(0, False)] == set()
    assert results[(6000, False)] != set()
