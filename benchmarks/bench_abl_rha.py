"""ABL-2 — RHA traffic versus the divergence of initial proposals.

DESIGN.md calls out the RHA design choices: intersection-convergence plus
the j-bounded copy rule (Fig. 7 line r08). This ablation seeds nodes with
increasingly divergent joining-set perceptions (as inconsistent omissions
on JOIN frames would) and measures the RHV frames needed to converge and
the final agreement.
"""

from conftest import emit

from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.driver import CanStandardLayer
from repro.core.config import CanelyConfig
from repro.core.rha import RhaProtocol
from repro.core.state import MembershipState
from repro.sim.clock import ms
from repro.sim.kernel import Simulator
from repro.sim.timers import TimerService
from repro.util.sets import NodeSet
from repro.util.tables import render_table

NODES = 8
CONFIG = CanelyConfig(capacity=32, tm=ms(50), trha=ms(10), tjoin_wait=ms(150))


def run_rha(divergent_nodes: int):
    """Node i < divergent_nodes alone perceives the join of node 20+i."""
    sim = Simulator()
    bus = CanBus(sim)
    protocols, ends = {}, {}
    members = NodeSet(range(NODES), CONFIG.capacity)
    for node_id in range(NODES):
        controller = CanController(node_id)
        bus.attach(controller)
        state = MembershipState(capacity=CONFIG.capacity)
        state.view = members
        if node_id < divergent_nodes:
            state.joining = NodeSet([20 + node_id], CONFIG.capacity)
        protocol = RhaProtocol(
            CanStandardLayer(controller), TimerService(sim), CONFIG, state
        )
        log = []
        protocol.on_end(log.append)
        protocols[node_id] = protocol
        ends[node_id] = log
    protocols[0].request()
    sim.run_until(ms(20))
    rha_frames = sum(
        1
        for r in sim.trace.select(category="bus.tx")
        if r.data["mid"].mtype.name == "RHA"
    )
    vectors = [ends[n][0] for n in range(NODES) if ends[n]]
    agreed = all(v == vectors[0] for v in vectors) and len(vectors) == NODES
    return rha_frames, agreed, sorted(vectors[0]) if vectors else None


def bench_abl_rha_divergence(benchmark):
    def sweep():
        return {d: run_rha(d) for d in range(0, 6)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [d, frames, "yes" if agreed else "NO", vector]
        for d, (frames, agreed, vector) in sorted(results.items())
    ]
    table = render_table(
        ["divergent perceptions", "RHV frames", "agreement", "final vector"],
        rows,
        title="ABL-2 — RHA convergence vs divergent initial proposals (8 members)",
    )
    emit("abl_rha", table)

    for frames, agreed, vector in results.values():
        assert agreed
        # Inconsistently-perceived joins are excluded: intersection wins.
        assert vector == list(range(NODES))
    # Traffic grows with divergence but stays far below one frame per
    # member per value (the j-abort rule at work).
    assert results[0][0] <= CONFIG.inconsistent_degree + 1
    assert results[5][0] <= 3 * (CONFIG.inconsistent_degree + 2)
