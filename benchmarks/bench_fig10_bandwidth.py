"""FIG-10 — CAN bandwidth utilization of the membership suite vs ``Tm``.

The paper's Fig. 10 plots, for n=32, b=8, f=4, the fraction of CAN
bandwidth the site membership protocol suite consumes per membership cycle
period, under four cumulative scenarios: no membership changes, f crash
failures, a join/leave event, and multiple (c=20) join/leave requests.

This benchmark regenerates the figure twice:

* **analytically**, from :class:`repro.analysis.bandwidth.BandwidthModel`
  (the paper's own evaluation is analytical, from [16]);
* **by simulation**, running the full protocol stack on the simulated bus
  and reading the per-message-type bit accounting out of the bus stats.

Shape checks assert the paper's qualitative claims: hyperbolic decline in
``Tm``, the curve ordering, and the ~0.4% marginal cost per join/leave
request (Section 6.5 footnote).
"""

from conftest import emit

from repro.analysis.bandwidth import BandwidthModel
from repro.core.config import CanelyConfig
from repro.core.stack import CanelyNetwork
from repro.sim.clock import ms
from repro.util.tables import render_table
from repro.workloads.traffic import PeriodicSource

TM_VALUES_MS = [30, 40, 50, 60, 70, 80, 90]

#: Approximate values read off the published Fig. 10 plot (1 Mbps,
#: standard-format frames), for the paper-vs-measured table.
PAPER_FIG10 = {
    "no msh. changes": {30: 0.017, 50: 0.010, 70: 0.007, 90: 0.006},
    "f crash failures": {30: 0.046, 50: 0.028, 70: 0.020, 90: 0.015},
    "join/leave event": {30: 0.060, 50: 0.036, 70: 0.026, 90: 0.020},
    "multiple join/leave": {30: 0.135, 50: 0.081, 70: 0.058, 90: 0.045},
}

#: The membership suite's message types (what Fig. 10 accounts).
SUITE_TYPES = ("ELS", "FDA", "RHA", "JOIN", "LEAVE")


def _analytic_model() -> BandwidthModel:
    # The paper's operating point: n=32, b=8, f=4, standard-format frames.
    return BandwidthModel(
        population=32,
        lifesign_nodes=8,
        crash_failures=4,
        inconsistent_degree=2,
        extended=False,
    )


def _simulate_suite_bits(tm_ms: int, crashes: int, join_leaves: int) -> float:
    """Run the full stack for one loaded cycle; return the suite's
    utilization fraction averaged over the measurement window."""
    # The paper's Fig. 10 charges at most b life-signs per membership
    # cycle, i.e. its operating point ties the heartbeat period to Tm.
    config = CanelyConfig.for_population(
        32,
        capacity=64,
        tm=ms(tm_ms),
        thb=ms(tm_ms),
        trha=ms(min(5, tm_ms // 2)),
        tjoin_wait=ms(3 * tm_ms),
    )
    population = 32
    net = CanelyNetwork(node_count=population, config=config)
    net.join_all()
    net.run_for(config.tjoin_wait + 6 * config.tm)
    assert net.views_agree()

    # b=8: give 24 nodes periodic traffic faster than Thb so only 8 rely
    # on explicit life-signs.
    for node_id in range(8, population):
        PeriodicSource(net.sim, net.node(node_id), period=ms(8))
    net.run_for(2 * config.tm)  # let traffic settle

    start_bits = {
        key: net.bus.stats.bits_by_type.get(key, 0) for key in SUITE_TYPES
    }
    start_time = net.sim.now

    for node_id in range(crashes):
        # Crash periodic-traffic nodes so the b=8 explicit-life-sign
        # population is the same in every scenario.
        net.node(12 + node_id).crash()
    leaves = min(join_leaves, 8)
    for node_id in range(leaves):
        net.node(population - 1 - node_id).leave()

    net.run_for(4 * config.tm)
    window = net.sim.now - start_time
    suite_bits = sum(
        net.bus.stats.bits_by_type.get(key, 0) - start_bits[key]
        for key in SUITE_TYPES
    )
    # Utilization normalized per membership cycle, as in the figure.
    cycles = window / config.tm
    per_cycle_bits = suite_bits / cycles
    return per_cycle_bits / (tm_ms * 1000)


def bench_fig10_analytic_curves(benchmark):
    model = _analytic_model()
    curves = benchmark(model.figure10, TM_VALUES_MS)

    rows = []
    for label, curve in curves.items():
        for tm, value in zip(TM_VALUES_MS, curve):
            paper = PAPER_FIG10[label].get(tm)
            rows.append(
                [
                    label,
                    tm,
                    f"{value * 100:.2f}%",
                    f"{paper * 100:.1f}%" if paper is not None else "-",
                ]
            )
    table = render_table(
        ["scenario", "Tm (ms)", "model", "paper (read off plot)"],
        rows,
        title="Figure 10 — CAN bandwidth utilization by the membership suite",
    )
    marginal = model.marginal_join_leave_utilization(25)
    table += (
        f"\nmarginal cost per join/leave request at Tm=25ms: "
        f"{marginal * 100:.2f}% (paper: ~0.4%)"
    )
    emit("fig10_bandwidth_analytic", table)

    # Shape assertions: hyperbolic decline and curve ordering.
    for label, curve in curves.items():
        assert curve == sorted(curve, reverse=True), label
    for index in range(len(TM_VALUES_MS)):
        column = [curves[label][index] for label in PAPER_FIG10]
        assert column == sorted(column)
    # Magnitude: within the paper's band (same order, factor < 2 off).
    for label, paper_points in PAPER_FIG10.items():
        for tm, paper_value in paper_points.items():
            model_value = curves[label][TM_VALUES_MS.index(tm)]
            assert 0.4 < model_value / paper_value < 2.2, (
                label,
                tm,
                model_value,
                paper_value,
            )


def bench_fig10_simulation_crosscheck(benchmark):
    scenarios = {
        "no msh. changes": (0, 0),
        "f crash failures": (4, 0),
        "join/leave event": (0, 1),
        "multiple join/leave": (0, 8),
    }

    def run_all():
        return {
            label: {tm: _simulate_suite_bits(tm, *params) for tm in (30, 60, 90)}
            for label, params in scenarios.items()
        }

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    model = _analytic_model()
    rows = []
    for label, by_tm in measured.items():
        crashes, join_leaves = scenarios[label]
        for tm, value in by_tm.items():
            analytic = model.utilization(tm, crashes, join_leaves)
            rows.append(
                [label, tm, f"{value * 100:.2f}%", f"{analytic * 100:.2f}%"]
            )
    table = render_table(
        ["scenario", "Tm (ms)", "simulated", "worst-case model"],
        rows,
        title=(
            "Figure 10 cross-check — simulated suite bandwidth vs the "
            "conservative analytical model"
        ),
    )
    emit("fig10_bandwidth_simulated", table)

    # The simulation must decline with Tm and stay below the conservative
    # worst-case model's prediction for the loaded scenarios.
    for label, by_tm in measured.items():
        values = [by_tm[tm] for tm in (30, 60, 90)]
        assert values[0] > values[-1], label
    quiet = measured["no msh. changes"]
    loaded = measured["multiple join/leave"]
    for tm in (30, 60, 90):
        assert loaded[tm] > quiet[tm]
