"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts and
prints a paper-vs-measured table. The tables are also written to
``benchmarks/results/<name>.txt`` so they survive pytest's output capture;
run with ``-s`` to see them inline.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a report table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
